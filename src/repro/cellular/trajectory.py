"""Trajectory data structures (Definition 2 of the paper)."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator

from repro.geometry import Point, bearing_deg, euclidean


@dataclass(frozen=True, slots=True)
class TrajectoryPoint:
    """One time-stamped positioning sample.

    For cellular points, ``position`` is the location of the *interacted
    cell tower* (the observable), which may be far from the phone's true
    location; ``tower_id`` records which tower produced the sample.  GPS
    points carry ``tower_id=None``.
    """

    position: Point
    timestamp: float
    tower_id: int | None = None

    def with_position(self, position: Point) -> "TrajectoryPoint":
        """A copy of this point at a different position (used by filters)."""
        return replace(self, position=position)


@dataclass(slots=True)
class Trajectory:
    """A time-ordered sequence of positioning samples."""

    points: list[TrajectoryPoint]
    trajectory_id: int = 0
    _validated: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        if not self._validated:
            for earlier, later in zip(self.points, self.points[1:]):
                if later.timestamp < earlier.timestamp:
                    raise ValueError("trajectory timestamps must be non-decreasing")
            self._validated = True

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self) -> Iterator[TrajectoryPoint]:
        return iter(self.points)

    def __getitem__(self, index: int) -> TrajectoryPoint:
        return self.points[index]

    @property
    def duration(self) -> float:
        """Elapsed seconds between the first and last samples."""
        if len(self.points) < 2:
            return 0.0
        return self.points[-1].timestamp - self.points[0].timestamp

    def sampling_intervals(self) -> list[float]:
        """Seconds between consecutive samples."""
        return [
            later.timestamp - earlier.timestamp
            for earlier, later in zip(self.points, self.points[1:])
        ]

    def sampling_distances(self) -> list[float]:
        """Straight-line metres between consecutive sample positions."""
        return [
            euclidean(earlier.position, later.position)
            for earlier, later in zip(self.points, self.points[1:])
        ]

    def path_length(self) -> float:
        """Total straight-line length of the sample polyline, in metres."""
        return sum(self.sampling_distances())

    def headings_deg(self) -> list[float]:
        """Bearing of each consecutive sample pair, in degrees."""
        return [
            bearing_deg(earlier.position, later.position)
            for earlier, later in zip(self.points, self.points[1:])
        ]

    def subsampled(self, keep_every: int) -> "Trajectory":
        """Keep every ``keep_every``-th point (always keeping the last).

        Used by the sampling-rate robustness study (Fig. 7(b)).
        """
        if keep_every < 1:
            raise ValueError("keep_every must be >= 1")
        kept = self.points[::keep_every]
        if kept and kept[-1] is not self.points[-1]:
            kept.append(self.points[-1])
        return Trajectory(points=kept, trajectory_id=self.trajectory_id, _validated=True)

    def resampled_to_rate(self, samples_per_minute: float) -> "Trajectory":
        """Thin samples down to approximately ``samples_per_minute``.

        Greedily keeps a point once at least ``60 / rate`` seconds have
        passed since the previously kept point; the first and last points
        are always kept.  Rates above the native rate return the trajectory
        unchanged.
        """
        if samples_per_minute <= 0:
            raise ValueError("samples_per_minute must be positive")
        min_gap = 60.0 / samples_per_minute
        kept = [self.points[0]]
        for point in self.points[1:-1]:
            if point.timestamp - kept[-1].timestamp >= min_gap:
                kept.append(point)
        if len(self.points) > 1:
            kept.append(self.points[-1])
        return Trajectory(points=kept, trajectory_id=self.trajectory_id, _validated=True)

    def positions(self) -> list[Point]:
        """Positions of all samples in order."""
        return [p.position for p in self.points]

    def tower_ids(self) -> list[int | None]:
        """Tower id per sample (``None`` for GPS samples)."""
        return [p.tower_id for p in self.points]

    def centroid(self) -> Point:
        """Mean of all sample positions."""
        if not self.points:
            raise ValueError("empty trajectory")
        sx = sum(p.position.x for p in self.points)
        sy = sum(p.position.y for p in self.points)
        return Point(sx / len(self.points), sy / len(self.points))
