"""Vehicle simulator producing paired GPS + cellular samples per trip.

This replaces the paper's proprietary operator data.  A trip is a routed
drive through the road network; along it we emit (a) dense, low-noise GPS
samples — from which ground truth is recovered exactly as the paper does —
and (b) sparse cellular samples whose positions are the locations of the
towers a :class:`~repro.cellular.handoff.HandoffModel` connects to.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

import numpy as np

from repro.cellular.handoff import HandoffConfig, HandoffModel
from repro.cellular.tower import TowerField
from repro.cellular.trajectory import Trajectory, TrajectoryPoint
from repro.geometry import Point
from repro.network.road_network import RoadNetwork
from repro.utils import ensure_rng


@dataclass(slots=True)
class SimulationConfig:
    """Trip and sampling parameters.

    The defaults are scaled-down analogues of Table I: cellular sampling
    every ~40–70 s with positive jitter, GPS roughly 2.4x denser, trips long
    enough to yield tens of cellular points.

    Attributes:
        min_trip_m: Minimum straight-line origin–destination distance.
        max_trip_m: Maximum straight-line origin–destination distance.
        route_weight_noise: Per-trip random multiplier spread on segment
            weights, diversifying chosen routes beyond strict shortest paths.
        speed_sigma: Log-scale spread of per-segment speed factors.
        intersection_delay_s: Mean stop delay added at each internal node.
        gps_interval_s: Seconds between GPS samples.
        gps_noise_m: GPS position noise standard deviation.
        cellular_interval_mean_s: Mean seconds between cellular samples.
        cellular_interval_sigma_s: Spread of the cellular sampling interval.
        cellular_interval_max_s: Hard cap on a single cellular gap.
    """

    min_trip_m: float = 3200.0
    max_trip_m: float = 8500.0
    route_weight_noise: float = 0.25
    speed_sigma: float = 0.15
    intersection_delay_s: float = 4.0
    gps_interval_s: float = 20.0
    gps_noise_m: float = 12.0
    cellular_interval_mean_s: float = 50.0
    cellular_interval_sigma_s: float = 18.0
    cellular_interval_max_s: float = 185.0

    def validate(self) -> None:
        """Raise ``ValueError`` on out-of-range parameters."""
        if self.min_trip_m <= 0 or self.max_trip_m <= self.min_trip_m:
            raise ValueError("require 0 < min_trip_m < max_trip_m")
        if self.gps_interval_s <= 0 or self.cellular_interval_mean_s <= 0:
            raise ValueError("sampling intervals must be positive")
        if self.cellular_interval_max_s < self.cellular_interval_mean_s:
            raise ValueError("cellular_interval_max_s must be >= the mean interval")


@dataclass(slots=True)
class SimulatedTrip:
    """One simulated trip with everything a dataset needs.

    Attributes:
        trip_id: Identifier shared by both trajectories.
        path: Ground-truth path as ordered segment ids.
        gps: Dense, low-noise GPS trajectory.
        cellular: Sparse cellular trajectory (positions are tower locations).
        true_positions: Vehicle's actual position at each cellular sample,
            aligned 1:1 with ``cellular.points`` (diagnostics only — no
            matcher may look at these).
    """

    trip_id: int
    path: list[int]
    gps: Trajectory
    cellular: Trajectory
    true_positions: list[Point]

    def positioning_errors(self) -> list[float]:
        """Distance between each cellular sample and the true position."""
        return [
            sample.position.distance_to(true)
            for sample, true in zip(self.cellular.points, self.true_positions)
        ]


class _PathMotion:
    """Piecewise-linear motion along a segment path with per-segment speeds."""

    def __init__(
        self,
        network: RoadNetwork,
        path: list[int],
        rng: np.random.Generator,
        config: SimulationConfig,
    ) -> None:
        self._network = network
        self._path = path
        self._times = [0.0]
        self._speeds: list[float] = []
        t = 0.0
        for i, seg_id in enumerate(path):
            seg = network.segments[seg_id]
            factor = float(np.exp(rng.normal(0.0, config.speed_sigma)))
            speed = max(2.0, seg.speed_limit_mps * factor)
            t += seg.length / speed
            if i < len(path) - 1:
                t += max(0.0, float(rng.exponential(config.intersection_delay_s)))
            self._times.append(t)
            self._speeds.append(speed)

    @property
    def total_time(self) -> float:
        """Trip duration in seconds."""
        return self._times[-1]

    def position_at(self, t: float) -> Point:
        """Vehicle position ``t`` seconds into the trip (clamped to the trip)."""
        t = min(self.total_time, max(0.0, t))
        # Binary search for the hosting segment interval.
        lo, hi = 0, len(self._path) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._times[mid + 1] < t:
                lo = mid + 1
            else:
                hi = mid
        seg = self._network.segments[self._path[lo]]
        seg_start, seg_end = self._times[lo], self._times[lo + 1]
        span = seg_end - seg_start
        frac = 0.0 if span <= 0 else min(1.0, (t - seg_start) / span)
        # Intersection dwell time sits at the end of the interval; treat the
        # drive portion as the leading fraction of the interval.
        drive_time = seg.length / self._speeds[lo]
        if span > 0 and drive_time < span:
            frac = min(1.0, (t - seg_start) / drive_time) if drive_time > 0 else 1.0
        return seg.polyline.interpolate(frac * seg.length)

    def segment_at(self, t: float) -> int:
        """Segment id the vehicle occupies ``t`` seconds into the trip."""
        t = min(self.total_time, max(0.0, t))
        for i in range(len(self._path)):
            if t <= self._times[i + 1]:
                return self._path[i]
        return self._path[-1]


class VehicleSimulator:
    """Generates :class:`SimulatedTrip` objects over a city."""

    def __init__(
        self,
        network: RoadNetwork,
        towers: TowerField,
        config: SimulationConfig | None = None,
        handoff_config: HandoffConfig | None = None,
        rng: int | np.random.Generator | None = 0,
    ) -> None:
        self.network = network
        self.towers = towers
        self.config = config or SimulationConfig()
        self.config.validate()
        self.handoff_config = handoff_config or HandoffConfig()
        self._rng = ensure_rng(rng)
        self._node_ids = sorted(network.nodes)

    # ----------------------------------------------------------------- routes
    def _random_od_pair(self) -> tuple[int, int]:
        """Origin/destination nodes with an in-range straight-line distance."""
        cfg = self.config
        for _ in range(200):
            u = self._node_ids[int(self._rng.integers(0, len(self._node_ids)))]
            v = self._node_ids[int(self._rng.integers(0, len(self._node_ids)))]
            if u == v:
                continue
            gap = self.network.nodes[u].distance_to(self.network.nodes[v])
            if cfg.min_trip_m <= gap <= cfg.max_trip_m:
                return u, v
        raise RuntimeError("could not sample an origin/destination pair in range")

    def _route(self, origin: int, destination: int) -> list[int] | None:
        """Shortest path under per-trip perturbed weights, as segment ids."""
        noise = self.config.route_weight_noise
        dist: dict[int, float] = {origin: 0.0}
        pred: dict[int, int] = {}
        heap: list[tuple[float, int]] = [(0.0, origin)]
        settled: set[int] = set()
        while heap:
            d, node = heapq.heappop(heap)
            if node in settled:
                continue
            if node == destination:
                break
            settled.add(node)
            for seg_id in self.network.out_segments(node):
                seg = self.network.segments[seg_id]
                weight = seg.length * float(self._rng.uniform(1.0, 1.0 + noise))
                nd = d + weight
                if nd < dist.get(seg.end_node, math.inf):
                    dist[seg.end_node] = nd
                    pred[seg.end_node] = seg_id
                    heapq.heappush(heap, (nd, seg.end_node))
        if destination not in dist:
            return None
        path: list[int] = []
        node = destination
        while node != origin:
            seg_id = pred[node]
            path.append(seg_id)
            node = self.network.segments[seg_id].start_node
        path.reverse()
        return path

    # ------------------------------------------------------------------ trips
    def simulate_trip(self, trip_id: int) -> SimulatedTrip:
        """Simulate one trip: route, motion, GPS samples, cellular samples."""
        cfg = self.config
        path: list[int] | None = None
        while path is None:
            origin, destination = self._random_od_pair()
            path = self._route(origin, destination)
        motion = _PathMotion(self.network, path, self._rng, cfg)

        gps_points = self._sample_gps(motion, trip_id)
        cellular_points, true_positions = self._sample_cellular(motion, trip_id)
        return SimulatedTrip(
            trip_id=trip_id,
            path=path,
            gps=Trajectory(points=gps_points, trajectory_id=trip_id, _validated=True),
            cellular=Trajectory(points=cellular_points, trajectory_id=trip_id, _validated=True),
            true_positions=true_positions,
        )

    def simulate_many(self, count: int, start_id: int = 0) -> list[SimulatedTrip]:
        """Simulate ``count`` independent trips."""
        return [self.simulate_trip(start_id + i) for i in range(count)]

    def _sample_gps(self, motion: _PathMotion, trip_id: int) -> list[TrajectoryPoint]:
        cfg = self.config
        points: list[TrajectoryPoint] = []
        t = 0.0
        while t <= motion.total_time:
            true = motion.position_at(t)
            noisy = true.translated(
                float(self._rng.normal(0.0, cfg.gps_noise_m)),
                float(self._rng.normal(0.0, cfg.gps_noise_m)),
            )
            points.append(TrajectoryPoint(position=noisy, timestamp=t))
            t += cfg.gps_interval_s
        return points

    def _sample_cellular(
        self, motion: _PathMotion, trip_id: int
    ) -> tuple[list[TrajectoryPoint], list[Point]]:
        cfg = self.config
        handoff = HandoffModel(
            self.towers,
            config=self.handoff_config,
            rng=self._rng,
        )
        points: list[TrajectoryPoint] = []
        true_positions: list[Point] = []
        t = 0.0
        while t <= motion.total_time:
            true = motion.position_at(t)
            tower_id = handoff.observe(true)
            points.append(
                TrajectoryPoint(
                    position=self.towers.location(tower_id),
                    timestamp=t,
                    tower_id=tower_id,
                )
            )
            true_positions.append(true)
            gap = float(self._rng.normal(cfg.cellular_interval_mean_s, cfg.cellular_interval_sigma_s))
            gap = min(cfg.cellular_interval_max_s, max(10.0, gap))
            t += gap
        return points, true_positions
