"""Cellular-positioning substrate.

The paper's datasets come from a telecom operator; this package simulates
the data-generating process instead: cell-tower placement with an urban
density gradient, a signal/handoff model that connects a moving phone to a
(possibly distant) tower, a vehicle simulator that emits paired GPS and
cellular samples for the same trip, and the pre-filters the paper applies
before matching (speed, alpha-trimmed mean, direction — from SnapNet [12]).
"""

from repro.cellular.trajectory import Trajectory, TrajectoryPoint
from repro.cellular.tower import CellTower, TowerField, TowerPlacementConfig, place_towers
from repro.cellular.handoff import HandoffConfig, HandoffModel
from repro.cellular.simulator import SimulatedTrip, SimulationConfig, VehicleSimulator
from repro.cellular.filters import (
    alpha_trimmed_mean_filter,
    apply_standard_filters,
    direction_filter,
    speed_filter,
)

__all__ = [
    "Trajectory",
    "TrajectoryPoint",
    "CellTower",
    "TowerField",
    "TowerPlacementConfig",
    "place_towers",
    "HandoffConfig",
    "HandoffModel",
    "SimulatedTrip",
    "SimulationConfig",
    "VehicleSimulator",
    "speed_filter",
    "alpha_trimmed_mean_filter",
    "direction_filter",
    "apply_standard_filters",
]
