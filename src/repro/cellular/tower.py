"""Cell towers and density-aware tower placement.

Real operators deploy towers densely downtown and sparsely in the suburbs;
the paper's Fig. 7(a) robustness study hinges on exactly this gradient.  We
reproduce it with Poisson-disk-style dart throwing whose exclusion radius
grows with distance from the city centre.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry import GridIndex, Point
from repro.network.road_network import RoadNetwork
from repro.utils import ensure_rng


@dataclass(frozen=True, slots=True)
class CellTower:
    """A cell tower at a fixed position (Definition 1 of the paper)."""

    tower_id: int
    location: Point


class TowerField:
    """The deployed set of towers with spatial lookups."""

    def __init__(self, towers: list[CellTower]) -> None:
        if not towers:
            raise ValueError("TowerField requires at least one tower")
        self.towers: dict[int, CellTower] = {t.tower_id: t for t in towers}
        if len(self.towers) != len(towers):
            raise ValueError("duplicate tower ids")
        self._index: GridIndex[int] = GridIndex(cell_size=500.0)
        for tower in towers:
            self._index.insert(tower.tower_id, tower.location)

    def __len__(self) -> int:
        return len(self.towers)

    def __iter__(self):
        return iter(self.towers.values())

    def tower(self, tower_id: int) -> CellTower:
        """The tower with id ``tower_id``."""
        return self.towers[tower_id]

    def location(self, tower_id: int) -> Point:
        """Position of tower ``tower_id``."""
        return self.towers[tower_id].location

    def towers_within(self, p: Point, radius: float) -> list[int]:
        """Ids of towers within ``radius`` metres of ``p``, nearest first."""
        return self._index.query_radius(p, radius)

    def nearest(self, p: Point, count: int = 1) -> list[int]:
        """Ids of the ``count`` nearest towers to ``p``."""
        return self._index.query_nearest(p, count=count)


@dataclass(slots=True)
class TowerPlacementConfig:
    """Parameters of tower deployment.

    Attributes:
        base_spacing_m: Minimum inter-tower distance at the city centre.
        spacing_gradient: Growth of the exclusion radius toward the rim;
            the rim spacing is ``base_spacing_m * (1 + spacing_gradient)``.
        candidate_factor: How many placement darts to throw per expected
            tower; higher values pack the field more tightly.
        position_jitter_m: Random offset applied to each dart, so towers do
            not sit exactly on intersections.
    """

    base_spacing_m: float = 450.0
    spacing_gradient: float = 2.0
    candidate_factor: int = 30
    position_jitter_m: float = 120.0

    def validate(self) -> None:
        """Raise ``ValueError`` on out-of-range parameters."""
        if self.base_spacing_m <= 0:
            raise ValueError("base_spacing_m must be positive")
        if self.spacing_gradient < 0:
            raise ValueError("spacing_gradient must be non-negative")
        if self.candidate_factor < 1:
            raise ValueError("candidate_factor must be >= 1")


def place_towers(
    network: RoadNetwork,
    config: TowerPlacementConfig | None = None,
    rng: int | np.random.Generator | None = 0,
) -> TowerField:
    """Deploy towers over ``network`` with a density gradient.

    Darts are thrown near randomly chosen intersections and accepted when no
    previously accepted tower lies within the locally required spacing.
    """
    config = config or TowerPlacementConfig()
    config.validate()
    rng = ensure_rng(rng)

    min_x, min_y, max_x, max_y = network.bounding_box()
    centre = Point((min_x + max_x) / 2.0, (min_y + max_y) / 2.0)
    city_radius = max(max_x - min_x, max_y - min_y) / 2.0 or 1.0

    node_points = list(network.nodes.values())
    area = (max_x - min_x) * (max_y - min_y)
    expected = max(4, int(area / (config.base_spacing_m**2 * 2.0)))
    num_darts = expected * config.candidate_factor

    accepted: list[CellTower] = []
    index: GridIndex[int] = GridIndex(cell_size=config.base_spacing_m)
    for _ in range(num_darts):
        anchor = node_points[int(rng.integers(0, len(node_points)))]
        dart = anchor.translated(
            float(rng.normal(0.0, config.position_jitter_m)),
            float(rng.normal(0.0, config.position_jitter_m)),
        )
        normalised = min(1.0, dart.distance_to(centre) / city_radius)
        spacing = config.base_spacing_m * (1.0 + config.spacing_gradient * normalised**2)
        neighbours = index.query_radius(dart, spacing)
        if neighbours:
            continue
        tower = CellTower(tower_id=len(accepted), location=dart)
        accepted.append(tower)
        index.insert(tower.tower_id, dart)
    return TowerField(accepted)
