"""Signal propagation and tower-association (handoff) model.

Cellular positioning error exists because the phone reports the tower it is
*connected to*, not where it is.  Which tower that is depends on path loss,
log-normally distributed shadow fading (temporally correlated — buildings do
not teleport), and handoff hysteresis (the radio sticks with its serving
cell until a neighbour is clearly stronger).  Together these reproduce the
paper's observed 0.1–3 km offset between sample position and true position,
including the hard cases: a phone served by a tower two ridgelines away.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.cellular.tower import TowerField
from repro.geometry import Point
from repro.utils import ensure_rng


@dataclass(slots=True)
class HandoffConfig:
    """Radio-model parameters.

    Attributes:
        path_loss_exponent: Free-space-ish decay exponent (2 open, ~3.5 urban).
        shadow_sigma_db: Standard deviation of log-normal shadow fading.
        shadow_correlation: AR(1) coefficient of fading between consecutive
            samples of the same tower (0 = fresh noise each time).
        hysteresis_db: Margin by which a neighbour must beat the serving
            tower before the phone hands off.
        search_radius_m: Only towers within this radius compete.
        min_candidate_towers: If the radius search finds fewer towers, fall
            back to the nearest ones so rural areas stay covered.
    """

    path_loss_exponent: float = 3.2
    shadow_sigma_db: float = 6.0
    shadow_correlation: float = 0.7
    hysteresis_db: float = 4.0
    search_radius_m: float = 4000.0
    min_candidate_towers: int = 3

    def validate(self) -> None:
        """Raise ``ValueError`` on out-of-range parameters."""
        if self.path_loss_exponent <= 0:
            raise ValueError("path_loss_exponent must be positive")
        if not 0.0 <= self.shadow_correlation < 1.0:
            raise ValueError("shadow_correlation must be in [0, 1)")
        if self.shadow_sigma_db < 0:
            raise ValueError("shadow_sigma_db must be non-negative")


class HandoffModel:
    """Stateful tower-association model for one phone.

    Call :meth:`observe` with successive true positions; each call returns
    the id of the tower the phone is connected to at that instant.  Create a
    fresh model (or call :meth:`reset`) per trip.
    """

    def __init__(
        self,
        towers: TowerField,
        config: HandoffConfig | None = None,
        rng: int | np.random.Generator | None = 0,
    ) -> None:
        self.towers = towers
        self.config = config or HandoffConfig()
        self.config.validate()
        self._rng = ensure_rng(rng)
        self._serving: int | None = None
        self._shadow: dict[int, float] = {}

    def reset(self) -> None:
        """Forget serving cell and fading state (start of a new trip)."""
        self._serving = None
        self._shadow.clear()

    def _signal_db(self, tower_id: int, p: Point) -> float:
        """Received signal strength (relative dB) from ``tower_id`` at ``p``."""
        distance = max(10.0, self.towers.location(tower_id).distance_to(p))
        path_loss = 10.0 * self.config.path_loss_exponent * math.log10(distance)
        previous = self._shadow.get(tower_id)
        rho = self.config.shadow_correlation
        fresh = float(self._rng.normal(0.0, self.config.shadow_sigma_db))
        if previous is None:
            shadow = fresh
        else:
            shadow = rho * previous + math.sqrt(1.0 - rho * rho) * fresh
        self._shadow[tower_id] = shadow
        return -path_loss + shadow

    def observe(self, p: Point) -> int:
        """The tower the phone is connected to when at true position ``p``."""
        candidates = self.towers.towers_within(p, self.config.search_radius_m)
        if len(candidates) < self.config.min_candidate_towers:
            candidates = self.towers.nearest(p, count=self.config.min_candidate_towers)
        signals = {tid: self._signal_db(tid, p) for tid in candidates}
        best = max(signals, key=signals.get)  # type: ignore[arg-type]
        if self._serving is not None and self._serving in signals:
            # Stay with the serving cell unless the best beats it by the margin.
            if signals[best] < signals[self._serving] + self.config.hysteresis_db:
                best = self._serving
        self._serving = best
        return best
