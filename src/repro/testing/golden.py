"""Golden regression corpus: a frozen city, model, and expected matches.

The corpus pins ``LHMM.match`` end to end — dataset synthesis, training,
candidate generation, trellis decoding — against committed expectations
(``tests/golden/golden_matches.json``).  Any change that shifts a matched
edge sequence shows up as a test failure with the exact trajectory that
moved, which separates "refactor" (corpus unchanged) from "behaviour
change" (corpus must be regenerated and the diff reviewed).

The configurations here are deliberately *frozen copies*, independent of
the test-suite fixtures: tweaking ``tests/conftest.py`` for speed must not
silently re-define what the golden corpus means.

Regenerate after an intentional behaviour change with::

    PYTHONPATH=src python -m repro golden --regen

and review the JSON diff like any other code change.  ``python -m repro
golden`` (no flag) re-derives everything and checks it against the file.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.cellular import SimulationConfig, TowerPlacementConfig
from repro.core import LHMM, LHMMConfig
from repro.datasets import DatasetConfig, make_city_dataset
from repro.datasets.dataset import MatchingDataset
from repro.network import CityConfig

#: Bump when the corpus *format* changes (not when expectations change).
CORPUS_VERSION = 1

GOLDEN_DATASET_SEED = 2023
GOLDEN_MODEL_SEED = 11
GOLDEN_NUM_TRAJECTORIES = 24
#: How many of the dataset's samples are pinned.
GOLDEN_MATCH_COUNT = 20

GOLDEN_CITY = CityConfig(
    grid_rows=9,
    grid_cols=9,
    block_size_m=250.0,
    density_gradient=0.5,
    removal_prob=0.08,
    one_way_prob=0.05,
)

GOLDEN_SIMULATION = SimulationConfig(
    min_trip_m=900.0,
    max_trip_m=2200.0,
    cellular_interval_mean_s=35.0,
    cellular_interval_sigma_s=10.0,
    cellular_interval_max_s=90.0,
    gps_interval_s=12.0,
)

GOLDEN_TOWERS = TowerPlacementConfig(base_spacing_m=350.0, spacing_gradient=1.0)


def golden_lhmm_config() -> LHMMConfig:
    """The frozen matcher configuration behind the corpus."""
    return LHMMConfig(
        embedding_dim=12,
        het_layers=1,
        mlp_hidden=12,
        candidate_k=10,
        candidate_pool=50,
        candidate_radius_m=1600.0,
        epochs=2,
        batch_size=4,
        negatives_per_positive=3,
    )


def default_corpus_path() -> Path:
    """``tests/golden/golden_matches.json`` at the repository root."""
    return Path(__file__).resolve().parents[3] / "tests" / "golden" / "golden_matches.json"


def build_golden_dataset() -> MatchingDataset:
    """The frozen synthetic city + trajectories."""
    config = DatasetConfig(
        name="golden",
        city=GOLDEN_CITY,
        towers=GOLDEN_TOWERS,
        simulation=GOLDEN_SIMULATION,
        num_trajectories=GOLDEN_NUM_TRAJECTORIES,
        groundtruth="oracle",
    )
    return make_city_dataset(config, rng=GOLDEN_DATASET_SEED)


def build_golden_matcher(dataset: MatchingDataset | None = None) -> LHMM:
    """An LHMM fitted on the frozen dataset with the frozen seeds."""
    if dataset is None:
        dataset = build_golden_dataset()
    return LHMM(golden_lhmm_config(), rng=GOLDEN_MODEL_SEED).fit(dataset)


def compute_golden_records(
    matcher: LHMM, dataset: MatchingDataset
) -> list[dict[str, Any]]:
    """Match the pinned trajectories and return comparable records.

    The degradation cascade is disabled while matching: a golden trajectory
    that fails to match must fail the check, not silently fall back.
    """
    saved = matcher.degradation_enabled
    matcher.degradation_enabled = False
    try:
        records = []
        for sample in dataset.samples[:GOLDEN_MATCH_COUNT]:
            result = matcher.match(sample.cellular)
            records.append(
                {
                    "sample_id": sample.sample_id,
                    "matched_sequence": [int(s) for s in result.matched_sequence],
                    "path": [int(s) for s in result.path],
                    "score": float(result.score),
                }
            )
        return records
    finally:
        matcher.degradation_enabled = saved


def corpus_payload(records: list[dict[str, Any]]) -> dict[str, Any]:
    """The full JSON document, with enough metadata to spot stale corpora."""
    return {
        "version": CORPUS_VERSION,
        "dataset_seed": GOLDEN_DATASET_SEED,
        "model_seed": GOLDEN_MODEL_SEED,
        "num_trajectories": GOLDEN_NUM_TRAJECTORIES,
        "match_count": GOLDEN_MATCH_COUNT,
        "records": records,
    }


def write_corpus(path: Path, records: list[dict[str, Any]]) -> None:
    """Write the corpus JSON (creating parent directories as needed)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(corpus_payload(records), indent=1) + "\n")


def load_corpus(path: Path) -> dict[str, Any]:
    """Read a corpus document written by :func:`write_corpus`."""
    return json.loads(path.read_text())


#: How many dataset samples the default serve-side canary set uses.
DEFAULT_CANARY_COUNT = 5


def canary_trajectories(dataset, count: int = DEFAULT_CANARY_COUNT) -> list:
    """The serve-side canary set for ``dataset``.

    The single definition of "which trajectories must a candidate model
    match before serving": the threaded server's hot reload, the cluster
    rollout probe, and the A/B challenger gate all call this, so a
    corpus or dataset change can never desync one gate from the others.
    """
    return [s.cellular for s in dataset.samples[:count]]


def run_canary(matcher: LHMM, trajectories: list) -> list[str]:
    """Smoke-check a candidate matcher before it starts serving.

    Matches every canary trajectory with the degradation cascade *off* —
    a model that can only answer through fallbacks must not pass the
    canary — and returns a list of human-readable problems (empty means
    the candidate is fit to serve).  Used by the serve hot-reload path:
    a non-empty return keeps the old model in place.
    """
    problems: list[str] = []
    saved = matcher.degradation_enabled
    matcher.degradation_enabled = False
    try:
        for i, trajectory in enumerate(trajectories):
            label = getattr(trajectory, "trajectory_id", None)
            label = i if label is None else label
            try:
                result = matcher.match(trajectory)
            except Exception as error:  # noqa: BLE001 - report, don't raise
                problems.append(
                    f"canary trajectory {label}: {type(error).__name__}: {error}"
                )
                continue
            if not result.path:
                problems.append(f"canary trajectory {label}: empty matched path")
    finally:
        matcher.degradation_enabled = saved
    return problems


def diff_records(
    actual: list[dict[str, Any]],
    expected: list[dict[str, Any]],
    score_tol: float = 1e-9,
) -> list[str]:
    """Human-readable mismatches between computed and expected records.

    Edge sequences and paths must match *exactly*; scores are float sums
    and get a tolerance so a benign platform ulp cannot fail the corpus.
    """
    problems: list[str] = []
    if len(actual) != len(expected):
        problems.append(f"record count {len(actual)} != expected {len(expected)}")
    for got, want in zip(actual, expected):
        sid = want.get("sample_id")
        if got["sample_id"] != sid:
            problems.append(f"sample order drift: got {got['sample_id']}, want {sid}")
            continue
        if got["matched_sequence"] != want["matched_sequence"]:
            problems.append(f"sample {sid}: matched_sequence changed")
        if got["path"] != want["path"]:
            problems.append(f"sample {sid}: path changed")
        if abs(got["score"] - want["score"]) > score_tol:
            problems.append(
                f"sample {sid}: score {got['score']!r} != {want['score']!r}"
            )
    return problems
