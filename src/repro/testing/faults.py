"""Fault injection: named failure points the pipeline exposes to tests.

Production code calls :func:`fire` at a handful of *fault points*; the
call is a near-free no-op unless a matching :class:`FaultSpec` is armed.
Specs can be armed two ways:

* **In-process** — ``faults.arm("match.learned", "raise")`` (tests in the
  same interpreter; pairs with ``disarm_all`` in teardown or the
  ``monkeypatch``-friendly :func:`armed` context manager).
* **Via environment** — ``REPRO_FAULTS="worker.chunk:kill:chunk=1"``:
  parsed on every fire, so pool workers forked/spawned *after* the
  variable is set inherit the fault.  This is how a test reaches inside
  a ``ProcessPoolExecutor`` worker it cannot otherwise touch.

Actions:

``kill``
    ``SIGKILL`` the current process — simulates the OOM killer.
``hang``
    Sleep ``seconds`` (default 30) — simulates a wedged worker.
``raise``
    Raise :class:`~repro.errors.MatchFailure` (or the class named by
    ``error=``: ``invalid`` / ``routing`` / ``degraded``).

One-shot semantics across processes use a filesystem token: a spec with
``once=/path/to/token`` fires only if it can *create* that file
(``O_EXCL``), so a killed worker's retried chunk does not kill its
replacement too.

Fault points currently wired into production code:

=================  ==========================================================
point              where it fires
=================  ==========================================================
``worker.chunk``   start of ``_match_chunk`` in a pool worker
                   (context: ``chunk``)
``match``          top of ``LHMM.match``, *outside* the degradation
                   cascade (context: ``trajectory_id``)
``match.learned``  inside the learned path of ``LHMM.match``, *inside*
                   the cascade — failures here degrade, not fail
``match.heuristic``  inside the heuristic-HMM fallback stage
``train.epoch``    top of every training epoch, after the previous
                   epoch's checkpoint was saved (context: ``stage``,
                   ``epoch``) — the SIGKILL point for resume tests
``train.step``     inside every gradient step, before backward
                   (context: ``stage``, ``epoch``, ``step``); arm with
                   ``error=diverged`` to exercise rollback
``cluster.op``     top of every cluster-worker IPC op (context: ``op``,
                   ``worker``) — ``op=ping:hang`` wedges a worker for
                   stall-detection tests, ``op=canary:raise`` fails a
                   rollout canary; arm via env *before* the worker forks
=================  ==========================================================
"""

from __future__ import annotations

import os
import signal
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.errors import (
    DegradedResult,
    InvalidTrajectoryInput,
    MatchFailure,
    RoutingFailure,
    TrainingDiverged,
)

ENV_VAR = "REPRO_FAULTS"

_ERROR_CLASSES = {
    "match": MatchFailure,
    "invalid": InvalidTrajectoryInput,
    "routing": RoutingFailure,
    "degraded": DegradedResult,
    "diverged": TrainingDiverged,
}


@dataclass(slots=True)
class FaultSpec:
    """One armed fault: fires at ``point`` when ``match`` keys agree."""

    point: str
    action: str
    match: dict = field(default_factory=dict)
    seconds: float = 30.0
    error: str = "match"
    once_path: str | None = None

    def applies(self, point: str, context: dict) -> bool:
        """True when ``point`` and every ``match`` key agree with the fire site."""
        if point != self.point:
            return False
        for key, wanted in self.match.items():
            if str(context.get(key)) != wanted:
                return False
        return True

    def claim(self) -> bool:
        """Atomically claim a one-shot token; always True for repeating specs."""
        if self.once_path is None:
            return True
        try:
            fd = os.open(self.once_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        os.close(fd)
        return True

    def execute(self, point: str) -> None:
        """Perform the armed action (kill / hang / raise)."""
        if self.action == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        elif self.action == "hang":
            time.sleep(self.seconds)
        elif self.action == "raise":
            klass = _ERROR_CLASSES.get(self.error, MatchFailure)
            raise klass(f"injected fault at {point!r}")
        else:  # pragma: no cover - guarded by parse/arm
            raise ValueError(f"unknown fault action {self.action!r}")


# Process-local armed specs (tests running in this interpreter).
_ARMED: list[FaultSpec] = []


def arm(
    point: str,
    action: str,
    *,
    seconds: float = 30.0,
    error: str = "match",
    once_path: str | None = None,
    **match,
) -> FaultSpec:
    """Arm a fault in this process; returns the spec (see :func:`disarm`)."""
    if action not in ("kill", "hang", "raise"):
        raise ValueError(f"unknown fault action {action!r}")
    spec = FaultSpec(
        point=point,
        action=action,
        match={k: str(v) for k, v in match.items()},
        seconds=seconds,
        error=error,
        once_path=once_path,
    )
    _ARMED.append(spec)
    return spec


def disarm(spec: FaultSpec) -> None:
    """Remove one armed spec (no-op if already gone)."""
    try:
        _ARMED.remove(spec)
    except ValueError:
        pass


def disarm_all() -> None:
    """Remove every process-local spec (environment specs are untouched)."""
    _ARMED.clear()


@contextmanager
def armed(point: str, action: str, **kwargs):
    """Context manager: arm on enter, disarm on exit."""
    spec = arm(point, action, **kwargs)
    try:
        yield spec
    finally:
        disarm(spec)


def parse_specs(text: str) -> list[FaultSpec]:
    """Parse the ``REPRO_FAULTS`` grammar.

    Comma-separated specs of colon-separated fields::

        point:action[:key=value]...

    e.g. ``worker.chunk:kill:chunk=1:once=/tmp/tok`` or
    ``match.learned:raise:error=routing``.  ``seconds``, ``error`` and
    ``once`` are reserved option keys; anything else is a context match.
    """
    specs: list[FaultSpec] = []
    for raw in text.split(","):
        raw = raw.strip()
        if not raw:
            continue
        parts = raw.split(":")
        if len(parts) < 2:
            raise ValueError(f"bad fault spec {raw!r}: expected point:action[...]")
        point, action = parts[0], parts[1]
        match: dict = {}
        seconds, error, once_path = 30.0, "match", None
        for option in parts[2:]:
            key, _, value = option.partition("=")
            if key == "seconds":
                seconds = float(value)
            elif key == "error":
                error = value
            elif key == "once":
                once_path = value
            else:
                match[key] = value
        specs.append(
            FaultSpec(
                point=point,
                action=action,
                match=match,
                seconds=seconds,
                error=error,
                once_path=once_path,
            )
        )
    return specs


def fire(point: str, **context) -> None:
    """Execute any armed fault matching ``point`` + ``context``.

    Called from production fault points; returns instantly when nothing
    is armed (one list check and one ``os.environ`` lookup).
    """
    env = os.environ.get(ENV_VAR)
    if not _ARMED and not env:
        return
    specs = list(_ARMED)
    if env:
        specs.extend(parse_specs(env))
    for spec in specs:
        if spec.applies(point, context) and spec.claim():
            spec.execute(point)


__all__ = [
    "ENV_VAR",
    "FaultSpec",
    "arm",
    "armed",
    "disarm",
    "disarm_all",
    "fire",
    "parse_specs",
]
