"""repro.testing — chaos-engineering utilities for the matching pipeline.

:mod:`repro.testing.faults` provides named fault points the production
code calls into (no-ops unless armed) so tests can crash a worker, hang
a chunk, or fail a match at a precise moment.  Nothing in this package
is imported by production code paths except the cheap ``fire`` hook.
"""

from repro.testing.faults import FaultSpec, arm, disarm_all, fire

__all__ = ["FaultSpec", "arm", "disarm_all", "fire"]
