"""repro.testing — test-support utilities for the matching pipeline.

:mod:`repro.testing.faults` provides named fault points the production
code calls into (no-ops unless armed) so tests can crash a worker, hang
a chunk, or fail a match at a precise moment.  Nothing in this package
is imported by production code paths except the cheap ``fire`` hook.

:mod:`repro.testing.golden` holds the golden regression corpus — the
frozen city/model configuration and the record computation behind
``tests/golden/golden_matches.json`` and ``python -m repro golden``.
"""

from repro.testing.faults import FaultSpec, arm, disarm_all, fire

__all__ = ["FaultSpec", "arm", "disarm_all", "fire"]
