"""Points, distances, and bearings in the local metric frame."""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Point:
    """An immutable 2-D point (east/north metres)."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other`` in metres."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def midpoint(self, other: "Point") -> "Point":
        """The point halfway between ``self`` and ``other``."""
        return Point((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)

    def translated(self, dx: float, dy: float) -> "Point":
        """A copy of this point shifted by ``(dx, dy)`` metres."""
        return Point(self.x + dx, self.y + dy)

    def as_tuple(self) -> tuple[float, float]:
        """``(x, y)`` tuple, handy for numpy interop."""
        return (self.x, self.y)


def euclidean(a: Point, b: Point) -> float:
    """Euclidean distance between two points in metres."""
    return math.hypot(a.x - b.x, a.y - b.y)


def bearing_deg(a: Point, b: Point) -> float:
    """Compass-style bearing from ``a`` to ``b`` in degrees.

    0 deg points north (+y), 90 deg points east (+x); the result lies in
    ``[0, 360)``.  Identical points yield 0 by convention.
    """
    dx = b.x - a.x
    dy = b.y - a.y
    if dx == 0.0 and dy == 0.0:
        return 0.0
    angle = math.degrees(math.atan2(dx, dy)) % 360.0
    # A tiny negative angle can round the modulo up to exactly 360.0.
    return 0.0 if angle >= 360.0 else angle


def heading_difference_deg(h1: float, h2: float) -> float:
    """Smallest absolute angle between two headings, in ``[0, 180]``."""
    diff = abs(h1 - h2) % 360.0
    return 360.0 - diff if diff > 180.0 else diff
