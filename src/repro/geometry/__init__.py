"""Planar geometry primitives used throughout the library.

All coordinates live in a local metric frame (east/north metres relative to
the city origin).  Working in metres rather than raw latitude/longitude keeps
distance, projection, and bearing computations exact and fast; the synthetic
city generators emit coordinates directly in this frame.
"""

from repro.geometry.point import Point, bearing_deg, euclidean, heading_difference_deg
from repro.geometry.segment import (
    Polyline,
    point_to_polyline_distance,
    point_to_segment_distance,
    project_point_to_segment,
)
from repro.geometry.grid_index import GridIndex

__all__ = [
    "Point",
    "Polyline",
    "GridIndex",
    "bearing_deg",
    "euclidean",
    "heading_difference_deg",
    "point_to_polyline_distance",
    "point_to_segment_distance",
    "project_point_to_segment",
]
