"""A uniform-grid spatial index over point-locatable items.

The library needs millions of "which road segments / towers are near this
point?" queries.  A uniform grid keyed by cell coordinates gives O(1)
insertion and near-O(result) range queries, which is both simpler and faster
at city scale than tree indexes for the densities we generate.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Generic, Hashable, Iterable, TypeVar

from repro.geometry.point import Point, euclidean

T = TypeVar("T", bound=Hashable)


class GridIndex(Generic[T]):
    """Spatial hash of items addressed by representative points.

    An item may be registered under several points (e.g. a road segment under
    each of its polyline vertices) — queries de-duplicate results.
    """

    def __init__(self, cell_size: float = 250.0) -> None:
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        self.cell_size = float(cell_size)
        self._cells: dict[tuple[int, int], set[T]] = defaultdict(set)
        self._locations: dict[T, list[Point]] = defaultdict(list)
        # Occupied-cell bounding box (min_cx, max_cx, min_cy, max_cy); lazy,
        # reset on insert.  Used to collapse equivalent box queries.
        self._bounds: tuple[int, int, int, int] | None = None
        # Persistent box-query memo for items_in_boxes (reset on insert).
        self._box_cache: dict[tuple[int, int, int, int, bool], set[T]] = {}
        self._box_cache_max = 50_000

    def _cell_of(self, p: Point) -> tuple[int, int]:
        return (math.floor(p.x / self.cell_size), math.floor(p.y / self.cell_size))

    def insert(self, item: T, point: Point) -> None:
        """Register ``item`` as present at ``point``."""
        self._cells[self._cell_of(point)].add(item)
        self._locations[item].append(point)
        self._bounds = None
        if self._box_cache:
            self._box_cache.clear()

    def insert_many(self, item: T, points: Iterable[Point]) -> None:
        """Register ``item`` at several representative points."""
        for point in points:
            self.insert(item, point)

    def __len__(self) -> int:
        return len(self._locations)

    def __contains__(self, item: T) -> bool:
        return item in self._locations

    def query_radius(self, center: Point, radius: float) -> list[T]:
        """Items with at least one representative point within ``radius``.

        The result is ordered by the distance of the closest representative
        point, nearest first.
        """
        if radius < 0:
            raise ValueError("radius must be non-negative")
        candidates = self._candidates_in_box(center, radius)
        hits: list[tuple[float, T]] = []
        for item in candidates:
            dist = min(euclidean(center, p) for p in self._locations[item])
            if dist <= radius:
                hits.append((dist, item))
        hits.sort(key=lambda pair: pair[0])
        return [item for _, item in hits]

    def query_nearest(self, center: Point, count: int = 1, max_radius: float = math.inf) -> list[T]:
        """The ``count`` items nearest ``center`` (by representative point).

        Expands the search ring by ring so that dense regions do not pay for
        a whole-index scan.  Returns fewer than ``count`` items only when the
        index (within ``max_radius``) is exhausted.
        """
        if count <= 0 or not self._cells:
            return []
        # Once the ring covers the whole occupied extent, a bigger radius
        # cannot find anything new — stop there.
        exhausted_at = self._extent_radius(center)
        radius = self.cell_size
        while True:
            effective = min(radius, max_radius)
            hits = self.query_radius(center, effective)
            if len(hits) >= count or effective >= max_radius or radius >= exhausted_at:
                return hits[:count]
            radius *= 2.0

    def _extent_radius(self, center: Point) -> float:
        """A radius guaranteed to cover every occupied cell from ``center``."""
        xs = [cx for cx, _ in self._cells]
        ys = [cy for _, cy in self._cells]
        far_x = max(
            abs(min(xs) * self.cell_size - center.x),
            abs((max(xs) + 1) * self.cell_size - center.x),
        )
        far_y = max(
            abs(min(ys) * self.cell_size - center.y),
            abs((max(ys) + 1) * self.cell_size - center.y),
        )
        return math.hypot(far_x, far_y) + self.cell_size

    def items_in_box(self, center: Point, radius: float) -> set[T]:
        """Items whose cell intersects the axis-aligned box around ``center``.

        A cheap pre-filter: no exact distances are computed.  Callers that
        own better geometry (e.g. the road network's vectorised segment
        distances) refine this set themselves.
        """
        return set(self._candidates_in_box(center, radius))

    def items_in_boxes(self, centers: Iterable[Point], radius: float) -> list[set[T]]:
        """:meth:`items_in_box` for many centers, one cell walk per distinct box.

        Consecutive trajectory points usually snap to the same cell box;
        answering each distinct box once turns the per-point cell walk into
        a dict probe.  Each returned set equals the per-point call exactly
        (cell boxes are a pure function of the box bounds); callers must
        not mutate the returned sets, which may be shared between entries.
        """
        cache = self._box_cache
        if len(cache) > self._box_cache_max:
            cache.clear()
        min_cx, max_cx, min_cy, max_cy = self._occupied_bounds()
        out: list[set[T]] = []
        for center in centers:
            lo_x = math.floor((center.x - radius) / self.cell_size)
            hi_x = math.floor((center.x + radius) / self.cell_size)
            lo_y = math.floor((center.y - radius) / self.cell_size)
            hi_y = math.floor((center.y + radius) / self.cell_size)
            # Clamping the key to the occupied-cell bounds collapses boxes
            # that cover the same occupied cells into one cache entry; cells
            # outside the bounds are empty, so the union is unchanged.  The
            # large-box flag stays in the key because the two scan branches
            # insert in different orders (and set iteration order depends on
            # construction, which candidate retrieval relies on matching).
            large = (hi_x - lo_x + 1) * (hi_y - lo_y + 1) > len(self._cells)
            key = (
                max(lo_x, min_cx),
                min(hi_x, max_cx),
                max(lo_y, min_cy),
                min(hi_y, max_cy),
                large,
            )
            found = cache.get(key)
            if found is None:
                # Copy exactly like items_in_box does: iteration order of a
                # set depends on its construction, and callers (candidate
                # retrieval) rely on matching the per-point call's ordering.
                found = set(self._candidates_in_box(center, radius))
                cache[key] = found
            out.append(found)
        return out

    def _occupied_bounds(self) -> tuple[int, int, int, int]:
        """Bounding box of occupied cells (lazy; reset by :meth:`insert`)."""
        if self._bounds is None:
            if not self._cells:
                self._bounds = (0, -1, 0, -1)
            else:
                xs = [cx for cx, _ in self._cells]
                ys = [cy for _, cy in self._cells]
                self._bounds = (min(xs), max(xs), min(ys), max(ys))
        return self._bounds

    def _candidates_in_box(self, center: Point, radius: float) -> set[T]:
        lo_x = math.floor((center.x - radius) / self.cell_size)
        hi_x = math.floor((center.x + radius) / self.cell_size)
        lo_y = math.floor((center.y - radius) / self.cell_size)
        hi_y = math.floor((center.y + radius) / self.cell_size)
        found: set[T] = set()
        box_cells = (hi_x - lo_x + 1) * (hi_y - lo_y + 1)
        if box_cells > len(self._cells):
            # Large box: scanning the occupied cells beats walking the box.
            for (cx, cy), cell in self._cells.items():
                if lo_x <= cx <= hi_x and lo_y <= cy <= hi_y:
                    found.update(cell)
            return found
        for cx in range(lo_x, hi_x + 1):
            for cy in range(lo_y, hi_y + 1):
                cell = self._cells.get((cx, cy))
                if cell:
                    found.update(cell)
        return found
