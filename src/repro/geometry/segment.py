"""Segment and polyline geometry: projection, distance, interpolation."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.geometry.point import Point, bearing_deg, euclidean


def project_point_to_segment(p: Point, a: Point, b: Point) -> tuple[Point, float]:
    """Orthogonal projection of ``p`` onto the segment ``a``–``b``.

    Returns ``(foot, t)`` where ``foot`` is the closest point on the segment
    and ``t`` in ``[0, 1]`` is the normalised position of the foot along the
    segment (0 at ``a``, 1 at ``b``).  Degenerate zero-length segments
    project everything onto ``a``.
    """
    ax, ay = a.x, a.y
    dx, dy = b.x - ax, b.y - ay
    length_sq = dx * dx + dy * dy
    if length_sq == 0.0:
        return a, 0.0
    t = ((p.x - ax) * dx + (p.y - ay) * dy) / length_sq
    t = min(1.0, max(0.0, t))
    return Point(ax + t * dx, ay + t * dy), t


def point_to_segment_distance(p: Point, a: Point, b: Point) -> float:
    """Distance from ``p`` to the closest point of segment ``a``–``b``."""
    foot, _ = project_point_to_segment(p, a, b)
    return euclidean(p, foot)


@dataclass(slots=True)
class Polyline:
    """An open polyline given by two or more vertices.

    Lengths are cached lazily; instances are cheap to construct in bulk from
    the road-network builder.
    """

    points: list[Point]
    _cumulative: list[float] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if len(self.points) < 2:
            raise ValueError("Polyline requires at least two points")

    def _cumlengths(self) -> list[float]:
        if not self._cumulative:
            acc = [0.0]
            for a, b in zip(self.points, self.points[1:]):
                acc.append(acc[-1] + euclidean(a, b))
            self._cumulative = acc
        return self._cumulative

    @property
    def length(self) -> float:
        """Total polyline length in metres."""
        return self._cumlengths()[-1]

    @property
    def start(self) -> Point:
        """First vertex."""
        return self.points[0]

    @property
    def end(self) -> Point:
        """Last vertex."""
        return self.points[-1]

    def interpolate(self, distance: float) -> Point:
        """The point ``distance`` metres from the start along the polyline.

        Distances are clamped to ``[0, length]``.
        """
        cum = self._cumlengths()
        total = cum[-1]
        distance = min(total, max(0.0, distance))
        # Find the hosting segment by linear scan; polylines are short.
        for i in range(1, len(cum)):
            if distance <= cum[i] or i == len(cum) - 1:
                seg_len = cum[i] - cum[i - 1]
                if seg_len == 0.0:
                    return self.points[i - 1]
                t = (distance - cum[i - 1]) / seg_len
                a, b = self.points[i - 1], self.points[i]
                return Point(a.x + t * (b.x - a.x), a.y + t * (b.y - a.y))
        return self.points[-1]

    def project(self, p: Point) -> tuple[Point, float, float]:
        """Closest point on the polyline to ``p``.

        Returns ``(foot, distance_to_p, offset_along_polyline)``.
        """
        best_foot: Point | None = None
        best_dist = math.inf
        best_offset = 0.0
        cum = self._cumlengths()
        for i in range(len(self.points) - 1):
            a, b = self.points[i], self.points[i + 1]
            foot, t = project_point_to_segment(p, a, b)
            dist = euclidean(p, foot)
            if dist < best_dist:
                best_dist = dist
                best_foot = foot
                best_offset = cum[i] + t * (cum[i + 1] - cum[i])
        assert best_foot is not None
        return best_foot, best_dist, best_offset

    def heading_deg(self) -> float:
        """Overall bearing of the polyline (start to end) in degrees."""
        return bearing_deg(self.start, self.end)

    def turn_angle_sum_deg(self) -> float:
        """Sum of absolute turn angles along internal vertices, in degrees."""
        total = 0.0
        for i in range(1, len(self.points) - 1):
            h1 = bearing_deg(self.points[i - 1], self.points[i])
            h2 = bearing_deg(self.points[i], self.points[i + 1])
            diff = abs(h1 - h2) % 360.0
            total += 360.0 - diff if diff > 180.0 else diff
        return total


def point_to_polyline_distance(p: Point, polyline: Polyline) -> float:
    """Distance from ``p`` to the closest point of ``polyline``."""
    _, dist, _ = polyline.project(p)
    return dist
