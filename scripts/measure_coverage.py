"""Estimate line coverage of the tier-1 suite without coverage.py.

Runs pytest under a ``sys.settrace`` line tracer restricted to
``src/repro`` and reports ``executed / executable`` lines, where the
executable-line universe comes from compiling every module and collecting
``co_lines()`` from its code objects — the same universe coverage.py uses.

This exists to *seed* the CI coverage floor (``--cov-fail-under`` in
``.github/workflows/ci.yml``, where pytest-cov is available); it is not a
substitute for pytest-cov.  Subprocess workers are not traced, so the
estimate slightly undercounts — pick the CI floor below this number.

Usage::

    PYTHONPATH=src python scripts/measure_coverage.py [pytest args...]
"""

from __future__ import annotations

import os
import sys
import threading

ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", "src", "repro"))

executed: dict[str, set[int]] = {}


def _local_trace(frame, event, arg):
    if event == "line":
        lines = executed.get(frame.f_code.co_filename)
        if lines is None:
            lines = executed.setdefault(frame.f_code.co_filename, set())
        lines.add(frame.f_lineno)
    return _local_trace


def _global_trace(frame, event, arg):
    if event != "call":
        return None
    if not frame.f_code.co_filename.startswith(ROOT):
        return None
    return _local_trace


def executable_lines(path: str) -> set[int]:
    """Line numbers of every statement in the module, via ``co_lines``."""
    with open(path, "r") as handle:
        source = handle.read()
    try:
        top = compile(source, path, "exec")
    except SyntaxError:
        return set()
    lines: set[int] = set()
    stack = [top]
    while stack:
        code = stack.pop()
        for _, _, line in code.co_lines():
            if line is not None:
                lines.add(line)
        for const in code.co_consts:
            if hasattr(const, "co_lines"):
                stack.append(const)
    return lines


def main() -> int:
    import pytest

    sys.settrace(_global_trace)
    threading.settrace(_global_trace)
    try:
        exit_code = pytest.main(sys.argv[1:] or ["-x", "-q", "-p", "no:cacheprovider"])
    finally:
        sys.settrace(None)
        threading.settrace(None)  # type: ignore[arg-type]
    if exit_code != 0:
        print(f"pytest exited {exit_code}; coverage numbers unreliable")

    total_executable = 0
    total_executed = 0
    rows = []
    for dirpath, _, filenames in os.walk(ROOT):
        for name in sorted(filenames):
            if not name.endswith(".py"):
                continue
            path = os.path.join(dirpath, name)
            possible = executable_lines(path)
            hit = executed.get(path, set()) & possible
            total_executable += len(possible)
            total_executed += len(hit)
            if possible:
                rows.append(
                    (
                        os.path.relpath(path, ROOT),
                        len(hit),
                        len(possible),
                        100.0 * len(hit) / len(possible),
                    )
                )
    rows.sort(key=lambda r: r[3])
    print(f"{'module':48s} {'hit':>6s} {'lines':>6s} {'cover':>7s}")
    for rel, hit, possible, pct in rows:
        print(f"{rel:48s} {hit:6d} {possible:6d} {pct:6.1f}%")
    overall = 100.0 * total_executed / max(total_executable, 1)
    print(f"\nTOTAL {total_executed}/{total_executable} lines = {overall:.1f}%")
    return exit_code


if __name__ == "__main__":
    raise SystemExit(main())
