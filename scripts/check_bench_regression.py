#!/usr/bin/env python
"""Flag >10% regressions between fresh and committed BENCH_*.json files.

Usage::

    python scripts/check_bench_regression.py [--baseline-ref HEAD]
        [--threshold 0.10] [files...]

For every ``BENCH_<name>.json`` at the repository root (or the files given
on the command line), the committed version at ``--baseline-ref`` is the
baseline and the working-tree version is the candidate.  A metric regresses
when it moves more than ``--threshold`` (default 10%) in its *worse*
direction — slower for ``direction: lower`` metrics, smaller for
``direction: higher`` ones.

Runs are skipped (never flagged) when they are not comparable:

* no committed baseline exists yet (a brand-new benchmark),
* the config fingerprints differ (the workload changed),
* exactly one of the two runs was in fast mode (``REPRO_BENCH_FAST=1``), or
* a file is missing, unreadable, or malformed on either side — the
  checker explains which and moves on instead of dying with a traceback
  (a CI perf job whose benchmark step failed must still produce a
  readable report).

Exit code 1 when any regression is flagged, 0 otherwise.  The CI perf
smoke job runs this non-blocking; locally it is a pre-commit sanity check
after re-running the full-scale benchmarks.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def load_baseline(ref: str, rel_path: str) -> dict | None:
    """The committed JSON at ``ref``, or None when it does not exist there."""
    proc = subprocess.run(
        ["git", "show", f"{ref}:{rel_path}"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        return None
    try:
        parsed = json.loads(proc.stdout)
    except json.JSONDecodeError:
        return None
    return parsed if isinstance(parsed, dict) else None


def compare(name: str, baseline: dict, current: dict, threshold: float) -> list[str]:
    """Human-readable regression lines (empty = clean)."""
    problems: list[str] = []
    base_metrics = baseline.get("metrics", {})
    for key, cur in current.get("metrics", {}).items():
        base = base_metrics.get(key)
        if base is None:
            continue  # new metric: no baseline to regress against
        try:
            base_value = float(base["value"])
            cur_value = float(cur["value"])
        except (KeyError, TypeError, ValueError):
            # A hand-edited or truncated metrics entry: not comparable.
            print(f"  {name}:{key}: malformed metric entry -- skipped")
            continue
        direction = cur.get("direction", "lower")
        if base_value == 0.0:
            continue
        change = (cur_value - base_value) / abs(base_value)
        regressed = (
            change > threshold if direction == "lower" else change < -threshold
        )
        if regressed:
            problems.append(
                f"  {name}:{key}  {base_value:.4g} -> {cur_value:.4g} "
                f"{cur.get('unit', '')} ({change:+.1%}, worse-direction "
                f"threshold {threshold:.0%})"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="*", help="BENCH_*.json files to check "
                        "(default: all at the repo root)")
    parser.add_argument("--baseline-ref", default="HEAD",
                        help="git ref holding the baseline JSONs (default HEAD)")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="relative worse-direction change that counts as "
                             "a regression (default 0.10)")
    args = parser.parse_args(argv)

    paths = (
        [Path(f) for f in args.files]
        if args.files
        else sorted(REPO_ROOT.glob("BENCH_*.json"))
    )
    if not paths:
        print("no BENCH_*.json files found; nothing to check")
        return 0

    regressions: list[str] = []
    for path in paths:
        try:
            rel = path.resolve().relative_to(REPO_ROOT).as_posix()
        except ValueError:
            # Outside the repo (tests, ad-hoc files): no committed
            # baseline can exist, so the git probe below returns None.
            rel = path.as_posix()
        try:
            current = json.loads(path.read_text())
        except FileNotFoundError:
            print(f"{rel}: not found in the working tree (benchmark step "
                  "skipped or failed?) -- skipped")
            continue
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            print(f"{rel}: unreadable JSON ({error}) -- skipped")
            continue
        if not isinstance(current, dict):
            print(f"{rel}: expected a JSON object, got "
                  f"{type(current).__name__} -- skipped")
            continue
        baseline = load_baseline(args.baseline_ref, rel)
        name = current.get("bench", path.stem)
        if baseline is None:
            print(f"{rel}: no baseline at {args.baseline_ref} -- skipped")
            continue
        if baseline.get("config_fingerprint") != current.get("config_fingerprint"):
            print(f"{rel}: config fingerprint changed -- baseline reset, skipped")
            continue
        if bool(baseline.get("fast_mode")) != bool(current.get("fast_mode")):
            print(f"{rel}: fast/full mode mismatch vs baseline -- skipped")
            continue
        problems = compare(name, baseline, current, args.threshold)
        if problems:
            regressions.extend(problems)
            print(f"{rel}: REGRESSION")
        else:
            print(f"{rel}: ok ({len(current.get('metrics', {}))} metrics)")

    if regressions:
        print("\nbenchmark regressions (>10% in the worse direction):")
        for line in regressions:
            print(line)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
