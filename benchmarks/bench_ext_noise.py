"""Extension — robustness to the radio noise level.

The paper's core challenge is positioning error; our simulator exposes the
knobs that create it.  This bench regenerates the city at three shadow-
fading levels (calm/default/harsh), retrains LHMM and re-runs STM on each,
and reports CMF50 — quantifying how both the learned and the heuristic
matcher degrade as the radio environment worsens.
"""

import numpy as np

from repro import LHMM
from repro.baselines import make_baseline
from repro.cellular import HandoffConfig, VehicleSimulator, apply_standard_filters
from repro.cellular.tower import place_towers
from repro.datasets import preset_config
from repro.datasets.dataset import MatchingDataset, MatchingSample
from repro.datasets.groundtruth import match_gps_trajectory
from repro.eval import evaluate_matcher, format_series
from repro.network import ShortestPathEngine, generate_city_network
from repro.utils import derive_rng

from benchmarks.conftest import FAST, bench_lhmm_config, check_shape, save_report

NOISE_LEVELS = {
    "calm (sigma 3 dB)": HandoffConfig(shadow_sigma_db=3.0, hysteresis_db=2.0),
    "default (sigma 6 dB)": HandoffConfig(),
    "harsh (sigma 10 dB)": HandoffConfig(shadow_sigma_db=10.0, hysteresis_db=6.0),
}


def _build_noisy_dataset(handoff: HandoffConfig, trajectories: int) -> tuple:
    """One city per noise level, sharing generator settings and seed."""
    config = preset_config("hangzhou", num_trajectories=trajectories)
    network = generate_city_network(config.city, rng=derive_rng(13, "city"))
    towers = place_towers(network, config.towers, rng=derive_rng(13, "towers"))
    engine = ShortestPathEngine(network)
    simulator = VehicleSimulator(
        network, towers, config=config.simulation, handoff_config=handoff, rng=13
    )
    samples, errors = [], []
    for trip in simulator.simulate_many(trajectories):
        truth = match_gps_trajectory(trip.gps, network, engine)
        cellular = apply_standard_filters(trip.cellular)
        if truth and len(cellular) >= 3:
            samples.append(
                MatchingSample(
                    sample_id=trip.trip_id,
                    cellular=cellular,
                    raw_cellular=trip.cellular,
                    gps=trip.gps,
                    truth_path=truth,
                    sim_path=list(trip.path),
                )
            )
            errors.extend(trip.positioning_errors())
    dataset = MatchingDataset(name="noise", network=network, towers=towers, samples=samples)
    dataset._engine = engine
    return dataset, float(np.median(errors))


def test_ext_noise_robustness(benchmark, hangzhou, lhmm_hangzhou):
    """CMF50 vs radio noise level for LHMM and STM."""
    trajectories = 80 if FAST else 300
    lhmm_cmf, stm_cmf, median_errors = [], [], []
    for handoff in NOISE_LEVELS.values():
        dataset, median_error = _build_noisy_dataset(handoff, trajectories)
        median_errors.append(median_error)
        lhmm_config = bench_lhmm_config()
        lhmm_config.epochs = max(2, lhmm_config.epochs - 2)
        matcher = LHMM(lhmm_config, rng=0).fit(dataset)
        test = dataset.test[:12]
        lhmm_cmf.append(
            evaluate_matcher(matcher, dataset, test, method_name="LHMM").cmf50
        )
        stm = make_baseline("STM", dataset, rng=0)
        stm_cmf.append(evaluate_matcher(stm, dataset, test, method_name="STM").cmf50)

    save_report(
        "ext_noise",
        format_series(
            "noise level",
            [
                f"{label} / median err {err:.0f} m"
                for label, err in zip(NOISE_LEVELS, median_errors)
            ],
            {"LHMM cmf50": lhmm_cmf, "STM cmf50": stm_cmf},
            title="Extension — robustness to radio noise",
        ),
    )

    # Shape: harsher radio increases positioning error and does not make
    # matching easier.
    check_shape(
        median_errors[-1] > median_errors[0],
        "harsher radio increases positioning error",
    )
    check_shape(
        lhmm_cmf[-1] >= lhmm_cmf[0] - 0.05, "harsher radio does not make LHMM better"
    )

    benchmark(lhmm_hangzhou.match, hangzhou.test[0].cellular)
