"""Extension — ablation of THIS reproduction's design choices.

DESIGN.md documents two engineering choices that go beyond the paper's
text (both are in the spirit of "learned candidate preparation" but are our
concrete realisations):

* **Co-occurrence pool extension** — the tower's historically co-occurring
  roads join the spatial candidate pool, letting the learned ``P_O`` reach
  "farther but more relevant roads" (Example 1) past the nearest-first cap.
* **Pool-rank features** — ``D_O`` includes pool-relative rank columns as
  the concrete form of the paper's "batch-normalised" explicit features.

This bench retrains LHMM with each choice disabled and reports the impact
on hitting ratio and CMF50, so the repository's own design decisions are
evidenced the same way the paper's are (Table III).
"""

from repro import LHMM
from repro.eval import evaluate_matcher, format_table

from benchmarks.conftest import TEST_LIMIT, bench_lhmm_config, check_shape, save_report

VARIANTS = {
    "LHMM (full)": {},
    "no co-occ pool": {"extend_pool_with_cooccurrence": False},
    "no rank features": {"use_rank_features": False},
}


def test_ext_design_choice_ablation(benchmark, hangzhou, lhmm_hangzhou):
    """Retrain without each design choice and compare."""
    test = hangzhou.test[:TEST_LIMIT]
    results = [
        evaluate_matcher(lhmm_hangzhou, hangzhou, test, method_name="LHMM (full)")
    ]
    for name, overrides in VARIANTS.items():
        if not overrides:
            continue
        config = bench_lhmm_config()
        for key, value in overrides.items():
            setattr(config, key, value)
        matcher = LHMM(config, rng=0).fit(hangzhou)
        results.append(evaluate_matcher(matcher, hangzhou, test, method_name=name))

    save_report(
        "ext_design_choices",
        format_table(
            results,
            columns=["precision", "cmf50", "hr"],
            title="Extension — design-choice ablation (Hangzhou-like)",
        ),
    )

    by_name = {r.method: r for r in results}
    # The full configuration should not trail either ablation materially.
    for name in VARIANTS:
        if name == "LHMM (full)":
            continue
        check_shape(
            by_name["LHMM (full)"].cmf50 <= by_name[name].cmf50 + 0.05,
            f"full configuration at least as accurate as '{name}'",
        )

    benchmark(lhmm_hangzhou.match, hangzhou.test[0].cellular)
