"""Perf smoke benchmark: vectorised routing + parallel matching.

Self-contained (builds its own small city, independent of the session-scoped
benchmark fixtures) so it runs in well under a minute::

    PYTHONPATH=src python -m pytest benchmarks/bench_perf_matching.py -s -m perf

It measures and writes to ``benchmarks/results/perf_matching.txt``:

* batched route-matrix throughput of the scipy CSR engine vs the seed
  per-pair pure-Python heap engine (expected ≥ 3x);
* UBODT build time plus vectorised ``lookup_many`` vs scalar lookups;
* end-to-end ``match_many`` wall-clock, serial vs 2 workers, with decoded
  paths verified bit-identical.
"""

from __future__ import annotations

import math
import os
import time

import numpy as np
import pytest

from benchmarks.conftest import check_shape, save_report
from repro.cellular import SimulationConfig, TowerPlacementConfig
from repro.core import LHMM, LHMMConfig
from repro.datasets import DatasetConfig, make_city_dataset
from repro.network import CityConfig, ShortestPathEngine, Ubodt, UbodtRouter

pytestmark = pytest.mark.perf

PERF_CITY = CityConfig(
    grid_rows=12,
    grid_cols=12,
    block_size_m=250.0,
    density_gradient=0.5,
    removal_prob=0.08,
    one_way_prob=0.05,
)
PERF_SIMULATION = SimulationConfig(
    min_trip_m=900.0,
    max_trip_m=2400.0,
    cellular_interval_mean_s=35.0,
    cellular_interval_sigma_s=10.0,
    cellular_interval_max_s=90.0,
    gps_interval_s=12.0,
)
PERF_TOWERS = TowerPlacementConfig(base_spacing_m=350.0, spacing_gradient=1.0)


@pytest.fixture(scope="module")
def perf_dataset():
    config = DatasetConfig(
        name="perf-city",
        city=PERF_CITY,
        towers=PERF_TOWERS,
        simulation=PERF_SIMULATION,
        num_trajectories=60,
        groundtruth="oracle",
    )
    return make_city_dataset(config, rng=13)


def test_perf_routing_and_matching(perf_dataset):
    dataset = perf_dataset
    network = dataset.network
    lines = [f"perf smoke on {network.num_nodes} nodes / {network.num_segments} segments"]

    # ---- 1. batched route-matrix queries vs the seed per-pair engine ----
    rng = np.random.default_rng(3)
    nodes = sorted(network.nodes)
    sources = [int(n) for n in rng.choice(nodes, size=40, replace=False)]
    targets = [int(n) for n in rng.choice(nodes, size=40, replace=False)]

    seed_engine = ShortestPathEngine(network, use_scipy=False)
    start = time.perf_counter()
    reference = [
        [seed_engine.node_distance(u, v) for v in targets] for u in sources
    ]
    per_pair_s = time.perf_counter() - start

    vector_engine = ShortestPathEngine(network)
    start = time.perf_counter()
    matrix = vector_engine.distances(sources, targets)
    batched_s = time.perf_counter() - start

    for i in range(len(sources)):
        for j in range(len(targets)):
            if math.isinf(reference[i][j]):
                assert math.isinf(matrix[i, j])
            else:
                assert matrix[i, j] == pytest.approx(reference[i][j])
    routing_speedup = per_pair_s / max(batched_s, 1e-9)
    lines.append(
        f"route matrix 40x40   per-pair {per_pair_s * 1e3:8.1f} ms   "
        f"batched {batched_s * 1e3:8.1f} ms   speedup {routing_speedup:6.1f}x"
    )
    check_shape(routing_speedup >= 3.0, "batched routing >= 3x per-pair engine")

    # ---- 2. UBODT build + vectorised lookups ----
    start = time.perf_counter()
    table = Ubodt.build(network, delta_m=2500.0)
    build_s = time.perf_counter() - start
    probe_s = np.repeat(sources, len(targets)).astype(np.int64)
    probe_t = np.tile(targets, len(sources)).astype(np.int64)
    start = time.perf_counter()
    table.lookup_many(probe_s, probe_t)
    many_s = time.perf_counter() - start
    start = time.perf_counter()
    for s, t in zip(probe_s, probe_t):
        table.lookup(int(s), int(t))
    scalar_s = time.perf_counter() - start
    lines.append(
        f"ubodt delta=2500m    build {build_s:6.2f} s ({len(table)} rows)   "
        f"lookup_many {many_s * 1e3:6.1f} ms vs scalar {scalar_s * 1e3:6.1f} ms"
    )

    # ---- 3. end-to-end match_many: serial vs parallel, bit-identical ----
    matcher = LHMM(
        LHMMConfig(
            embedding_dim=12,
            het_layers=1,
            mlp_hidden=12,
            candidate_k=10,
            candidate_pool=50,
            candidate_radius_m=1600.0,
            epochs=2,
            batch_size=4,
            negatives_per_positive=3,
        ),
        rng=0,
    ).fit(dataset)
    trajectories = [sample.cellular for sample in dataset.samples]

    matcher.engine.clear_cache()
    start = time.perf_counter()
    serial = matcher.match_many(trajectories)
    serial_s = time.perf_counter() - start

    matcher.engine.clear_cache()
    start = time.perf_counter()
    parallel = matcher.match_many(trajectories, workers=2)
    parallel_s = time.perf_counter() - start

    assert [r.path for r in parallel] == [r.path for r in serial]
    assert [r.matched_sequence for r in parallel] == [
        r.matched_sequence for r in serial
    ]
    match_speedup = serial_s / max(parallel_s, 1e-9)
    stats = matcher.last_parallel_stats or {}
    cores = os.cpu_count() or 1
    lines.append(
        f"match_many {len(trajectories):3d} trajs  serial {serial_s:6.2f} s   "
        f"2 workers {parallel_s:6.2f} s   speedup {match_speedup:5.2f}x   "
        f"(paths bit-identical, {stats.get('workers', 0)} workers, {cores} cores)"
    )
    if cores >= 2:
        check_shape(parallel_s < serial_s, "2-worker match_many beats serial wall-clock")
    else:
        lines.append(
            "single-core host: parallel wall-clock win not enforced "
            "(determinism still verified above)"
        )

    # ---- 4. UBODT-routed matching parity (same paths, table absorbs work) --
    ubodt_matcher = matcher.use_router(
        UbodtRouter(network, table, fallback=ShortestPathEngine(network))
    )
    ubodt_paths = [ubodt_matcher.match(t).path for t in trajectories[:5]]
    assert ubodt_paths == [r.path for r in serial[:5]]
    router = ubodt_matcher.engine
    lines.append(
        f"ubodt router parity  first 5 trajs identical; "
        f"{router.table_hits} table hits / {router.fallback_hits} fallback hits"
    )

    save_report("perf_matching", "\n".join(lines))
