"""Perf smoke benchmark: vectorised routing + parallel matching.

Self-contained (builds its own small city, independent of the session-scoped
benchmark fixtures) so it runs in well under a minute::

    PYTHONPATH=src python -m pytest benchmarks/bench_perf_matching.py -s -m perf

It measures and writes to ``benchmarks/results/perf_matching.txt``:

* batched route-matrix throughput of the scipy CSR engine vs the seed
  per-pair pure-Python heap engine (expected ≥ 3x);
* UBODT build time plus vectorised ``lookup_many`` vs scalar lookups;
* end-to-end ``match_many`` wall-clock, serial vs 2 workers, with decoded
  paths verified bit-identical;
* end-to-end ``LHMM.match`` under the scalar reference pipeline vs the
  batched/vectorised pipeline, caches cold per run, best-of-N, with every
  decoded path asserted bit-identical — this is the headline number for
  the whole-pipeline vectorization work, recorded to ``BENCH_matching.json``
  at the repo root for ``scripts/check_bench_regression.py``.
"""

from __future__ import annotations

import math
import os
import time

import numpy as np
import pytest

from benchmarks.bench_util import metric, write_bench_json
from benchmarks.conftest import check_shape, save_report
from repro.cellular import SimulationConfig, TowerPlacementConfig
from repro.core import LHMM, LHMMConfig
from repro.datasets import DatasetConfig, make_city_dataset
from repro.network import CityConfig, ShortestPathEngine, Ubodt, UbodtRouter

pytestmark = pytest.mark.perf

PERF_CITY = CityConfig(
    grid_rows=12,
    grid_cols=12,
    block_size_m=250.0,
    density_gradient=0.5,
    removal_prob=0.08,
    one_way_prob=0.05,
)
PERF_SIMULATION = SimulationConfig(
    min_trip_m=900.0,
    max_trip_m=2400.0,
    cellular_interval_mean_s=35.0,
    cellular_interval_sigma_s=10.0,
    cellular_interval_max_s=90.0,
    gps_interval_s=12.0,
)
PERF_TOWERS = TowerPlacementConfig(base_spacing_m=350.0, spacing_gradient=1.0)


@pytest.fixture(scope="module")
def perf_dataset():
    config = DatasetConfig(
        name="perf-city",
        city=PERF_CITY,
        towers=PERF_TOWERS,
        simulation=PERF_SIMULATION,
        num_trajectories=60,
        groundtruth="oracle",
    )
    return make_city_dataset(config, rng=13)


LHMM_SMOKE_CONFIG = dict(
    embedding_dim=12,
    het_layers=1,
    mlp_hidden=12,
    candidate_k=10,
    candidate_pool=50,
    candidate_radius_m=1600.0,
    epochs=2,
    batch_size=4,
    negatives_per_positive=3,
)


@pytest.fixture(scope="module")
def perf_matcher(perf_dataset):
    return LHMM(LHMMConfig(**LHMM_SMOKE_CONFIG), rng=0).fit(perf_dataset)


def test_perf_routing_and_matching(perf_dataset, perf_matcher):
    dataset = perf_dataset
    network = dataset.network
    lines = [f"perf smoke on {network.num_nodes} nodes / {network.num_segments} segments"]

    # ---- 1. batched route-matrix queries vs the seed per-pair engine ----
    rng = np.random.default_rng(3)
    nodes = sorted(network.nodes)
    sources = [int(n) for n in rng.choice(nodes, size=40, replace=False)]
    targets = [int(n) for n in rng.choice(nodes, size=40, replace=False)]

    seed_engine = ShortestPathEngine(network, use_scipy=False)
    start = time.perf_counter()
    reference = [
        [seed_engine.node_distance(u, v) for v in targets] for u in sources
    ]
    per_pair_s = time.perf_counter() - start

    vector_engine = ShortestPathEngine(network)
    start = time.perf_counter()
    matrix = vector_engine.distances(sources, targets)
    batched_s = time.perf_counter() - start

    for i in range(len(sources)):
        for j in range(len(targets)):
            if math.isinf(reference[i][j]):
                assert math.isinf(matrix[i, j])
            else:
                assert matrix[i, j] == pytest.approx(reference[i][j])
    routing_speedup = per_pair_s / max(batched_s, 1e-9)
    lines.append(
        f"route matrix 40x40   per-pair {per_pair_s * 1e3:8.1f} ms   "
        f"batched {batched_s * 1e3:8.1f} ms   speedup {routing_speedup:6.1f}x"
    )
    check_shape(routing_speedup >= 3.0, "batched routing >= 3x per-pair engine")

    # ---- 2. UBODT build + vectorised lookups ----
    start = time.perf_counter()
    table = Ubodt.build(network, delta_m=2500.0)
    build_s = time.perf_counter() - start
    probe_s = np.repeat(sources, len(targets)).astype(np.int64)
    probe_t = np.tile(targets, len(sources)).astype(np.int64)
    start = time.perf_counter()
    table.lookup_many(probe_s, probe_t)
    many_s = time.perf_counter() - start
    start = time.perf_counter()
    for s, t in zip(probe_s, probe_t):
        table.lookup(int(s), int(t))
    scalar_s = time.perf_counter() - start
    lines.append(
        f"ubodt delta=2500m    build {build_s:6.2f} s ({len(table)} rows)   "
        f"lookup_many {many_s * 1e3:6.1f} ms vs scalar {scalar_s * 1e3:6.1f} ms"
    )

    # ---- 3. end-to-end match_many: serial vs parallel, bit-identical ----
    matcher = perf_matcher
    trajectories = [sample.cellular for sample in dataset.samples]

    matcher.engine.clear_cache()
    start = time.perf_counter()
    serial = matcher.match_many(trajectories)
    serial_s = time.perf_counter() - start

    matcher.engine.clear_cache()
    start = time.perf_counter()
    parallel = matcher.match_many(trajectories, workers=2)
    parallel_s = time.perf_counter() - start

    assert [r.path for r in parallel] == [r.path for r in serial]
    assert [r.matched_sequence for r in parallel] == [
        r.matched_sequence for r in serial
    ]
    match_speedup = serial_s / max(parallel_s, 1e-9)
    stats = matcher.last_parallel_stats or {}
    cores = os.cpu_count() or 1
    lines.append(
        f"match_many {len(trajectories):3d} trajs  serial {serial_s:6.2f} s   "
        f"2 workers {parallel_s:6.2f} s   speedup {match_speedup:5.2f}x   "
        f"(paths bit-identical, {stats.get('workers', 0)} workers, {cores} cores)"
    )
    if cores >= 2:
        check_shape(parallel_s < serial_s, "2-worker match_many beats serial wall-clock")
    else:
        lines.append(
            "single-core host: parallel wall-clock win not enforced "
            "(determinism still verified above)"
        )

    # ---- 4. UBODT-routed matching parity (same paths, table absorbs work) --
    ubodt_matcher = matcher.use_router(
        UbodtRouter(network, table, fallback=ShortestPathEngine(network))
    )
    ubodt_paths = [ubodt_matcher.match(t).path for t in trajectories[:5]]
    assert ubodt_paths == [r.path for r in serial[:5]]
    router = ubodt_matcher.engine
    lines.append(
        f"ubodt router parity  first 5 trajs identical; "
        f"{router.table_hits} table hits / {router.fallback_hits} fallback hits"
    )
    # The matcher fixture is module-scoped: put the default engine back so
    # later tests do not inherit the UBODT router.
    matcher.use_router(dataset.engine)

    save_report("perf_matching", "\n".join(lines))


def _cold_match_all(matcher, trajectories, pipeline_impl, trellis_impl):
    """One cold end-to-end matching pass under the given pipeline.

    Every cache whose state the batched pipeline could warm for the scalar
    one (and vice versa) is cleared, so each timed pass pays the full
    retrieval, routing and feature-extraction cost it owns.
    """
    matcher.config.pipeline_impl = pipeline_impl
    matcher.config.trellis_impl = trellis_impl
    matcher.engine.clear_cache()
    network = matcher.network
    network._near_memo.clear()
    network._route_turns.clear()
    network._index._box_cache.clear()
    matcher._pool_cache_obj = None
    start = time.perf_counter()
    paths = [tuple(matcher.match(t).path) for t in trajectories]
    return time.perf_counter() - start, paths


def test_perf_pipeline_vectorization(perf_dataset, perf_matcher):
    """Scalar reference pipeline vs the batched/vectorised pipeline, e2e.

    Both pipelines run the identical trained model over the identical
    trajectories with cold caches; decoded paths are asserted bit-identical
    on every repetition (the speed is only meaningful because the pipelines
    are interchangeable).  Timings are best-of-N because the CI hosts are
    noisy single-core boxes; the deterministic instruction-count ratio
    (``python -m repro profile``) is the stable companion number.
    """
    matcher = perf_matcher
    trajectories = [sample.cellular for sample in perf_dataset.samples]
    reps = 3

    scalar_s: list[float] = []
    batched_s: list[float] = []
    reference_paths = None
    try:
        for _ in range(reps):
            elapsed, scalar_paths = _cold_match_all(
                matcher, trajectories, "scalar", "reference"
            )
            scalar_s.append(elapsed)
            elapsed, batched_paths = _cold_match_all(
                matcher, trajectories, "batched", "vectorized"
            )
            batched_s.append(elapsed)
            # Hard assertion, never soft-skipped: the vectorised pipeline
            # must decode the exact same paths as the scalar reference.
            assert batched_paths == scalar_paths
            if reference_paths is None:
                reference_paths = scalar_paths
            assert scalar_paths == reference_paths
    finally:
        matcher.config.pipeline_impl = "batched"
        matcher.config.trellis_impl = "vectorized"

    best_scalar = min(scalar_s)
    best_batched = min(batched_s)
    speedup = best_scalar / max(best_batched, 1e-9)
    lines = [
        f"pipeline vectorization, {len(trajectories)} trajs, "
        f"best of {reps} cold runs",
        f"scalar reference     {best_scalar:6.2f} s   "
        f"(all runs: {', '.join(f'{s:.2f}' for s in scalar_s)})",
        f"batched vectorized   {best_batched:6.2f} s   "
        f"(all runs: {', '.join(f'{s:.2f}' for s in batched_s)})",
        f"speedup              {speedup:6.2f}x   (paths bit-identical, "
        f"every rep)",
    ]
    # In-tree floor: the scalar baseline shares the batched routing stack
    # (node-path cache, route_many fast path, turn-sum memo), so it is
    # itself far faster than the pre-vectorization pipeline; against that
    # stronger baseline the batched pipeline typically wins 3-4x here.
    # The hard floor sits below the observed noise band so a slow run
    # flags real regressions, not scheduler jitter; the >= 5x end-to-end
    # claim is vs the pre-vectorization pipeline (see docs/performance.md)
    # and the measured ratio is tracked by BENCH_matching.json.
    check_shape(speedup >= 2.5, "batched pipeline >= 2.5x scalar reference e2e")

    write_bench_json(
        "matching",
        config=dict(
            LHMM_SMOKE_CONFIG,
            num_trajectories=len(trajectories),
            reps=reps,
            dataset="perf-city 12x12 rng=13",
        ),
        metrics={
            "e2e_scalar_best_s": metric(best_scalar, "s", "lower"),
            "e2e_batched_best_s": metric(best_batched, "s", "lower"),
            "e2e_pipeline_speedup": metric(speedup, "x", "higher"),
        },
        notes="scalar-vs-batched LHMM.match over the perf smoke city; "
        "paths bit-identical on every rep; best-of-N cold-cache timing",
    )
    save_report("perf_pipeline", "\n".join(lines))

