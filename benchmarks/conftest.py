"""Shared benchmark fixtures: datasets and trained models, built once.

Scale knobs (environment variables):

* ``REPRO_BENCH_TRAJS``   — trajectories per city (default 450).
* ``REPRO_BENCH_TEST``    — evaluation trajectories per experiment (default 25).
* ``REPRO_BENCH_EPOCHS``  — LHMM training epochs (default 6).
* ``REPRO_BENCH_FAST=1``  — shrink everything for a smoke run.

Every experiment prints its table/series to stdout (run pytest with ``-s``
to watch) and also writes it to ``benchmarks/results/<name>.txt``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro import LHMM, LHMMConfig, make_city_dataset
from repro.baselines import make_baseline
from repro.baselines.seq2seq import Seq2SeqConfig

FAST = os.environ.get("REPRO_BENCH_FAST", "") == "1"
NUM_TRAJS = int(os.environ.get("REPRO_BENCH_TRAJS", "120" if FAST else "600"))
TEST_LIMIT = int(os.environ.get("REPRO_BENCH_TEST", "8" if FAST else "25"))
LHMM_EPOCHS = int(os.environ.get("REPRO_BENCH_EPOCHS", "2" if FAST else "6"))
SEQ2SEQ_EPOCHS = 4 if FAST else 16

RESULTS_DIR = Path(__file__).parent / "results"


def bench_lhmm_config() -> LHMMConfig:
    """The LHMM configuration used across all benchmark experiments."""
    return LHMMConfig(epochs=LHMM_EPOCHS)


def seq2seq_config(**overrides) -> Seq2SeqConfig:
    """Seq2seq settings for the learning baselines."""
    params = dict(epochs=SEQ2SEQ_EPOCHS)
    params.update(overrides)
    return Seq2SeqConfig(**params)


def save_report(name: str, text: str) -> None:
    """Print a result table and persist it under ``benchmarks/results``."""
    print(f"\n{text}\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def check_shape(condition: bool, message: str) -> None:
    """Assert an expected-shape property — only at full benchmark scale.

    ``REPRO_BENCH_FAST=1`` runs tiny datasets and barely-trained models to
    smoke-test the harness mechanics; the paper's comparative shapes only
    emerge with adequate data/training scale (that dependence is itself the
    paper's Fig. 10), so in fast mode violations are reported, not fatal.
    """
    if condition:
        return
    if FAST:
        print(f"[fast-mode] shape check not met (ignored): {message}")
        return
    raise AssertionError(f"shape check failed: {message}")


@pytest.fixture(scope="session")
def hangzhou():
    """The Hangzhou-like benchmark city."""
    return make_city_dataset("hangzhou", num_trajectories=NUM_TRAJS, rng=7)


@pytest.fixture(scope="session")
def xiamen():
    """The Xiamen-like benchmark city (smaller, faster sampling)."""
    return make_city_dataset("xiamen", num_trajectories=int(NUM_TRAJS * 0.8), rng=11)


@pytest.fixture(scope="session")
def lhmm_hangzhou(hangzhou):
    """LHMM trained on the Hangzhou-like training split."""
    return LHMM(bench_lhmm_config(), rng=0).fit(hangzhou)


@pytest.fixture(scope="session")
def lhmm_xiamen(xiamen):
    """LHMM trained on the Xiamen-like training split."""
    return LHMM(bench_lhmm_config(), rng=0).fit(xiamen)


@pytest.fixture(scope="session")
def dmm_hangzhou(hangzhou):
    """DMM (strongest baseline) trained on the Hangzhou-like split."""
    return make_baseline(
        "DMM",
        hangzhou,
        rng=0,
        config=seq2seq_config(input_mode="tower", constrained=True),
    )


@pytest.fixture(scope="session")
def stm_hangzhou(hangzhou):
    """STM (classical GPS-era HMM) over the Hangzhou-like city."""
    return make_baseline("STM", hangzhou, rng=0)
