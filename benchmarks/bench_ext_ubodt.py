"""Extension — the precomputation table the paper cites (§V-A2, FMM [11]).

The paper notes that the HMM "can use a precomputation table to avoid the
bottleneck of repeated shortest path searches".  This bench builds a UBODT
over the benchmark city, swaps it into a trained LHMM in place of the
memoising Dijkstra engine, verifies the matching output is unchanged, and
compares cold-cache matching time.
"""

import time

from repro.network import ShortestPathEngine, Ubodt, UbodtRouter

from benchmarks.conftest import TEST_LIMIT, check_shape, save_report

UBODT_DELTA_M = 4000.0


def test_ext_ubodt_routing(benchmark, hangzhou, lhmm_hangzhou):
    """UBODT vs Dijkstra engine: identical matches, table answers dominate."""
    build_start = time.perf_counter()
    table = Ubodt.build(hangzhou.network, delta_m=UBODT_DELTA_M)
    build_seconds = time.perf_counter() - build_start

    samples = hangzhou.test[: min(TEST_LIMIT, 10)]
    original_engine = lhmm_hangzhou.engine

    # Baseline paths with the (already warm) Dijkstra engine.
    dijkstra_paths = [lhmm_hangzhou.match(s.cellular).path for s in samples]

    router = UbodtRouter(hangzhou.network, table, fallback=ShortestPathEngine(hangzhou.network))
    try:
        lhmm_hangzhou.engine = router
        ubodt_start = time.perf_counter()
        ubodt_paths = [lhmm_hangzhou.match(s.cellular).path for s in samples]
        ubodt_seconds = (time.perf_counter() - ubodt_start) / len(samples)
    finally:
        lhmm_hangzhou.engine = original_engine

    agree = sum(1 for a, b in zip(dijkstra_paths, ubodt_paths) if a == b)
    total_queries = router.table_hits + router.fallback_hits
    table_share = router.table_hits / total_queries if total_queries else 0.0
    report = (
        "Extension — UBODT precomputation table (FMM [11])\n"
        f"  table rows                 {len(table):,} (delta {UBODT_DELTA_M:.0f} m)\n"
        f"  one-off build time         {build_seconds:.1f} s\n"
        f"  identical matched paths    {agree}/{len(samples)}\n"
        f"  route queries from table   {table_share:.1%}\n"
        f"  avg match time w/ UBODT    {ubodt_seconds:.3f} s"
    )
    save_report("ext_ubodt", report)

    # Shape: the table must answer the overwhelming majority of transitions
    # and must not change the matching output.
    check_shape(table_share > 0.9, "UBODT answers >90% of route queries")
    check_shape(agree >= len(samples) - 1, "UBODT routing preserves matches")

    benchmark(router.route_length, dijkstra_paths[0][0], dijkstra_paths[0][-1])
