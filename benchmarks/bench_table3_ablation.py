"""Table III — ablation study.

Regenerates the paper's ablation table: LHMM against LHMM-E (MLP embedding
instead of the Het-Graph encoder), LHMM-H (homogeneous GCN), LHMM-O (no
implicit observation correlation), LHMM-T (no implicit transition
correlation), LHMM-S (no shortcuts), plus STM and STM+S (the shortcut
structure bolted onto a classical HMM).

Expected shape (paper): every ablation hurts; LHMM-O hurts the most; the
shortcut helps both LHMM (LHMM > LHMM-S) and STM (STM+S > STM, notably on
hitting ratio / corridor accuracy).
"""

from repro import LHMM
from repro.baselines import STMatching
from repro.eval import evaluate_matcher, format_table

from benchmarks.conftest import TEST_LIMIT, bench_lhmm_config, check_shape, save_report

VARIANTS = ("LHMM", "LHMM-E", "LHMM-H", "LHMM-O", "LHMM-T", "LHMM-S")


def test_table3_ablation(benchmark, hangzhou, lhmm_hangzhou):
    """Train every ablated variant and report precision / CMF50 / HR."""
    test = hangzhou.test[:TEST_LIMIT]
    results = [evaluate_matcher(lhmm_hangzhou, hangzhou, test, method_name="LHMM")]
    for variant in VARIANTS[1:]:
        config = bench_lhmm_config().ablated(variant)
        matcher = LHMM(config, rng=0).fit(hangzhou)
        results.append(evaluate_matcher(matcher, hangzhou, test, method_name=variant))

    stm = STMatching(hangzhou)
    stm_s = STMatching(hangzhou, with_shortcuts=True)
    results.append(evaluate_matcher(stm, hangzhou, test, method_name="STM"))
    results.append(evaluate_matcher(stm_s, hangzhou, test, method_name="STM+S"))

    save_report(
        "table3_ablation",
        format_table(
            results,
            columns=["precision", "cmf50", "hr"],
            title="Table III — ablations (Hangzhou-like)",
        ),
    )

    by_name = {r.method: r for r in results}
    # The full model leads the ablations on the corridor metric (small
    # noise tolerance; the paper's margins are a few points).
    for variant in VARIANTS[1:]:
        check_shape(
            by_name["LHMM"].cmf50 <= by_name[variant].cmf50 + 0.05,
            f"full LHMM at least as accurate as {variant}",
        )
    # The shortcut is a general HMM improvement (paper: HR 0.874 -> 0.911).
    check_shape(
        by_name["STM+S"].hitting >= by_name["STM"].hitting - 0.02,
        "shortcuts do not hurt STM's hitting ratio",
    )

    benchmark(lhmm_hangzhou.match, hangzhou.test[0].cellular)
