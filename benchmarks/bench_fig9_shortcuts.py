"""Figure 9 — impact of the shortcut number K.

Sweeps the number of shortcut predecessors per candidate (Eq. 20) on the
same trained LHMM, at two candidate budgets:

* the default k — where candidate sets usually contain a truth road, so
  shortcuts rarely need to fire (Observation 1's premise is rare);
* a starved k=5 "stress" setting — where unqualified candidate sets are
  common and the shortcut mechanism has real work to do.

Expected shape (paper): going from no shortcut to one brings a boost; more
shortcuts give no steady further improvement — K=1 is sufficient.  The
boost concentrates in the stress setting; at generous k the curves are
nearly flat, which is itself informative (shortcuts only matter when
candidate preparation fails — exactly Observation 1).
"""

from repro.eval import evaluate_matcher, format_series

from benchmarks.conftest import TEST_LIMIT, check_shape, save_report

K_VALUES = [0, 1, 2, 3]
STRESS_CANDIDATES = 5


def _sweep(matcher, dataset, samples, candidate_k):
    original = (
        matcher.config.shortcut_k,
        matcher.config.use_shortcuts,
        matcher.config.candidate_k,
    )
    cmf, hr = [], []
    try:
        matcher.config.candidate_k = candidate_k
        for k in K_VALUES:
            matcher.config.use_shortcuts = k > 0
            matcher.config.shortcut_k = max(k, 1)
            result = evaluate_matcher(matcher, dataset, samples, method_name=f"K={k}")
            cmf.append(result.cmf50)
            hr.append(result.hitting)
    finally:
        (
            matcher.config.shortcut_k,
            matcher.config.use_shortcuts,
            matcher.config.candidate_k,
        ) = original
    return cmf, hr


def test_fig9_shortcut_number(benchmark, hangzhou, lhmm_hangzhou):
    """CMF50 vs shortcut count K at default and starved candidate budgets."""
    samples = hangzhou.test[: min(TEST_LIMIT, 15)]
    cmf_default, _ = _sweep(lhmm_hangzhou, hangzhou, samples, lhmm_hangzhou.config.candidate_k)
    cmf_stress, _ = _sweep(lhmm_hangzhou, hangzhou, samples, STRESS_CANDIDATES)

    save_report(
        "fig9_shortcuts",
        format_series(
            "K",
            K_VALUES,
            {
                "cmf50 (default k)": cmf_default,
                f"cmf50 (k={STRESS_CANDIDATES})": cmf_stress,
            },
            title="Fig. 9 — impact of shortcut number K (LHMM)",
        ),
    )

    # Shape: one shortcut is at least as good as none (clearest under
    # starved candidate sets); extra shortcuts add little over K=1.
    check_shape(cmf_stress[1] <= cmf_stress[0] + 0.02, "K=1 at least as good as K=0 (stress)")
    check_shape(cmf_default[1] <= cmf_default[0] + 0.02, "K=1 at least as good as K=0")
    check_shape(abs(cmf_stress[3] - cmf_stress[1]) < 0.08, "K>1 adds little over K=1")

    benchmark(lhmm_hangzhou.match, samples[0].cellular)
