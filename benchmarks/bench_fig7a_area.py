"""Figure 7(a) — robustness across urban/rural areas.

Stratifies test trajectories into 5 levels by distance to the city centre
(the synthetic city has denser towers and roads downtown, mirroring the
paper's urban/rural gradient) and reports CMF50 per level for LHMM, DMM,
and STM.

Expected shape (paper): LHMM stays comparatively stable across levels; the
seq2seq DMM degrades toward the rim, where historical-trajectory coverage
is thinner; the GPS-era STM trails everywhere.
"""

import numpy as np

from repro.eval import evaluate_matcher, format_series

from benchmarks.conftest import check_shape, save_report

LEVELS = 5


def _stratify(dataset, samples):
    distances = np.array([dataset.distance_to_centre(s) for s in samples])
    edges = np.quantile(distances, np.linspace(0, 1, LEVELS + 1))
    buckets = [[] for _ in range(LEVELS)]
    for sample, dist in zip(samples, distances):
        level = int(np.searchsorted(edges[1:-1], dist, side="right"))
        buckets[level].append(sample)
    return buckets


def test_fig7a_area_robustness(benchmark, hangzhou, lhmm_hangzhou, dmm_hangzhou, stm_hangzhou):
    """CMF50 by distance-to-centre level for LHMM / DMM / STM."""
    buckets = _stratify(hangzhou, hangzhou.test)
    series = {"LHMM": [], "DMM": [], "STM": []}
    for bucket in buckets:
        subset = bucket[:10]
        for name, matcher in (
            ("LHMM", lhmm_hangzhou),
            ("DMM", dmm_hangzhou),
            ("STM", stm_hangzhou),
        ):
            if subset:
                result = evaluate_matcher(matcher, hangzhou, subset, method_name=name)
                series[name].append(result.cmf50)
            else:
                series[name].append(float("nan"))

    save_report(
        "fig7a_area",
        format_series(
            "centre-distance level",
            list(range(1, LEVELS + 1)),
            series,
            title="Fig. 7(a) — CMF50 vs distance to city centre",
        ),
    )

    # Shape: averaged over levels, LHMM is the most accurate.
    lhmm_mean = np.nanmean(series["LHMM"])
    check_shape(lhmm_mean <= np.nanmean(series["STM"]) + 0.02, "LHMM beats STM across areas")
    check_shape(lhmm_mean <= np.nanmean(series["DMM"]) + 0.02, "LHMM beats DMM across areas")

    benchmark(lhmm_hangzhou.match, hangzhou.test[0].cellular)
