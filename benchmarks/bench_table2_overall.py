"""Table II — overall performance of all eleven methods on both cities.

Regenerates the paper's headline table: precision, recall, RMF, CMF50, and
average matching time for six GPS-era baselines (STM, IVMM, IFM, DeepMM,
MCM, TransformerMM), four CTMM baselines (CLSTERS, SNet, THMM, DMM), and
LHMM.

Expected shape (paper): LHMM achieves the best accuracy on every metric;
CTMM-tailored methods beat GPS-era ones; seq2seq methods are competitive on
accuracy but much heavier models in the paper's setup.  Known deviation:
our seq2seq baselines are far smaller than DMM's production model, so their
absolute inference time does not reproduce the paper's ~25x slowdown.
"""

from repro.baselines import ALL_BASELINES, make_baseline
from repro.eval import evaluate_matcher, format_table

from benchmarks.conftest import TEST_LIMIT, check_shape, save_report, seq2seq_config

SEQ2SEQ_CONFIGS = {
    "DeepMM": dict(input_mode="grid", constrained=False, encoder="gru"),
    "TransformerMM": dict(input_mode="grid", constrained=False, encoder="transformer"),
    "DMM": dict(input_mode="tower", constrained=True, encoder="gru"),
}


def _run_city(dataset, lhmm, dmm=None):
    test = dataset.test[:TEST_LIMIT]
    results = []
    for name in ALL_BASELINES:
        if name == "DMM" and dmm is not None:
            matcher = dmm
        elif name in SEQ2SEQ_CONFIGS:
            matcher = make_baseline(
                name, dataset, rng=0, config=seq2seq_config(**SEQ2SEQ_CONFIGS[name])
            )
        else:
            matcher = make_baseline(name, dataset, rng=0)
        results.append(evaluate_matcher(matcher, dataset, test, method_name=name))
    results.append(evaluate_matcher(lhmm, dataset, test, method_name="LHMM"))
    return results


def _check_shape(results):
    by_name = {r.method: r for r in results}
    lhmm = by_name["LHMM"]
    # LHMM leads (or ties within noise) on the corridor metric and recall.
    best_cmf = min(r.cmf50 for r in results)
    check_shape(lhmm.cmf50 <= best_cmf + 0.03, "LHMM best-or-tied on CMF50")
    best_recall = max(r.recall for r in results)
    check_shape(lhmm.recall >= best_recall - 0.03, "LHMM best-or-tied on recall")
    # LHMM's candidate preparation must be strong in absolute terms.
    check_shape(lhmm.hitting > 0.75, "LHMM hitting ratio above 0.75")


def _significance_lines(results):
    """Paired-bootstrap check of LHMM vs the strongest heuristic baseline."""
    from repro.eval import paired_bootstrap

    lhmm = next(r for r in results if r.method == "LHMM")
    heuristics = [r for r in results if r.method not in ("LHMM", *SEQ2SEQ_CONFIGS)]
    strongest = min(heuristics, key=lambda r: r.cmf50)
    lines = []
    for metric in ("cmf50", "precision"):
        comparison = paired_bootstrap(lhmm, strongest, metric=metric, rng=0)
        lines.append("  " + comparison.describe())
    return "\n".join(lines)


def test_table2_hangzhou(benchmark, hangzhou, lhmm_hangzhou, dmm_hangzhou):
    """Full Table II on the Hangzhou-like city."""
    results = _run_city(hangzhou, lhmm_hangzhou, dmm_hangzhou)
    save_report(
        "table2_hangzhou",
        format_table(results, title="Table II — Hangzhou-like, overall performance")
        + "\n\nPaired bootstrap (LHMM vs strongest heuristic):\n"
        + _significance_lines(results),
    )
    sample = hangzhou.test[0]
    benchmark(lhmm_hangzhou.match, sample.cellular)
    _check_shape(results)


def test_table2_xiamen(benchmark, xiamen, lhmm_xiamen):
    """Full Table II on the Xiamen-like city."""
    results = _run_city(xiamen, lhmm_xiamen)
    save_report(
        "table2_xiamen",
        format_table(results, title="Table II — Xiamen-like, overall performance")
        + "\n\nPaired bootstrap (LHMM vs strongest heuristic):\n"
        + _significance_lines(results),
    )
    sample = xiamen.test[0]
    benchmark(lhmm_xiamen.match, sample.cellular)
    _check_shape(results)


def test_match_speed_thmm(benchmark, hangzhou):
    """Avg-time column: a representative heuristic HMM."""
    matcher = make_baseline("THMM", hangzhou, rng=0)
    benchmark(matcher.match, hangzhou.test[0].cellular)


def test_match_speed_dmm(benchmark, hangzhou, dmm_hangzhou):
    """Avg-time column: the seq2seq baseline."""
    benchmark(dmm_hangzhou.match, hangzhou.test[0].cellular)
