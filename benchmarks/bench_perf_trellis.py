"""Perf smoke benchmark: vectorized trellis kernel vs the reference oracle.

Self-contained (builds its own smoke city) so it runs in well under a
minute::

    PYTHONPATH=src python -m pytest benchmarks/bench_perf_trellis.py -s -m perf

It measures and writes to ``benchmarks/results/perf_trellis.txt``:

* isolated layer-scoring wall-clock — candidate sets prebuilt, router
  caches cleared per run, so the timed region is exactly the forward pass
  (per-pair scalar loop vs one batched route call + matrix max-plus per
  layer) — expected ≥ 3x on the smoke city;
* the same comparison with the shortcut pass on (``shortcut_k=1``);
* end-to-end ``LHMM.match`` wall-clock under both backends.

Every comparison also asserts the decoded sequences are identical — the
speed is only meaningful because the backends are interchangeable.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.bench_util import metric, write_bench_json
from benchmarks.conftest import check_shape, save_report
from repro.baselines.hmm_heuristic import (
    HeuristicHmmConfig,
    HeuristicHmmMatcher,
    _HeuristicScorer,
)
from repro.cellular import SimulationConfig, TowerPlacementConfig
from repro.core import LHMM, LHMMConfig
from repro.core.trellis import make_trellis
from repro.datasets import DatasetConfig, make_city_dataset

pytestmark = pytest.mark.perf

from repro.network import CityConfig

SMOKE_CITY = CityConfig(
    grid_rows=12,
    grid_cols=12,
    block_size_m=250.0,
    density_gradient=0.5,
    removal_prob=0.08,
    one_way_prob=0.05,
)
SMOKE_SIMULATION = SimulationConfig(
    min_trip_m=900.0,
    max_trip_m=2400.0,
    cellular_interval_mean_s=35.0,
    cellular_interval_sigma_s=10.0,
    cellular_interval_max_s=90.0,
    gps_interval_s=12.0,
)
SMOKE_TOWERS = TowerPlacementConfig(base_spacing_m=350.0, spacing_gradient=1.0)


@pytest.fixture(scope="module")
def smoke_dataset():
    config = DatasetConfig(
        name="trellis-smoke",
        city=SMOKE_CITY,
        towers=SMOKE_TOWERS,
        simulation=SMOKE_SIMULATION,
        num_trajectories=40,
        groundtruth="oracle",
    )
    return make_city_dataset(config, rng=13)


def _time_forward_passes(dataset, shortcut_k: int):
    """Layer-scoring wall-clock per backend over every smoke trajectory.

    Candidate sets and scorers are prebuilt outside the timed region and
    the router cache is cleared before every run, so both backends pay the
    full (cold) routing cost inside the forward pass they own.
    """
    matcher = HeuristicHmmMatcher(dataset, HeuristicHmmConfig())
    cases = []
    for sample in dataset.samples:
        trajectory = sample.cellular
        points = list(trajectory.points)
        if len(points) < 2:
            continue
        cases.append((matcher.candidate_sets(trajectory), points))

    totals = {}
    sequences = {}
    for impl in ("reference", "vectorized"):
        elapsed = 0.0
        decoded = []
        for candidate_sets, points in cases:
            scorer = _HeuristicScorer(matcher, points)
            trellis = make_trellis(
                [list(c) for c in candidate_sets],
                scorer,
                matcher.network,
                matcher.engine,
                points,
                impl=impl,
            )
            matcher.engine.clear_cache()
            start = time.perf_counter()
            decoded.append(trellis.run(shortcut_k=shortcut_k))
            elapsed += time.perf_counter() - start
        totals[impl] = elapsed
        sequences[impl] = decoded
    assert sequences["vectorized"] == sequences["reference"]
    return totals, len(cases)


def test_perf_trellis_kernel(smoke_dataset):
    dataset = smoke_dataset
    network = dataset.network
    lines = [
        f"trellis kernel smoke on {network.num_nodes} nodes / "
        f"{network.num_segments} segments"
    ]

    # ---- 1. isolated forward pass, plain Viterbi ----
    totals, n_cases = _time_forward_passes(dataset, shortcut_k=0)
    speedup = totals["reference"] / max(totals["vectorized"], 1e-9)
    lines.append(
        f"forward pass k=0     {n_cases:3d} trajs   "
        f"reference {totals['reference']:6.2f} s   "
        f"vectorized {totals['vectorized']:6.2f} s   speedup {speedup:5.2f}x   "
        f"(sequences identical)"
    )
    check_shape(speedup >= 3.0, "vectorized layer scoring >= 3x reference")

    # ---- 2. forward pass + shortcut insertion (Alg. 2) ----
    totals_k1, _ = _time_forward_passes(dataset, shortcut_k=1)
    speedup_k1 = totals_k1["reference"] / max(totals_k1["vectorized"], 1e-9)
    lines.append(
        f"forward pass k=1     {n_cases:3d} trajs   "
        f"reference {totals_k1['reference']:6.2f} s   "
        f"vectorized {totals_k1['vectorized']:6.2f} s   speedup {speedup_k1:5.2f}x   "
        f"(sequences identical)"
    )
    check_shape(speedup_k1 >= 1.0, "vectorized backend never loses with shortcuts on")

    # ---- 3. end-to-end LHMM.match under both backends ----
    matcher = LHMM(
        LHMMConfig(
            embedding_dim=12,
            het_layers=1,
            mlp_hidden=12,
            candidate_k=10,
            candidate_pool=50,
            candidate_radius_m=1600.0,
            epochs=2,
            batch_size=4,
            negatives_per_positive=3,
        ),
        rng=0,
    ).fit(dataset)
    matcher.degradation_enabled = False
    trajectories = [s.cellular for s in dataset.samples]
    results = {}
    for impl in ("reference", "vectorized"):
        matcher.config.trellis_impl = impl
        matcher.engine.clear_cache()
        start = time.perf_counter()
        results[impl] = [matcher.match(t) for t in trajectories]
        results[impl + "_s"] = time.perf_counter() - start
    assert [r.matched_sequence for r in results["vectorized"]] == [
        r.matched_sequence for r in results["reference"]
    ]
    assert [r.path for r in results["vectorized"]] == [
        r.path for r in results["reference"]
    ]
    e2e_speedup = results["reference_s"] / max(results["vectorized_s"], 1e-9)
    lines.append(
        f"LHMM.match e2e       {len(trajectories):3d} trajs   "
        f"reference {results['reference_s']:6.2f} s   "
        f"vectorized {results['vectorized_s']:6.2f} s   speedup {e2e_speedup:5.2f}x   "
        f"(paths bit-identical)"
    )

    write_bench_json(
        "trellis",
        config=dict(
            city="trellis-smoke 12x12 rng=13",
            num_trajectories=len(trajectories),
            shortcut_ks=[0, 1],
        ),
        metrics={
            "forward_k0_reference_s": metric(totals["reference"], "s", "lower"),
            "forward_k0_vectorized_s": metric(totals["vectorized"], "s", "lower"),
            "forward_k0_speedup": metric(speedup, "x", "higher"),
            "forward_k1_speedup": metric(speedup_k1, "x", "higher"),
            "e2e_reference_s": metric(results["reference_s"], "s", "lower"),
            "e2e_vectorized_s": metric(results["vectorized_s"], "s", "lower"),
        },
        notes="vectorized trellis kernel vs reference oracle; decoded "
        "sequences asserted identical on every timed run",
    )
    save_report("perf_trellis", "\n".join(lines))
