"""Figure 10 — impact of historical-data scale.

(a) Per-tower scale: buckets test points by how many training trajectories
    interacted with their tower and reports the fraction of points whose
    candidate set hits the truth path per bucket (the per-point analogue of
    the paper's per-tower CMF curve).
(b) Global scale: retrains LHMM on growing fractions of the training split
    and reports CMF50.

Expected shape (paper): both curves improve with more data and saturate —
per-tower after a couple of dozen interactions, globally as coverage of
the city completes.
"""

import numpy as np

from repro import LHMM
from repro.eval import evaluate_matcher, format_series

from benchmarks.conftest import TEST_LIMIT, bench_lhmm_config, check_shape, save_report

TOWER_BUCKETS = [(0, 5), (5, 15), (15, 30), (30, 60), (60, 10**9)]
GLOBAL_FRACTIONS = [0.1, 0.25, 0.5, 1.0]


def test_fig10a_per_tower_scale(benchmark, hangzhou, lhmm_hangzhou):
    """Candidate hit rate vs per-tower training interactions."""
    graph = lhmm_hangzhou.graph
    # Count training trajectories interacting with each tower.
    tower_counts = {}
    for sample in hangzhou.train:
        for tower_id in {p.tower_id for p in sample.cellular.points}:
            tower_counts[tower_id] = tower_counts.get(tower_id, 0) + 1

    bucket_hits = [[] for _ in TOWER_BUCKETS]
    for sample in hangzhou.test[:TEST_LIMIT]:
        result = lhmm_hangzhou.match(sample.cellular)
        truth = set(sample.truth_path)
        for point, candidates in zip(sample.cellular.points, result.candidate_sets):
            count = tower_counts.get(point.tower_id, 0)
            hit = 1.0 if truth.intersection(candidates) else 0.0
            for i, (lo, hi) in enumerate(TOWER_BUCKETS):
                if lo <= count < hi:
                    bucket_hits[i].append(hit)
                    break

    hit_rates = [float(np.mean(b)) if b else float("nan") for b in bucket_hits]
    labels = [f"{lo}-{hi if hi < 10**9 else 'inf'}" for lo, hi in TOWER_BUCKETS]
    save_report(
        "fig10a_per_tower",
        format_series(
            "trajectories/tower",
            labels,
            {"candidate_hit_rate": hit_rates},
            title="Fig. 10(a) — candidate hit rate vs per-tower data scale",
        ),
    )

    populated = [r for r in hit_rates if not np.isnan(r)]
    # Shape: well-observed towers locate their roads better than barely
    # observed ones.
    check_shape(
        len(populated) >= 2 and max(populated[1:]) >= populated[0] - 0.05,
        "better-observed towers are located at least as well",
    )

    benchmark(lhmm_hangzhou.match, hangzhou.test[0].cellular)


def test_fig10b_global_scale(benchmark, hangzhou):
    """CMF50 vs number of historical training trajectories."""
    samples = hangzhou.test[: min(TEST_LIMIT, 12)]
    train = hangzhou.train
    sizes, cmfs, hrs = [], [], []
    for fraction in GLOBAL_FRACTIONS:
        subset = train[: max(5, int(len(train) * fraction))]
        matcher = LHMM(bench_lhmm_config(), rng=0).fit(hangzhou, train_samples=subset)
        result = evaluate_matcher(matcher, hangzhou, samples, method_name=f"{fraction}")
        sizes.append(len(subset))
        cmfs.append(result.cmf50)
        hrs.append(result.hitting)

    save_report(
        "fig10b_global_scale",
        format_series(
            "train trajectories",
            sizes,
            {"cmf50": cmfs, "hitting_ratio": hrs},
            title="Fig. 10(b) — accuracy vs historical data scale",
        ),
    )

    # Shape: more history means better candidate location and accuracy.
    check_shape(hrs[-1] >= hrs[0] - 0.02, "hitting ratio improves with data scale")
    check_shape(cmfs[-1] <= cmfs[0] + 0.05, "accuracy improves with data scale")

    last = LHMM(bench_lhmm_config(), rng=0)
    benchmark.pedantic(
        lambda: None, rounds=1, iterations=1
    )  # training dominates; timing handled by other benches
