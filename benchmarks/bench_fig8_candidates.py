"""Figure 8 — impact of the candidate number k.

Sweeps the per-point candidate count on the *same trained* LHMM (k only
affects path-finding, not training) and reports CMF50 and average match
time at each k.

Expected shape (paper): accuracy improves sharply at small k, then plateaus
and can even degrade as extra candidates add noise; time grows with k
(quadratically many transitions per step).
"""

from repro.eval import evaluate_matcher, format_series

from benchmarks.conftest import TEST_LIMIT, check_shape, save_report

K_VALUES = [4, 8, 12, 20, 30, 45]


def test_fig8_candidate_number(benchmark, hangzhou, lhmm_hangzhou):
    """CMF50 and avg time vs candidate number k."""
    samples = hangzhou.test[: min(TEST_LIMIT, 15)]
    original_k = lhmm_hangzhou.config.candidate_k
    cmf_series, time_series = [], []
    try:
        for k in K_VALUES:
            lhmm_hangzhou.config.candidate_k = k
            result = evaluate_matcher(
                lhmm_hangzhou, hangzhou, samples, method_name=f"k={k}"
            )
            cmf_series.append(result.cmf50)
            time_series.append(result.avg_time)
    finally:
        lhmm_hangzhou.config.candidate_k = original_k

    save_report(
        "fig8_candidates",
        format_series(
            "k",
            K_VALUES,
            {"cmf50": cmf_series, "avg_time_s": time_series},
            title="Fig. 8 — impact of candidate number k (LHMM)",
        ),
    )

    # Shape: tiny k is starved; moderate k is near the optimum; more
    # candidates cost more time.
    check_shape(min(cmf_series[2:]) <= cmf_series[0] + 0.02, "moderate k beats tiny k")
    check_shape(time_series[-1] > time_series[0], "match time grows with k")

    lhmm_hangzhou.config.candidate_k = original_k
    benchmark(lhmm_hangzhou.match, samples[0].cellular)
