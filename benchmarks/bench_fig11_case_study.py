"""Figure 11 — case study on challenging trajectories.

Selects the five test trajectories with the highest positioning-noise
proxy (mean distance from the cellular samples to the ground-truth path),
reports per-case CMF50 for LHMM and DMM, and renders the median case as an
ASCII map against the ground truth.

Expected shape (paper): on hard cases the HMM backbone holds up better
than the seq2seq decoder (paper's single exhibited case: LHMM CMF 0.147 vs
DMM 0.424); we assert it on the mean over the five hardest cases.
"""

import numpy as np

from repro.eval.metrics import corridor_mismatch_fraction
from repro.viz import render_match_ascii

from benchmarks.conftest import check_shape, save_report

def _noise_proxy(dataset, sample) -> float:
    """Mean distance from cellular samples to the ground-truth path."""
    distances = []
    for point in sample.cellular.points:
        d = dataset.network.distances_to_segments(point.position, sample.truth_path)
        distances.append(float(d.min()))
    return float(np.mean(distances))


def test_fig11_case_study(benchmark, hangzhou, lhmm_hangzhou, dmm_hangzhou):
    """Evaluate the five hardest test cases; render the median one."""
    candidates = [s for s in hangzhou.test if len(s.cellular) >= 5]
    hardest_five = sorted(
        candidates, key=lambda s: _noise_proxy(hangzhou, s), reverse=True
    )[:5]

    rows = []
    for sample in hardest_five:
        lhmm_path = lhmm_hangzhou.match(sample.cellular).path
        dmm_path = dmm_hangzhou.match(sample.cellular).path
        rows.append(
            {
                "sample": sample,
                "offset": _noise_proxy(hangzhou, sample),
                "lhmm_path": lhmm_path,
                "dmm_path": dmm_path,
                "lhmm_cmf": corridor_mismatch_fraction(
                    hangzhou.network, sample.truth_path, lhmm_path
                ),
                "dmm_cmf": corridor_mismatch_fraction(
                    hangzhou.network, sample.truth_path, dmm_path
                ),
            }
        )

    header = [
        "Fig. 11 — challenging cases (5 highest mean sample offsets)",
        f"  {'trajectory':>10}  {'offset(m)':>9}  {'LHMM CMF50':>10}  {'DMM CMF50':>9}",
    ]
    for row in rows:
        header.append(
            f"  {row['sample'].sample_id:>10}  {row['offset']:>9.0f}  "
            f"{row['lhmm_cmf']:>10.3f}  {row['dmm_cmf']:>9.3f}"
        )
    # Render the median-difficulty case of the five.
    rows_by_offset = sorted(rows, key=lambda r: r["offset"])
    shown = rows_by_offset[len(rows_by_offset) // 2]
    art = render_match_ascii(
        hangzhou.network,
        shown["sample"].truth_path,
        {"L": shown["lhmm_path"], "D": shown["dmm_path"]},
        shown["sample"].cellular,
        width=72,
        height=26,
    )
    report = (
        "\n".join(header)
        + f"\n\nRendered case: trajectory {shown['sample'].sample_id} "
        f"(LHMM {shown['lhmm_cmf']:.3f} vs DMM {shown['dmm_cmf']:.3f})\n\n"
        + art
    )
    save_report("fig11_case_study", report)

    # Shape: averaged over the hard cases, the HMM backbone holds up at
    # least as well as the seq2seq decoder (error propagation).
    lhmm_mean = float(np.mean([r["lhmm_cmf"] for r in rows]))
    dmm_mean = float(np.mean([r["dmm_cmf"] for r in rows]))
    check_shape(
        lhmm_mean <= dmm_mean + 0.1,
        "LHMM survives challenging cases at least as well as DMM",
    )

    benchmark(lhmm_hangzhou.match, shown["sample"].cellular)
