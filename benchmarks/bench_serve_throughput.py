"""Perf smoke benchmark: repro.serve throughput and tail latency.

Boots a real :class:`~repro.serve.MatchingServer` (in-process, ephemeral
port) on a small smoke city and drives it over HTTP with concurrent
:class:`~repro.serve.MatchingClient` threads::

    PYTHONPATH=src python -m pytest benchmarks/bench_serve_throughput.py -s -m perf

It measures and writes to ``benchmarks/results/serve_throughput.txt``:

* batch endpoint throughput (whole trajectories through ``/v1/match``,
  micro-batched across concurrent clients) — req/s and p50/p95/p99;
* streaming session throughput (per-point feeds through
  ``/v1/sessions/{id}/points``) — points/s and per-feed p50/p95/p99;
* served results verified identical to direct in-process matching.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from benchmarks.bench_util import metric, write_bench_json
from benchmarks.conftest import FAST, save_report
from repro.cellular import SimulationConfig, TowerPlacementConfig
from repro.core import LHMM, LHMMConfig, OnlineLHMM
from repro.datasets import DatasetConfig, make_city_dataset
from repro.network import CityConfig
from repro.serve import MatchingClient, MatchingServer, ServeConfig
from repro.utils import LatencyHistogram

pytestmark = pytest.mark.perf

SMOKE_CITY = CityConfig(
    grid_rows=10,
    grid_cols=10,
    block_size_m=250.0,
    density_gradient=0.5,
    removal_prob=0.08,
    one_way_prob=0.05,
)
SMOKE_SIMULATION = SimulationConfig(
    min_trip_m=900.0,
    max_trip_m=2200.0,
    cellular_interval_mean_s=35.0,
    cellular_interval_sigma_s=10.0,
    cellular_interval_max_s=90.0,
    gps_interval_s=12.0,
)
SMOKE_TOWERS = TowerPlacementConfig(base_spacing_m=350.0, spacing_gradient=1.0)

CLIENT_THREADS = 2 if FAST else 4
BATCH_REQUESTS = 12 if FAST else 48
STREAM_SESSIONS = 4 if FAST else 12


@pytest.fixture(scope="module")
def smoke_matcher():
    config = DatasetConfig(
        name="serve-smoke-city",
        city=SMOKE_CITY,
        towers=SMOKE_TOWERS,
        simulation=SMOKE_SIMULATION,
        num_trajectories=50,
        groundtruth="oracle",
    )
    dataset = make_city_dataset(config, rng=17)
    matcher = LHMM(
        LHMMConfig(
            embedding_dim=12,
            het_layers=1,
            mlp_hidden=12,
            candidate_k=10,
            candidate_pool=50,
            candidate_radius_m=1600.0,
            epochs=2,
            batch_size=4,
            negatives_per_positive=3,
        ),
        rng=0,
    ).fit(dataset)
    return dataset, matcher


def test_serve_throughput(smoke_matcher):
    dataset, matcher = smoke_matcher
    samples = dataset.samples
    lines = [
        f"serve smoke on {dataset.network.num_segments} segments, "
        f"{CLIENT_THREADS} client threads"
    ]

    config = ServeConfig(port=0, batch_window_ms=10.0, batch_max=8, queue_limit=128)
    with MatchingServer(matcher, config) as server:
        client = MatchingClient(server.host, server.port, timeout=120.0)

        # Warm the router cache so steady-state latency is measured.
        client.match([samples[0].cellular])

        # ---- 1. batch endpoint: whole trajectories, micro-batched ----
        batch_latency = LatencyHistogram()
        work = [samples[i % len(samples)] for i in range(BATCH_REQUESTS)]

        def one_batch_request(sample):
            local = MatchingClient(server.host, server.port, timeout=120.0)
            start = time.perf_counter()
            result = local.match_with_retry([sample.cellular])
            batch_latency.record(time.perf_counter() - start)
            return sample, result[0]["path"]

        start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=CLIENT_THREADS) as pool:
            served = list(pool.map(one_batch_request, work))
        batch_wall_s = time.perf_counter() - start

        expected = {
            s.sample_id: matcher.match(s.cellular).path
            for s in {sample.sample_id: sample for sample in work}.values()
        }
        assert all(path == expected[sample.sample_id] for sample, path in served)

        snap = batch_latency.snapshot()
        lines.append(
            f"batch  /v1/match     {BATCH_REQUESTS:3d} requests  "
            f"{BATCH_REQUESTS / batch_wall_s:7.1f} req/s   "
            f"p50 {snap['p50_s'] * 1e3:7.1f} ms  p95 {snap['p95_s'] * 1e3:7.1f} ms  "
            f"p99 {snap['p99_s'] * 1e3:7.1f} ms"
        )

        # ---- 2. streaming sessions: per-point feeds ----
        feed_latency = LatencyHistogram()
        stream_work = [samples[i % len(samples)] for i in range(STREAM_SESSIONS)]

        def one_stream(sample):
            local = MatchingClient(server.host, server.port, timeout=120.0)
            session = local.create_session(lag=3)
            for point in sample.cellular.points:
                start = time.perf_counter()
                session.feed(point)
                feed_latency.record(time.perf_counter() - start)
            return sample, session.close()

        start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=CLIENT_THREADS) as pool:
            streamed = list(pool.map(one_stream, stream_work))
        stream_wall_s = time.perf_counter() - start

        for sample, path in streamed:
            assert path == OnlineLHMM(matcher, lag=3).match_stream(sample.cellular)

        snap = feed_latency.snapshot()
        total_points = sum(len(s.cellular) for s in stream_work)
        lines.append(
            f"stream /points feeds {total_points:3d} points    "
            f"{total_points / stream_wall_s:7.1f} pts/s   "
            f"p50 {snap['p50_s'] * 1e3:7.1f} ms  p95 {snap['p95_s'] * 1e3:7.1f} ms  "
            f"p99 {snap['p99_s'] * 1e3:7.1f} ms"
        )

        metrics = client.metrics()
        batching = metrics["batching"]
        lines.append(
            f"server side          {batching['batches_dispatched']} batches for "
            f"{batching['items_dispatched']} items "
            f"(mean batch {batching['mean_batch']:.2f}), "
            f"{metrics['sessions']['recycled_total']} decoders recycled, "
            f"{batching['rejected_total']} rejections"
        )
        lines.append(
            "all served paths verified identical to direct LHMM / OnlineLHMM calls"
        )

    batch_snap = batch_latency.snapshot()
    feed_snap = feed_latency.snapshot()
    write_bench_json(
        "serve",
        config=dict(
            city="serve-smoke-city 10x10 rng=17",
            client_threads=CLIENT_THREADS,
            batch_requests=BATCH_REQUESTS,
            stream_sessions=STREAM_SESSIONS,
        ),
        metrics={
            "batch_req_per_s": metric(
                BATCH_REQUESTS / batch_wall_s, "req/s", "higher"
            ),
            "batch_p95_ms": metric(batch_snap["p95_s"] * 1e3, "ms", "lower"),
            "stream_points_per_s": metric(
                total_points / stream_wall_s, "pts/s", "higher"
            ),
            "stream_feed_p95_ms": metric(feed_snap["p95_s"] * 1e3, "ms", "lower"),
        },
        notes="in-process MatchingServer over HTTP; served paths verified "
        "identical to direct LHMM / OnlineLHMM calls",
    )
    save_report("serve_throughput", "\n".join(lines))
