"""Perf smoke benchmark: cluster serving tier throughput and tail latency.

Boots the sharded cluster (asyncio gateway + 2 forked matcher workers
attached to shared-memory artifacts) on a small smoke city and drives it
with an **open-loop load generator**: request arrivals follow a seeded
Poisson process at a fixed offered rate, regardless of completions — the
honest way to measure a serving tier, because a closed loop slows its own
offered load down whenever the server slows down::

    PYTHONPATH=src python -m pytest benchmarks/bench_serve_throughput.py -s -m perf

The trace (arrival times + which trajectory each request carries) is
derived from a fixed seed, so a run is replayable bit-for-bit.  Three
phases, each reported with achieved rate, p50/p95/p99 latency (measured
from *scheduled arrival*, so queueing is included), and error rate:

* **cached** — steady-state gateway serving: repeated trajectories answer
  from the response cache without touching a worker (the headline
  ``batch_req_per_s``; cached responses are byte-identical to worker
  responses by construction);
* **uncached** — every request crosses the IPC boundary into a matcher
  worker (cache disabled), measuring the worker-fleet path;
* **streaming** — per-point session feeds through consistent-hash-routed
  sticky sessions.

Every served path is verified identical to direct ``LHMM`` /
``OnlineLHMM`` calls, and per-worker private memory (USS) is recorded to
show the artifacts are mapped once, not copied per worker.
"""

from __future__ import annotations

import random
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from benchmarks.bench_util import metric, write_bench_json
from benchmarks.conftest import FAST, save_report
from repro.cellular import SimulationConfig, TowerPlacementConfig
from repro.core import LHMM, LHMMConfig, OnlineLHMM
from repro.datasets import DatasetConfig, make_city_dataset, save_dataset
from repro.network import CityConfig
from repro.serve import ClusterConfig, ClusterServer, MatchingClient, ShardRegistry, ShardSpec
from repro.utils import LatencyHistogram

pytestmark = pytest.mark.perf

SMOKE_CITY = CityConfig(
    grid_rows=10,
    grid_cols=10,
    block_size_m=250.0,
    density_gradient=0.5,
    removal_prob=0.08,
    one_way_prob=0.05,
)
SMOKE_SIMULATION = SimulationConfig(
    min_trip_m=900.0,
    max_trip_m=2200.0,
    cellular_interval_mean_s=35.0,
    cellular_interval_sigma_s=10.0,
    cellular_interval_max_s=90.0,
    gps_interval_s=12.0,
)
SMOKE_TOWERS = TowerPlacementConfig(base_spacing_m=350.0, spacing_gradient=1.0)

NUM_WORKERS = 2
TRACE_SEED = 20240808
CLIENT_THREADS = 8 if FAST else 12
CACHED_RATE = 150.0 if FAST else 400.0  # offered req/s, cached phase
CACHED_REQUESTS = 240 if FAST else 1200
UNCACHED_RATE = 30.0 if FAST else 60.0
UNCACHED_REQUESTS = 60 if FAST else 180
STREAM_SESSIONS = 4 if FAST else 12


@pytest.fixture(scope="module")
def cluster_artifacts(tmp_path_factory):
    """Smoke dataset + trained model saved as artifacts for the cluster."""
    config = DatasetConfig(
        name="serve-smoke-city",
        city=SMOKE_CITY,
        towers=SMOKE_TOWERS,
        simulation=SMOKE_SIMULATION,
        num_trajectories=50,
        groundtruth="oracle",
    )
    dataset = make_city_dataset(config, rng=17)
    matcher = LHMM(
        LHMMConfig(
            embedding_dim=12,
            het_layers=1,
            mlp_hidden=12,
            candidate_k=10,
            candidate_pool=50,
            candidate_radius_m=1600.0,
            epochs=2,
            batch_size=4,
            negatives_per_positive=3,
        ),
        rng=0,
    ).fit(dataset)
    root = tmp_path_factory.mktemp("serve-cluster")
    dataset_path = root / "city.json.gz"
    model_path = root / "model.npz"
    save_dataset(dataset, dataset_path)
    matcher.save(model_path)
    return dataset, matcher, str(dataset_path), str(model_path)


def make_trace(samples, rate_per_s: float, count: int, seed: int):
    """A replayable open-loop trace: (arrival_offset_s, sample) pairs.

    Public: the cluster chaos tests reuse this (and :func:`open_loop`) to
    drive rollout/autoscaler scenarios with the same honest load shape
    the perf smoke uses.
    """
    rng = random.Random(seed)
    now = 0.0
    trace = []
    for _ in range(count):
        now += rng.expovariate(rate_per_s)
        trace.append((now, samples[rng.randrange(len(samples))]))
    return trace


def open_loop(
    host: str,
    port: int,
    trace,
    client_threads: int | None = None,
    max_attempts: int = 4,
    deadline_s: float = 30.0,
) -> tuple[list, float]:
    """Fire the trace at its scheduled rate; never wait for completions.

    Latency is measured from each request's *scheduled arrival* so time
    spent queueing (client pool or server) counts against the SLO.
    Returns ``(results, wall_s)`` where each result is
    ``(latency_s, ok, sample, path_or_none)``.
    """
    results = []
    lock = threading.Lock()
    local = threading.local()

    def fire(sample, scheduled_abs: float):
        client = getattr(local, "client", None)
        if client is None:
            client = local.client = MatchingClient(
                host, port, timeout=60.0, keep_alive=True
            )
        path = None
        try:
            response = client.match_with_retry(
                [sample.cellular], max_attempts=max_attempts,
                base_delay_s=0.05, deadline_s=deadline_s,
            )
            ok = "error" not in response[0]
            if ok:
                path = response[0]["path"]
        except Exception:  # noqa: BLE001 - an error is a datapoint here
            ok = False
        latency = time.perf_counter() - scheduled_abs
        with lock:
            results.append((latency, ok, sample, path))

    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=client_threads or CLIENT_THREADS) as pool:
        futures = []
        for offset, sample in trace:
            scheduled_abs = start + offset
            delay = scheduled_abs - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            futures.append(pool.submit(fire, sample, scheduled_abs))
        for future in futures:
            future.result()
    return results, time.perf_counter() - start


def _summarise(results, wall_s: float):
    histogram = LatencyHistogram()
    errors = 0
    for latency, ok, _sample, _path in results:
        histogram.record(latency)
        if not ok:
            errors += 1
    snap = histogram.snapshot()
    return {
        "req_per_s": len(results) / wall_s,
        "p50_ms": snap["p50_s"] * 1e3,
        "p95_ms": snap["p95_s"] * 1e3,
        "p99_ms": snap["p99_s"] * 1e3,
        "error_rate": errors / max(1, len(results)),
    }


def _assert_parity(results, matcher, expected_cache):
    for _latency, ok, sample, path in results:
        if not ok:
            continue
        expected = expected_cache.get(sample.sample_id)
        if expected is None:
            expected = expected_cache[sample.sample_id] = matcher.match(
                sample.cellular
            ).path
        assert path == expected, f"served path diverged for {sample.sample_id}"


def test_cluster_serve_throughput(cluster_artifacts):
    dataset, matcher, dataset_path, model_path = cluster_artifacts
    samples = dataset.samples
    expected_cache: dict = {}
    lines = [
        f"cluster serve smoke on {dataset.network.num_segments} segments, "
        f"{NUM_WORKERS} workers, {CLIENT_THREADS} client threads, "
        f"seeded open-loop trace (seed={TRACE_SEED})"
    ]

    # ---- phase 1 + 3: cached gateway + streaming, one cluster ----
    registry = ShardRegistry.publish(
        [ShardSpec(region="default", dataset=dataset_path, model=model_path)]
    )
    shared_kb = registry.total_bytes() / 1024
    config = ClusterConfig(
        port=0, num_workers=NUM_WORKERS, cache_size=4096, max_inflight=128
    )
    with ClusterServer(registry, config) as server:
        probe = MatchingClient(server.host, server.port, timeout=60.0)
        # Warm every trajectory once: routers, candidate pools, and the
        # response cache reach steady state before the clock starts.
        for sample in samples:
            probe.match_with_retry([sample.cellular])

        trace = make_trace(samples, CACHED_RATE, CACHED_REQUESTS, TRACE_SEED)
        results, wall_s = open_loop(server.host, server.port, trace)
        cached = _summarise(results, wall_s)
        _assert_parity(results, matcher, expected_cache)
        assert cached["error_rate"] == 0.0
        lines.append(
            f"cached  /v1/match  {len(results):4d} requests  offered "
            f"{CACHED_RATE:6.0f} req/s  achieved {cached['req_per_s']:7.1f} req/s   "
            f"p50 {cached['p50_ms']:7.1f} ms  p95 {cached['p95_ms']:7.1f} ms  "
            f"p99 {cached['p99_ms']:7.1f} ms  errors {cached['error_rate']:.1%}"
        )

        # ---- streaming sessions over consistent-hash-routed workers ----
        feed_latency = LatencyHistogram()
        stream_work = [samples[i % len(samples)] for i in range(STREAM_SESSIONS)]

        def one_stream(sample):
            local = MatchingClient(server.host, server.port, timeout=60.0,
                                   keep_alive=True)
            session = local.create_session(lag=3)
            for point in sample.cellular.points:
                started = time.perf_counter()
                session.feed(point)
                feed_latency.record(time.perf_counter() - started)
            return sample, session.close()

        started = time.perf_counter()
        with ThreadPoolExecutor(max_workers=min(4, CLIENT_THREADS)) as pool:
            streamed = list(pool.map(one_stream, stream_work))
        stream_wall_s = time.perf_counter() - started

        for sample, path in streamed:
            assert path == OnlineLHMM(matcher, lag=3).match_stream(sample.cellular)

        feed_snap = feed_latency.snapshot()
        total_points = sum(len(s.cellular) for s in stream_work)
        lines.append(
            f"stream  /points    {total_points:4d} points    "
            f"{total_points / stream_wall_s:7.1f} pts/s   "
            f"p50 {feed_snap['p50_s'] * 1e3:7.1f} ms  "
            f"p95 {feed_snap['p95_s'] * 1e3:7.1f} ms"
        )

        # ---- worker memory: artifacts mapped once, not per process ----
        metrics_snapshot = probe.metrics()
        worker_private_kb = [
            w["memory"]["private_kb"]
            for w in metrics_snapshot["workers"]
            if w.get("memory")
        ]
        cache_stats = metrics_snapshot["cache"]
        lines.append(
            f"shared artifacts {shared_kb:.0f} KiB mapped by "
            f"{len(worker_private_kb)} workers; per-worker private RSS "
            f"{[f'{kb / 1024:.0f} MiB' for kb in worker_private_kb]} "
            f"(cache: {cache_stats['hits']} hits / {cache_stats['misses']} misses)"
        )

    # ---- phase 2: uncached — every request crosses IPC to a worker ----
    registry = ShardRegistry.publish(
        [ShardSpec(region="default", dataset=dataset_path, model=model_path)]
    )
    config = ClusterConfig(
        port=0, num_workers=NUM_WORKERS, cache_size=0, max_inflight=128
    )
    with ClusterServer(registry, config) as server:
        probe = MatchingClient(server.host, server.port, timeout=60.0)
        for sample in samples:  # warm routers/pools, no response cache
            probe.match_with_retry([sample.cellular])
        trace = make_trace(
            samples, UNCACHED_RATE, UNCACHED_REQUESTS, TRACE_SEED + 1
        )
        results, wall_s = open_loop(server.host, server.port, trace)
        uncached = _summarise(results, wall_s)
        _assert_parity(results, matcher, expected_cache)
        assert uncached["error_rate"] == 0.0
        lines.append(
            f"uncached /v1/match {len(results):4d} requests  offered "
            f"{UNCACHED_RATE:6.0f} req/s  achieved {uncached['req_per_s']:7.1f} req/s   "
            f"p50 {uncached['p50_ms']:7.1f} ms  p95 {uncached['p95_ms']:7.1f} ms  "
            f"p99 {uncached['p99_ms']:7.1f} ms  errors {uncached['error_rate']:.1%}"
        )

    # ---- phase 4: uncached again, workers dialing back over TCP ----
    # Same trace, same fleet size, same zero cache — the only variable is
    # the gateway<->worker transport (inherited socketpair vs localhost
    # TCP frames), so the delta is the federation transport's overhead.
    registry = ShardRegistry.publish(
        [ShardSpec(region="default", dataset=dataset_path, model=model_path)]
    )
    config = ClusterConfig(
        port=0, num_workers=NUM_WORKERS, cache_size=0, max_inflight=128,
        worker_transport="tcp",
    )
    with ClusterServer(registry, config) as server:
        probe = MatchingClient(server.host, server.port, timeout=60.0)
        for sample in samples:  # warm routers/pools, no response cache
            probe.match_with_retry([sample.cellular])
        trace = make_trace(
            samples, UNCACHED_RATE, UNCACHED_REQUESTS, TRACE_SEED + 1
        )
        results, wall_s = open_loop(server.host, server.port, trace)
        uncached_tcp = _summarise(results, wall_s)
        _assert_parity(results, matcher, expected_cache)
        assert uncached_tcp["error_rate"] == 0.0
        tcp_delta = uncached_tcp["req_per_s"] / max(uncached["req_per_s"], 1e-9)
        lines.append(
            f"tcp      /v1/match {len(results):4d} requests  offered "
            f"{UNCACHED_RATE:6.0f} req/s  achieved {uncached_tcp['req_per_s']:7.1f} req/s   "
            f"p50 {uncached_tcp['p50_ms']:7.1f} ms  p95 {uncached_tcp['p95_ms']:7.1f} ms  "
            f"p99 {uncached_tcp['p99_ms']:7.1f} ms  "
            f"({tcp_delta:.2f}x of socketpair throughput)"
        )

    lines.append(
        "all served paths verified identical to direct LHMM / OnlineLHMM calls"
    )

    write_bench_json(
        "serve",
        config=dict(
            city="serve-smoke-city 10x10 rng=17",
            mode="cluster-open-loop",
            workers=NUM_WORKERS,
            client_threads=CLIENT_THREADS,
            trace_seed=TRACE_SEED,
            cached_rate_req_per_s=CACHED_RATE,
            cached_requests=CACHED_REQUESTS,
            uncached_rate_req_per_s=UNCACHED_RATE,
            uncached_requests=UNCACHED_REQUESTS,
            stream_sessions=STREAM_SESSIONS,
        ),
        metrics={
            "batch_req_per_s": metric(cached["req_per_s"], "req/s", "higher"),
            "batch_p95_ms": metric(cached["p95_ms"], "ms", "lower"),
            "batch_p99_ms": metric(cached["p99_ms"], "ms", "lower"),
            "batch_error_rate": metric(cached["error_rate"], "ratio", "lower"),
            "uncached_req_per_s": metric(uncached["req_per_s"], "req/s", "higher"),
            "uncached_p95_ms": metric(uncached["p95_ms"], "ms", "lower"),
            "uncached_tcp_req_per_s": metric(
                uncached_tcp["req_per_s"], "req/s", "higher"
            ),
            "uncached_tcp_p95_ms": metric(uncached_tcp["p95_ms"], "ms", "lower"),
            "tcp_vs_socketpair_throughput": metric(tcp_delta, "ratio", "higher"),
            "stream_points_per_s": metric(
                total_points / stream_wall_s, "pts/s", "higher"
            ),
            "stream_feed_p95_ms": metric(feed_snap["p95_s"] * 1e3, "ms", "lower"),
            "worker_private_rss_kb": metric(
                max(worker_private_kb or [0]), "kB", "lower"
            ),
        },
        notes="open-loop seeded Poisson arrivals against the cluster gateway "
        f"({NUM_WORKERS} workers over one shared-memory artifact set, "
        f"{shared_kb:.0f} KiB shared); cached phase answers from the "
        "gateway response cache (byte-identical to worker responses), "
        "uncached phase crosses IPC into the worker fleet per request; the "
        "tcp phase repeats it with workers dialed back over localhost TCP "
        "frames (the federation transport) to record the transport delta; "
        "all served paths verified against direct LHMM / OnlineLHMM calls",
    )
    save_report("serve_throughput", "\n".join(lines))
