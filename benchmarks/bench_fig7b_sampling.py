"""Figure 7(b) — robustness to the cellular sampling rate.

Thins the raw cellular trajectories to 0.2–1.4 samples per minute (the
paper's 7 levels), re-applies the pre-filters, and reports CMF50 for LHMM,
DMM, and STM at each rate.

Expected shape (paper): accuracy degrades as sampling gets sparser for all
methods; LHMM is the least affected; DMM collapses fastest at the sparse
end (the encoder cannot guide the decoder over long gaps).
"""

import numpy as np

from repro.cellular import apply_standard_filters
from repro.eval.metrics import corridor_mismatch_fraction

from benchmarks.conftest import TEST_LIMIT, check_shape, save_report
from repro.eval import format_series

RATES = [0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4]


def _cmf_at_rate(dataset, matcher, samples, rate):
    values = []
    for sample in samples:
        thinned = sample.raw_cellular.resampled_to_rate(rate)
        filtered = apply_standard_filters(thinned)
        if len(filtered) < 2:
            continue
        result = matcher.match(filtered)
        values.append(
            corridor_mismatch_fraction(dataset.network, sample.truth_path, result.path)
        )
    return float(np.mean(values)) if values else float("nan")


def test_fig7b_sampling_rate(benchmark, hangzhou, lhmm_hangzhou, dmm_hangzhou, stm_hangzhou):
    """CMF50 vs sampling rate for LHMM / DMM / STM."""
    samples = hangzhou.test[: min(TEST_LIMIT, 15)]
    series = {"LHMM": [], "DMM": [], "STM": []}
    for rate in RATES:
        series["LHMM"].append(_cmf_at_rate(hangzhou, lhmm_hangzhou, samples, rate))
        series["DMM"].append(_cmf_at_rate(hangzhou, dmm_hangzhou, samples, rate))
        series["STM"].append(_cmf_at_rate(hangzhou, stm_hangzhou, samples, rate))

    save_report(
        "fig7b_sampling",
        format_series(
            "samples/min",
            RATES,
            series,
            title="Fig. 7(b) — CMF50 vs cellular sampling rate",
        ),
    )

    # Shape: the seq2seq model collapses at the sparse end (the paper's
    # "fatal blow to the encoder-decoder"), and LHMM dominates on average
    # across rates.  Per-method monotonicity is NOT asserted: in our error
    # regime the distance heuristics can genuinely improve with fewer noisy
    # points (see EXPERIMENTS.md for the analysis of this deviation).
    check_shape(
        series["DMM"][0] >= series["DMM"][-1] - 0.02,
        "DMM collapses at the sparsest rate",
    )
    check_shape(
        np.nanmean(series["LHMM"]) <= np.nanmean(series["STM"]) + 0.02,
        "LHMM beats STM across rates",
    )
    check_shape(
        np.nanmean(series["LHMM"]) <= np.nanmean(series["DMM"]) + 0.02,
        "LHMM beats DMM across rates",
    )

    sample = samples[0]
    thinned = apply_standard_filters(sample.raw_cellular.resampled_to_rate(0.6))
    benchmark(lhmm_hangzhou.match, thinned)
