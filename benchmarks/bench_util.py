"""Shared machine-readable benchmark reporting.

Every perf smoke benchmark writes, next to its human-readable
``benchmarks/results/*.txt`` report, a ``BENCH_<name>.json`` file at the
repository root.  The JSON carries everything a regression checker needs
to decide whether two runs are comparable and whether a metric moved:

* machine specs (platform, CPU count, python/numpy versions),
* the benchmark configuration plus a stable fingerprint of it,
* whether the run was in fast mode (``REPRO_BENCH_FAST=1`` shrinks the
  workload, so fast and full runs are never compared to each other),
* per-metric values with units and an improvement direction.

``scripts/check_bench_regression.py`` consumes these files.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import time
from pathlib import Path
from typing import Any, Mapping

REPO_ROOT = Path(__file__).resolve().parent.parent
SCHEMA_VERSION = 1


def machine_specs() -> dict[str, Any]:
    """The hardware/software facts that make timings (in)comparable."""
    import numpy

    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "processor": platform.processor(),
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "numpy": numpy.__version__,
    }


def config_fingerprint(config: Mapping[str, Any]) -> str:
    """A stable hash of the benchmark configuration.

    Runs with different fingerprints measured different workloads and must
    not be compared; the checker treats a fingerprint change as "baseline
    reset", not as a regression.
    """
    canonical = json.dumps(config, sort_keys=True, default=repr)
    return "sha256:" + hashlib.sha256(canonical.encode()).hexdigest()[:16]


def metric(value: float, unit: str, direction: str) -> dict[str, Any]:
    """One measured value.  ``direction`` is ``"lower"`` or ``"higher"``
    — the side on which *better* lies, so the checker knows which way a
    10% move is a regression."""
    if direction not in ("lower", "higher"):
        raise ValueError(f"direction must be 'lower' or 'higher', got {direction!r}")
    return {"value": float(value), "unit": unit, "direction": direction}


def write_bench_json(
    name: str,
    config: Mapping[str, Any],
    metrics: Mapping[str, Mapping[str, Any]],
    notes: str = "",
) -> Path:
    """Write ``BENCH_<name>.json`` at the repo root and return its path."""
    fast = os.environ.get("REPRO_BENCH_FAST") == "1"
    payload = {
        "bench": name,
        "schema": SCHEMA_VERSION,
        "fast_mode": fast,
        "created_unix": int(time.time()),
        "machine": machine_specs(),
        "config": dict(config),
        "config_fingerprint": config_fingerprint(config),
        "metrics": {key: dict(value) for key, value in metrics.items()},
    }
    if notes:
        payload["notes"] = notes
    path = REPO_ROOT / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
