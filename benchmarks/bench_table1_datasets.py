"""Table I — dataset characteristics of the two synthetic cities.

Regenerates the rows of the paper's Table I for the Hangzhou-like and
Xiamen-like presets.  Expected shape: the Hangzhou-like city is larger
(more segments/intersections), its cellular sampling interval is longer
(~67 s vs ~42 s mean), and GPS points outnumber cellular points roughly
2–2.5x in both.  Absolute counts are smaller than the paper's (scaled-down
cities); the *relations* between the rows are what must match.
"""

from repro.datasets import compute_statistics

from benchmarks.conftest import check_shape, save_report


def _stats_table(name: str, stats) -> str:
    lines = [f"Table I — {name} characteristics"]
    width = max(len(label) for label, _ in stats.rows())
    for label, value in stats.rows():
        lines.append(f"  {label.ljust(width)}  {value}")
    return "\n".join(lines)


def test_table1_dataset_characteristics(benchmark, hangzhou, xiamen):
    """Compute and report Table I for both cities."""
    stats_hz = benchmark(compute_statistics, hangzhou)
    stats_xm = compute_statistics(xiamen)

    report = _stats_table("Hangzhou-like", stats_hz) + "\n\n" + _stats_table(
        "Xiamen-like", stats_xm
    )
    save_report("table1_datasets", report)

    # Shape checks mirroring the paper's Table I.  (The paper's
    # mean-vs-median sampling-distance skew is NOT asserted: our simulator's
    # gap distribution is more symmetric than the operator feed — see
    # EXPERIMENTS.md.)
    check_shape(stats_hz.road_segments > stats_xm.road_segments,
                "Hangzhou-like city should be larger")
    check_shape(stats_hz.mean_cellular_interval_s > stats_xm.mean_cellular_interval_s,
                "Hangzhou samples more sparsely than Xiamen")
    check_shape(stats_hz.gps_points_per_trajectory > stats_hz.cellular_points_per_trajectory,
                "GPS denser than cellular (Hangzhou)")
    check_shape(stats_xm.gps_points_per_trajectory > stats_xm.cellular_points_per_trajectory,
                "GPS denser than cellular (Xiamen)")
