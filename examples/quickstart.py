"""Quickstart: build a synthetic city, train LHMM, match a trajectory.

Run with::

    python examples/quickstart.py

Takes about a minute on a laptop: it generates a small Hangzhou-like city
(road network, cell towers, simulated trips with paired GPS + cellular
samples), recovers ground truth from GPS with the classical HMM, trains the
LHMM learners on the training split, and matches a held-out cellular
trajectory.
"""

from repro import LHMM, LHMMConfig, evaluate_matcher, make_city_dataset
from repro.eval.metrics import corridor_mismatch_fraction, precision_recall


def main() -> None:
    print("Building a Hangzhou-like synthetic city with 150 trips ...")
    dataset = make_city_dataset("hangzhou", num_trajectories=150, rng=0)
    print(
        f"  network: {dataset.network.num_segments} road segments, "
        f"{dataset.network.num_nodes} intersections, {len(dataset.towers)} towers"
    )
    print(f"  samples: {len(dataset.train)} train / {len(dataset.test)} test")

    print("Training LHMM (Het-Graph encoder + learned P_O / P_T) ...")
    config = LHMMConfig(epochs=4)
    matcher = LHMM(config, rng=0).fit(dataset)

    sample = dataset.test[0]
    result = matcher.match(sample.cellular)
    precision, recall = precision_recall(dataset.network, sample.truth_path, result.path)
    cmf = corridor_mismatch_fraction(dataset.network, sample.truth_path, result.path)
    print(f"\nMatched trajectory {sample.sample_id}:")
    print(f"  {len(sample.cellular)} cellular points -> {len(result.path)} road segments")
    print(f"  precision={precision:.3f} recall={recall:.3f} CMF50={cmf:.3f}")
    print(f"  first segments of the path: {result.path[:8]} ...")

    print("\nEvaluating on the full test split ...")
    evaluation = evaluate_matcher(matcher, dataset, method_name="LHMM")
    row = evaluation.row()
    print(
        "  precision={precision:.3f} recall={recall:.3f} RMF={rmf:.3f} "
        "CMF50={cmf50:.3f} HR={hr:.3f} avg_time={avg_time:.3f}s".format(**row)
    )


if __name__ == "__main__":
    main()
