"""Stream cellular samples through the online LHMM matcher.

Simulates a live feed: points arrive one at a time, and the fixed-lag
decoder commits road segments a few samples behind the head — the mode a
real traffic-monitoring deployment would run in.  Compares the streamed
result against the batch matcher and renders both as an ASCII map.

Run with::

    python examples/online_streaming.py
"""

from repro import LHMM, LHMMConfig, make_city_dataset
from repro.core import OnlineLHMM
from repro.eval.metrics import corridor_mismatch_fraction
from repro.viz import render_match_ascii


def main() -> None:
    print("Building city and training LHMM ...")
    dataset = make_city_dataset("hangzhou", num_trajectories=150, rng=4)
    matcher = LHMM(LHMMConfig(epochs=4), rng=0).fit(dataset)

    sample = dataset.test[0]
    print(f"\nStreaming trajectory {sample.sample_id} ({len(sample.cellular)} points):")
    online = OnlineLHMM(matcher, lag=3)
    for i, point in enumerate(sample.cellular.points):
        online.add_point(point)
        committed = online.committed_path
        print(
            f"  t={point.timestamp:6.0f}s  point {i + 1:>2}  "
            f"committed {len(committed):>2} segments, "
            f"{online.pending_points()} pending"
        )
    streamed_path = online.finish()

    batch_path = matcher.match(sample.cellular).path
    streamed_cmf = corridor_mismatch_fraction(
        dataset.network, sample.truth_path, streamed_path
    )
    batch_cmf = corridor_mismatch_fraction(
        dataset.network, sample.truth_path, batch_path
    )
    print(f"\nstreamed CMF50 = {streamed_cmf:.3f}   batch CMF50 = {batch_cmf:.3f}")
    print("(the batch matcher additionally applies shortcut optimisation)\n")

    print(
        render_match_ascii(
            dataset.network,
            sample.truth_path,
            {"S": streamed_path, "B": batch_path},
            sample.cellular,
            width=76,
            height=24,
        )
    )


if __name__ == "__main__":
    main()
