"""Stream cellular samples through the online LHMM matcher.

Simulates a live feed: points arrive one at a time, and the fixed-lag
decoder commits road segments a few samples behind the head — the mode a
real traffic-monitoring deployment would run in.  Compares the streamed
result against the batch matcher and renders both as an ASCII map.

Run with::

    python examples/online_streaming.py           # in-process decoder
    python examples/online_streaming.py --serve   # through the HTTP service

With ``--serve`` the script boots a local :class:`repro.serve.MatchingServer`
on a free port and drives the identical workload over HTTP with
:class:`repro.serve.MatchingClient` — the streamed path and the batch path
are byte-identical to the in-process ones; only the transport changes.
"""

import argparse

from repro import LHMM, LHMMConfig, make_city_dataset
from repro.core import OnlineLHMM
from repro.eval.metrics import corridor_mismatch_fraction
from repro.viz import render_match_ascii

LAG = 3


def stream_in_process(matcher, sample):
    """Feed the fixed-lag decoder directly, printing per-point progress."""
    online = OnlineLHMM(matcher, lag=LAG)
    for i, point in enumerate(sample.cellular.points):
        online.add_point(point)
        print(
            f"  t={point.timestamp:6.0f}s  point {i + 1:>2}  "
            f"committed {len(online.committed_path):>2} segments, "
            f"{online.pending_points()} pending"
        )
    streamed_path = online.finish()
    batch_path = matcher.match(sample.cellular).path
    return streamed_path, batch_path


def stream_over_http(matcher, sample):
    """The same workload through the HTTP service on a free local port."""
    from repro.serve import MatchingClient, MatchingServer, ServeConfig

    with MatchingServer(matcher, ServeConfig(port=0)) as server:
        print(f"  (serving on http://{server.host}:{server.port})")
        client = MatchingClient(server.host, server.port)
        with client.create_session(lag=LAG) as session:
            for i, point in enumerate(sample.cellular.points):
                state = session.feed(point)
                print(
                    f"  t={point.timestamp:6.0f}s  point {i + 1:>2}  "
                    f"committed {len(state['committed']):>2} segments, "
                    f"{state['pending']} pending"
                )
            streamed_path = session.close()
        batch_path = client.match([sample.cellular])[0]["path"]
    return streamed_path, batch_path


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--serve",
        action="store_true",
        help="route the stream through a local repro.serve HTTP server",
    )
    args = parser.parse_args()

    print("Building city and training LHMM ...")
    dataset = make_city_dataset("hangzhou", num_trajectories=150, rng=4)
    matcher = LHMM(LHMMConfig(epochs=4), rng=0).fit(dataset)

    sample = dataset.test[0]
    mode = "over HTTP" if args.serve else "in process"
    print(
        f"\nStreaming trajectory {sample.sample_id} "
        f"({len(sample.cellular)} points, {mode}):"
    )
    if args.serve:
        streamed_path, batch_path = stream_over_http(matcher, sample)
    else:
        streamed_path, batch_path = stream_in_process(matcher, sample)

    streamed_cmf = corridor_mismatch_fraction(
        dataset.network, sample.truth_path, streamed_path
    )
    batch_cmf = corridor_mismatch_fraction(
        dataset.network, sample.truth_path, batch_path
    )
    print(f"\nstreamed CMF50 = {streamed_cmf:.3f}   batch CMF50 = {batch_cmf:.3f}")
    print("(the batch matcher additionally applies shortcut optimisation)\n")

    print(
        render_match_ascii(
            dataset.network,
            sample.truth_path,
            {"S": streamed_path, "B": batch_path},
            sample.cellular,
            width=76,
            height=24,
        )
    )


if __name__ == "__main__":
    main()
