"""Compare LHMM against classical and learned baselines on one city.

A compact version of the paper's Table II: trains LHMM and DMM, runs the
heuristic HMMs, prints one accuracy table, and bootstrap-tests whether
LHMM's margin over the strongest heuristic is statistically significant.

Run with::

    python examples/method_comparison.py
"""

from repro import LHMM, LHMMConfig, evaluate_matcher, make_city_dataset
from repro.baselines import make_baseline
from repro.eval import format_table, paired_bootstrap


def main() -> None:
    dataset = make_city_dataset("hangzhou", num_trajectories=200, rng=5)
    test = dataset.test
    print(
        f"City: {dataset.network.num_segments} segments, "
        f"{len(dataset.towers)} towers; evaluating on {len(test)} trajectories\n"
    )

    results = []
    for name in ("STM", "IFM", "THMM", "CLSTERS"):
        matcher = make_baseline(name, dataset, rng=0)
        results.append(evaluate_matcher(matcher, dataset, test, method_name=name))
        print(f"  {name} done")

    dmm = make_baseline("DMM", dataset, rng=0)
    results.append(evaluate_matcher(dmm, dataset, test, method_name="DMM"))
    print("  DMM done (seq2seq, trained)")

    lhmm = LHMM(LHMMConfig(epochs=4), rng=0).fit(dataset)
    results.append(evaluate_matcher(lhmm, dataset, test, method_name="LHMM"))
    print("  LHMM done (trained)\n")

    print(format_table(results, title="Method comparison (Hangzhou-like city)"))

    # Is LHMM's edge over the strongest heuristic statistically meaningful?
    lhmm_result = results[-1]
    heuristics = results[:4]
    strongest = min(heuristics, key=lambda r: r.cmf50)
    comparison = paired_bootstrap(lhmm_result, strongest, metric="cmf50", rng=0)
    print(f"\n{comparison.describe()}")
    print(f"P(LHMM better than {strongest.method} on CMF50) = {comparison.p_better:.2f}")


if __name__ == "__main__":
    main()
