"""Traffic-flow analysis from cellular data — the paper's motivating use.

Telecom operators want road-level traffic estimates from telecom tokens
(§I).  This example map-matches a fleet of cellular trajectories with LHMM,
aggregates per-segment traversal counts, and compares the estimated
congestion hot-spots against the ground-truth flows.

Run with::

    python examples/traffic_flow_analysis.py
"""

from collections import Counter

import numpy as np

from repro import LHMM, LHMMConfig, make_city_dataset


def flow_counts(paths: list[list[int]]) -> Counter:
    counts: Counter[int] = Counter()
    for path in paths:
        counts.update(set(path))
    return counts


def main() -> None:
    print("Building city and training LHMM ...")
    dataset = make_city_dataset("xiamen", num_trajectories=180, rng=3)
    matcher = LHMM(LHMMConfig(epochs=4), rng=1).fit(dataset)

    fleet = dataset.test
    print(f"Map-matching a fleet of {len(fleet)} cellular trajectories ...")
    estimated = flow_counts([matcher.match(s.cellular).path for s in fleet])
    actual = flow_counts([s.truth_path for s in fleet])

    top_estimated = [seg for seg, _ in estimated.most_common(15)]
    top_actual = [seg for seg, _ in actual.most_common(15)]
    overlap = len(set(top_estimated) & set(top_actual))
    print(f"\nTop-15 hottest segments, estimated vs actual overlap: {overlap}/15")

    print("\nEstimated busiest road segments:")
    print(f"  {'segment':>8}  {'est. trips':>10}  {'true trips':>10}  class")
    for seg_id in top_estimated[:10]:
        seg = dataset.network.segments[seg_id]
        print(
            f"  {seg_id:>8}  {estimated[seg_id]:>10}  {actual.get(seg_id, 0):>10}  "
            f"{seg.road_class}"
        )

    # Correlation between estimated and true per-segment flow.
    segments = sorted(set(estimated) | set(actual))
    est = np.array([estimated.get(s, 0) for s in segments], dtype=float)
    act = np.array([actual.get(s, 0) for s in segments], dtype=float)
    correlation = np.corrcoef(est, act)[0, 1]
    print(f"\nPer-segment flow correlation (estimated vs truth): {correlation:.3f}")


if __name__ == "__main__":
    main()
