"""Build a fully custom city and run the whole pipeline by hand.

Shows the lower-level API that :func:`repro.make_city_dataset` wraps:
network generation, tower placement, trip simulation, pre-filtering,
GPS-HMM ground truth, dataset assembly, and network persistence.

Run with::

    python examples/custom_city_pipeline.py
"""

import tempfile
from pathlib import Path

from repro.cellular import (
    HandoffConfig,
    SimulationConfig,
    TowerPlacementConfig,
    VehicleSimulator,
    apply_standard_filters,
    place_towers,
)
from repro.core import LHMM, LHMMConfig
from repro.datasets import match_gps_trajectory
from repro.datasets.dataset import MatchingDataset, MatchingSample
from repro.network import (
    CityConfig,
    ShortestPathEngine,
    generate_city_network,
    load_network,
    save_network,
)


def main() -> None:
    # 1. A dense, small downtown with frequent one-way streets.
    city = CityConfig(
        grid_rows=14,
        grid_cols=14,
        block_size_m=180.0,
        density_gradient=0.4,
        one_way_prob=0.2,
        removal_prob=0.15,
    )
    network = generate_city_network(city, rng=21)
    print(f"network: {network.num_segments} segments / {network.num_nodes} nodes")

    # 2. Persist and reload the network (JSON round trip).
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "city.json"
        save_network(network, path)
        network = load_network(path)
        print(f"round-tripped network through {path.name}")

    # 3. Towers with a weak urban gradient and noisy radio conditions.
    towers = place_towers(
        network, TowerPlacementConfig(base_spacing_m=400.0, spacing_gradient=1.0), rng=21
    )
    print(f"towers: {len(towers)}")

    # 4. Simulate trips with custom radio + sampling behaviour.
    simulator = VehicleSimulator(
        network,
        towers,
        config=SimulationConfig(
            min_trip_m=1200.0, max_trip_m=2800.0, cellular_interval_mean_s=40.0
        ),
        handoff_config=HandoffConfig(shadow_sigma_db=8.0, hysteresis_db=6.0),
        rng=21,
    )
    engine = ShortestPathEngine(network)
    samples = []
    for trip in simulator.simulate_many(80):
        truth = match_gps_trajectory(trip.gps, network, engine)
        cellular = apply_standard_filters(trip.cellular)
        if truth and len(cellular) >= 3:
            samples.append(
                MatchingSample(
                    sample_id=trip.trip_id,
                    cellular=cellular,
                    raw_cellular=trip.cellular,
                    gps=trip.gps,
                    truth_path=truth,
                    sim_path=list(trip.path),
                )
            )
    dataset = MatchingDataset(name="custom", network=network, towers=towers, samples=samples)
    print(f"dataset: {len(dataset)} samples ({len(dataset.train)} train)")

    # 5. Train a small LHMM and match one held-out trajectory.
    config = LHMMConfig(embedding_dim=32, mlp_hidden=32, epochs=3, candidate_k=10)
    matcher = LHMM(config, rng=2).fit(dataset)
    sample = dataset.test[0]
    result = matcher.match(sample.cellular)
    print(
        f"matched test trajectory {sample.sample_id}: "
        f"{len(result.path)} segments (truth has {len(set(sample.truth_path))})"
    )


if __name__ == "__main__":
    main()
