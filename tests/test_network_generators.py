"""Tests for repro.network.generators."""

from collections import deque

import pytest

from repro.network import CityConfig, generate_city_network
from repro.network.generators import ARTERIAL_SPEED_MPS, _axis_positions


class TestCityConfig:
    def test_defaults_validate(self):
        CityConfig().validate()

    @pytest.mark.parametrize(
        "field,value",
        [
            ("grid_rows", 1),
            ("block_size_m", 0.0),
            ("removal_prob", 0.6),
            ("one_way_prob", 1.5),
            ("arterial_every", 0),
        ],
    )
    def test_invalid_values_rejected(self, field, value):
        config = CityConfig()
        setattr(config, field, value)
        with pytest.raises(ValueError):
            config.validate()


class TestAxisPositions:
    def test_uniform_when_gradient_zero(self):
        positions = _axis_positions(5, 100.0, 0.0)
        gaps = positions[1:] - positions[:-1]
        assert all(abs(g - 100.0) < 1e-9 for g in gaps)

    def test_gradient_grows_outward(self):
        positions = _axis_positions(9, 100.0, 1.0)
        gaps = positions[1:] - positions[:-1]
        assert gaps[0] > gaps[len(gaps) // 2]
        assert gaps[-1] > gaps[len(gaps) // 2]

    def test_centred(self):
        positions = _axis_positions(7, 100.0, 0.5)
        assert abs(positions.mean()) < 1e-9


class TestGenerateCity:
    def test_deterministic_given_seed(self):
        a = generate_city_network(CityConfig(grid_rows=8, grid_cols=8), rng=5)
        b = generate_city_network(CityConfig(grid_rows=8, grid_cols=8), rng=5)
        assert a.num_nodes == b.num_nodes
        assert a.num_segments == b.num_segments

    def test_network_is_weakly_connected(self, tiny_network):
        # BFS over the undirected view must reach every node.
        start = next(iter(tiny_network.nodes))
        seen = {start}
        queue = deque([start])
        while queue:
            node = queue.popleft()
            neighbours = [
                tiny_network.segments[s].end_node for s in tiny_network.out_segments(node)
            ] + [
                tiny_network.segments[s].start_node for s in tiny_network.in_segments(node)
            ]
            for n in neighbours:
                if n not in seen:
                    seen.add(n)
                    queue.append(n)
        assert seen == set(tiny_network.nodes)

    def test_contains_both_road_classes(self, tiny_network):
        classes = {seg.road_class for seg in tiny_network.segments.values()}
        assert classes == {"arterial", "local"}

    def test_arterials_are_faster(self, tiny_network):
        for seg in tiny_network.segments.values():
            if seg.road_class == "arterial":
                assert seg.speed_limit_mps == pytest.approx(ARTERIAL_SPEED_MPS)

    def test_two_way_streets_dominate(self, tiny_network):
        # Most streets have an opposing twin (one_way_prob is small).
        pairs = 0
        for seg in tiny_network.segments.values():
            for other_id in tiny_network.out_segments(seg.end_node):
                other = tiny_network.segments[other_id]
                if other.end_node == seg.start_node:
                    pairs += 1
                    break
        assert pairs > 0.7 * tiny_network.num_segments

    def test_segment_endpoints_match_nodes(self, tiny_network):
        for seg in tiny_network.segments.values():
            start = tiny_network.nodes[seg.start_node]
            end = tiny_network.nodes[seg.end_node]
            assert seg.polyline.start.distance_to(start) < 1e-6
            assert seg.polyline.end.distance_to(end) < 1e-6

    def test_density_gradient_blocks_grow_outward(self):
        config = CityConfig(
            grid_rows=16, grid_cols=16, density_gradient=1.5, jitter_frac=0.0,
            removal_prob=0.0, curve_frac=0.0,
        )
        net = generate_city_network(config, rng=1)
        min_x, min_y, max_x, max_y = net.bounding_box()
        cx, cy = (min_x + max_x) / 2, (min_y + max_y) / 2
        radius = (max_x - min_x) / 2
        central, outer = [], []
        from repro.geometry import Point
        for seg in net.segments.values():
            dist = seg.midpoint.distance_to(Point(cx, cy))
            (central if dist < radius * 0.3 else outer).append(seg.length)
        assert sum(central) / len(central) < sum(outer) / len(outer)
