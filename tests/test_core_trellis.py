"""Tests for repro.core.trellis (Algorithms 1 and 2)."""

import itertools
import math

import pytest

from repro.cellular import TrajectoryPoint
from repro.core.trellis import UNREACHABLE_SCORE, Trellis
from repro.geometry import Point, Polyline
from repro.network import RoadNetwork, RoadSegment, ShortestPathEngine


def chain_network(n: int = 8) -> RoadNetwork:
    """One-way chain: segment i runs node i -> node i+1."""
    net = RoadNetwork()
    for i in range(n + 1):
        net.add_node(i, Point(i * 100.0, 0.0))
    for i in range(n):
        net.add_segment(
            RoadSegment(
                i, i, i + 1, Polyline([Point(i * 100.0, 0.0), Point((i + 1) * 100.0, 0.0)])
            )
        )
    return net.freeze()


class TableScorer:
    """Scorer driven by explicit dictionaries, defaulting to small scores."""

    def __init__(self, observations=None, transitions=None, default_obs=0.1, default_trans=0.1):
        self.observations = observations or {}
        self.transitions = transitions or {}
        self.default_obs = default_obs
        self.default_trans = default_trans

    def observation(self, index, segment_id):
        return self.observations.get((index, segment_id), self.default_obs)

    def transition(self, index, prev, seg):
        return self.transitions.get((index, prev, seg), self.default_trans)


def points(n):
    return [TrajectoryPoint(Point(i * 100.0 + 50.0, 10.0), i * 10.0) for i in range(n)]


class TestViterbi:
    def test_validation(self):
        net = chain_network()
        engine = ShortestPathEngine(net)
        with pytest.raises(ValueError):
            Trellis([[0]], TableScorer(), net, engine, points(2))
        with pytest.raises(ValueError):
            Trellis([[0], []], TableScorer(), net, engine, points(2))

    def test_picks_highest_observation_chain(self):
        net = chain_network()
        engine = ShortestPathEngine(net)
        obs = {(0, 0): 0.9, (1, 1): 0.9, (2, 2): 0.9}
        trellis = Trellis(
            [[0, 1], [1, 2], [2, 3]], TableScorer(obs), net, engine, points(3)
        )
        assert trellis.run() == [0, 1, 2]

    def test_matches_bruteforce_enumeration(self):
        net = chain_network()
        engine = ShortestPathEngine(net)
        candidate_sets = [[0, 1], [1, 2, 3], [3, 4]]
        obs = {(i, s): 0.1 + 0.13 * ((i * 7 + s) % 5) for i in range(3) for s in range(8)}
        trans = {
            (i, a, b): 0.05 + 0.11 * ((i + 3 * a + 5 * b) % 7)
            for i in range(1, 3)
            for a in range(8)
            for b in range(8)
        }
        scorer = TableScorer(obs, trans)
        trellis = Trellis(candidate_sets, scorer, net, engine, points(3))
        decoded = trellis.run()

        def path_score(path):
            total = scorer.observation(0, path[0])
            for i in range(1, 3):
                total += scorer.transition(i, path[i - 1], path[i]) * scorer.observation(
                    i, path[i]
                )
            return total

        best = max(itertools.product(*candidate_sets), key=path_score)
        assert decoded == list(best)
        assert trellis.best_score == pytest.approx(path_score(best))

    def test_unreachable_transitions_avoided(self):
        net = chain_network()
        engine = ShortestPathEngine(net)
        trans = {(1, 0, 2): UNREACHABLE_SCORE}
        obs = {(1, 2): 0.99}  # tempting but unreachable from 0
        trellis = Trellis(
            [[0], [1, 2]], TableScorer(obs, trans), net, engine, points(2)
        )
        assert trellis.run() == [0, 2] or trellis.run() == [0, 1]
        # with only candidate 0 before, unreachable 2 must lose to 1
        trellis = Trellis(
            [[0], [1, 2]], TableScorer(obs, trans), net, engine, points(2)
        )
        decoded = trellis.run()
        assert decoded[1] == 1

    def test_best_score_requires_run(self):
        net = chain_network()
        engine = ShortestPathEngine(net)
        trellis = Trellis([[0]], TableScorer(), net, engine, points(1))
        with pytest.raises(RuntimeError):
            trellis.best_score


class TestViterbiProperties:
    from hypothesis import given, settings, strategies as st

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(2, 5),  # number of points
        st.integers(1, 3),  # candidates per point
        st.integers(0, 10**6),  # score-table seed
    )
    def test_matches_bruteforce_random_tables(self, n_points, per_point, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        net = chain_network(8)
        engine = ShortestPathEngine(net)
        candidate_sets = [
            sorted(rng.choice(8, size=per_point, replace=False).tolist())
            for _ in range(n_points)
        ]
        obs = {
            (i, s): float(rng.uniform(0.01, 1.0))
            for i in range(n_points)
            for s in range(8)
        }
        trans = {
            (i, a, b): float(rng.uniform(0.01, 1.0))
            for i in range(1, n_points)
            for a in range(8)
            for b in range(8)
        }
        scorer = TableScorer(obs, trans)
        trellis = Trellis(
            [list(c) for c in candidate_sets], scorer, net, engine, points(n_points)
        )
        decoded = trellis.run()

        def score(path):
            total = scorer.observation(0, path[0])
            for i in range(1, n_points):
                total += scorer.transition(i, path[i - 1], path[i]) * scorer.observation(
                    i, path[i]
                )
            return total

        best = max(
            (score(p) for p in itertools.product(*candidate_sets)),
        )
        assert trellis.best_score == pytest.approx(best)
        assert score(decoded) == pytest.approx(best)


class TestShortcuts:
    def test_shortcut_skips_noisy_point(self):
        """A middle point whose candidates are all terrible gets skipped.

        Candidates of the middle point are far-off segments (6, 7) with
        tiny observation scores; the shortcut inserts the on-route segment
        and must beat the direct path.
        """
        net = chain_network()
        engine = ShortestPathEngine(net)
        obs = {
            (0, 0): 0.9,
            (1, 6): 0.01,
            (1, 7): 0.01,
            (2, 2): 0.9,
            (1, 1): 0.5,  # the segment a shortcut would insert
        }

        class GeomScorer(TableScorer):
            def transition(self, index, prev, seg):
                route = engine.route(prev, seg)
                if route is None:
                    return UNREACHABLE_SCORE
                return 1.0 / (1.0 + route.length / 100.0)

        candidate_sets = [[0], [6, 7], [2]]
        plain = Trellis(candidate_sets, GeomScorer(obs), net, engine, points(3))
        plain_seq = plain.run(shortcut_k=0)
        assert plain_seq[1] in (6, 7)

        shortcut = Trellis(
            [list(c) for c in candidate_sets], GeomScorer(obs), net, engine, points(3)
        )
        shortcut_seq = shortcut.run(shortcut_k=1)
        assert shortcut_seq[1] == 1  # projected on-route segment replaces noise
        assert shortcut.best_score >= plain.best_score

    def test_shortcut_never_lowers_score(self):
        net = chain_network()
        engine = ShortestPathEngine(net)
        obs = {(i, s): 0.1 + 0.07 * ((i + s) % 4) for i in range(4) for s in range(8)}
        candidate_sets = [[0, 1], [2, 3], [4, 5], [6, 7]]

        def run(k):
            trellis = Trellis(
                [list(c) for c in candidate_sets],
                TableScorer(obs, default_trans=0.2),
                net,
                engine,
                points(4),
            )
            trellis.run(shortcut_k=k)
            return trellis.best_score

        assert run(1) >= run(0) - 1e-12

    def test_inserted_candidates_visible_after_run(self):
        """Shortcut-inserted roads join the trellis candidate sets (they
        count toward the hitting ratio, as the paper credits STM+S)."""
        net = chain_network()
        engine = ShortestPathEngine(net)
        obs = {(0, 0): 0.9, (1, 6): 0.01, (1, 7): 0.01, (2, 2): 0.9, (1, 1): 0.5}

        class GeomScorer(TableScorer):
            def transition(self, index, prev, seg):
                route = engine.route(prev, seg)
                if route is None:
                    return UNREACHABLE_SCORE
                return 1.0 / (1.0 + route.length / 100.0)

        trellis = Trellis([[0], [6, 7], [2]], GeomScorer(obs), net, engine, points(3))
        trellis.run(shortcut_k=1)
        assert 1 in trellis.candidate_sets[1]

    @pytest.mark.parametrize("impl", ["reference", "vectorized"])
    def test_shared_inserted_predecessor_stays_consistent(self, impl):
        """A weaker later shortcut must not re-point a shared inserted
        predecessor (Alg. 2 line 10 applied literally would).

        Both layer-2 candidates win a shortcut through the same inserted
        segment 2: first seg 4 via j=0 (projected f[1][2] = 1.3), then the
        weaker seg 5 via j=1 (projected 0.9).  An unconditional redirect
        would set pre[1][2] = 1, so backtracking the *winning* state 4 —
        whose score 2.11 was computed through j=0 — would emit [1, 2, 4]
        with a layer-1 table (f[1][2] = 0.9) that no longer explains
        f[2][4].  The guarded redirect keeps the tables self-consistent.
        """
        from repro.core.trellis import make_trellis

        net = chain_network()
        engine = ShortestPathEngine(net)
        obs = {
            (0, 0): 0.9, (0, 1): 0.8,
            (1, 6): 0.01, (1, 7): 0.01, (1, 2): 0.5,
            (2, 4): 0.9, (2, 5): 0.8,
        }
        trans = {
            # Layer-1 transitions: j=0 pairs with 6, j=1 with 7 ...
            (1, 0, 6): 0.9, (1, 0, 7): 0.1, (1, 1, 6): 0.1, (1, 1, 7): 0.9,
            # ... and layer-2 couples 6 with 4, 7 with 5, so seg 4 ranks
            # j=0 first while seg 5 ranks j=1 first (Eq. 20).
            (2, 6, 4): 0.9, (2, 7, 4): 0.1, (2, 6, 5): 0.1, (2, 7, 5): 0.3,
            # Scores through the shared inserted segment 2.
            (1, 0, 2): 0.8, (1, 1, 2): 0.2, (2, 2, 4): 0.9, (2, 2, 5): 0.8,
        }
        pts = [
            TrajectoryPoint(Point(50.0, 10.0), 0.0),
            TrajectoryPoint(Point(250.0, 10.0), 10.0),
            TrajectoryPoint(Point(450.0, 10.0), 20.0),
        ]
        trellis = make_trellis(
            [[0, 1], [6, 7], [4, 5]], TableScorer(obs, trans), net, engine, pts,
            impl=impl,
        )
        sequence = trellis.run(shortcut_k=1)

        assert sequence == [0, 2, 4]
        # Both shortcuts won (both layer-2 states point at the insert) ...
        assert trellis._pre[2][4] == 2 and trellis._pre[2][5] == 2
        assert 2 in trellis.candidate_sets[1]
        # ... but the shared predecessor keeps the *stronger* projection,
        # so the winner's score is still explained by the tables.
        assert trellis._pre[1][2] == 0
        assert trellis._f[1][2] == pytest.approx(1.3)
        assert trellis._f[2][4] == pytest.approx(
            trellis._f[1][2] + 0.9 * 0.9  # w(2, 2->4) = P_T * P_O
        )

    def test_shortcut_requires_three_points(self):
        net = chain_network()
        engine = ShortestPathEngine(net)
        trellis = Trellis([[0], [1]], TableScorer(), net, engine, points(2))
        assert trellis.run(shortcut_k=1) == [0, 1]
