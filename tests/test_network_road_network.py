"""Tests for repro.network.road_network."""

import numpy as np
import pytest

from repro.geometry import Point, Polyline
from repro.network import RoadNetwork, RoadSegment


def small_network() -> RoadNetwork:
    """Three nodes in a line with two forward segments and one reverse."""
    net = RoadNetwork()
    net.add_node(0, Point(0, 0))
    net.add_node(1, Point(100, 0))
    net.add_node(2, Point(200, 0))
    net.add_segment(RoadSegment(0, 0, 1, Polyline([Point(0, 0), Point(100, 0)])))
    net.add_segment(RoadSegment(1, 1, 2, Polyline([Point(100, 0), Point(200, 0)])))
    net.add_segment(RoadSegment(2, 1, 0, Polyline([Point(100, 0), Point(0, 0)])))
    return net.freeze()


class TestBuild:
    def test_duplicate_node_rejected(self):
        net = RoadNetwork()
        net.add_node(0, Point(0, 0))
        with pytest.raises(ValueError):
            net.add_node(0, Point(1, 1))

    def test_duplicate_segment_rejected(self):
        net = small_network()
        with pytest.raises(ValueError):
            net.add_segment(RoadSegment(0, 0, 1, Polyline([Point(0, 0), Point(1, 0)])))

    def test_segment_requires_nodes(self):
        net = RoadNetwork()
        net.add_node(0, Point(0, 0))
        with pytest.raises(ValueError):
            net.add_segment(RoadSegment(0, 0, 99, Polyline([Point(0, 0), Point(1, 0)])))

    def test_counts(self):
        net = small_network()
        assert net.num_nodes == 3
        assert net.num_segments == 3

    def test_total_length(self):
        assert small_network().total_length() == pytest.approx(300.0)

    def test_bounding_box(self):
        assert small_network().bounding_box() == (0.0, 0.0, 200.0, 0.0)

    def test_bounding_box_empty(self):
        with pytest.raises(ValueError):
            RoadNetwork().bounding_box()


class TestTopology:
    def test_successors(self):
        net = small_network()
        assert set(net.successors(0)) == {1, 2}

    def test_predecessors(self):
        net = small_network()
        assert net.predecessors(1) == [0]

    def test_out_in_segments(self):
        net = small_network()
        assert set(net.out_segments(1)) == {1, 2}
        assert net.in_segments(0) == [2]

    def test_unknown_node_has_no_edges(self):
        assert small_network().out_segments(99) == []


class TestSegmentProperties:
    def test_length_and_midpoint(self):
        seg = small_network().segment(0)
        assert seg.length == pytest.approx(100.0)
        assert seg.midpoint.as_tuple() == pytest.approx((50.0, 0.0))

    def test_heading(self):
        assert small_network().segment(0).heading_deg() == pytest.approx(90.0)

    def test_distance_to(self):
        assert small_network().segment(0).distance_to(Point(50, 30)) == pytest.approx(30.0)


class TestSpatialQueries:
    def test_segments_near_exact(self):
        net = small_network()
        found = net.segments_near(Point(50, 10), 20)
        assert set(found) == {0, 2}

    def test_segments_near_sorted_by_distance(self):
        net = small_network()
        found = net.segments_near(Point(120, 5), 500)
        d = [net.segments[s].distance_to(Point(120, 5)) for s in found]
        assert d == sorted(d)

    def test_segments_near_empty(self):
        net = small_network()
        assert net.segments_near(Point(5000, 5000), 10) == []

    def test_nearest_segments_expands(self):
        net = small_network()
        found = net.nearest_segments(Point(5000, 0), count=1)
        assert len(found) == 1

    def test_distances_to_segments_vectorised_matches_scalar(self):
        net = small_network()
        p = Point(33, 21)
        ids = [0, 1, 2]
        vector = net.distances_to_segments(p, ids)
        scalar = [net.segments[s].distance_to(p) for s in ids]
        assert np.allclose(vector, scalar)

    def test_distances_to_segments_empty(self):
        net = small_network()
        assert net.distances_to_segments(Point(0, 0), []).size == 0
