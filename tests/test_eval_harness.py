"""Tests for repro.eval.harness and repro.eval.report."""

import pytest

from repro.eval import EvaluationResult, evaluate_matcher, format_series, format_table
from repro.eval.harness import SampleEvaluation


class PerfectMatcher:
    """Returns the ground-truth path it was given at construction."""

    def __init__(self, dataset):
        self._paths = {s.sample_id: s.truth_path for s in dataset.samples}
        self._dataset = dataset

    def match(self, trajectory):
        class Result:
            pass

        result = Result()
        result.path = list(self._paths[trajectory.trajectory_id])
        result.candidate_sets = [[result.path[0]] for _ in trajectory.points]
        return result


class TestHarness:
    def test_perfect_matcher_scores_perfectly(self, tiny_dataset):
        result = evaluate_matcher(
            PerfectMatcher(tiny_dataset), tiny_dataset, tiny_dataset.test[:4], "oracle"
        )
        assert result.precision == pytest.approx(1.0)
        assert result.recall == pytest.approx(1.0)
        assert result.rmf == pytest.approx(0.0)
        assert result.cmf50 == pytest.approx(0.0)

    def test_uses_test_split_by_default(self, tiny_dataset):
        result = evaluate_matcher(PerfectMatcher(tiny_dataset), tiny_dataset)
        assert len(result.samples) == len(tiny_dataset.test)

    def test_timing_recorded(self, tiny_dataset):
        result = evaluate_matcher(
            PerfectMatcher(tiny_dataset), tiny_dataset, tiny_dataset.test[:2], "oracle"
        )
        assert result.avg_time >= 0.0
        assert all(s.seconds >= 0 for s in result.samples)

    def test_row_keys(self, tiny_dataset):
        result = evaluate_matcher(
            PerfectMatcher(tiny_dataset), tiny_dataset, tiny_dataset.test[:1], "oracle"
        )
        assert set(result.row()) == {"precision", "recall", "rmf", "cmf50", "hr", "avg_time"}

    def test_empty_result_means(self):
        result = EvaluationResult(method="x", dataset="y")
        assert result.precision == 0.0
        assert result.avg_time == 0.0


class TestExport:
    def test_to_dict_structure(self, tiny_dataset):
        result = evaluate_matcher(
            PerfectMatcher(tiny_dataset), tiny_dataset, tiny_dataset.test[:2], "oracle"
        )
        data = result.to_dict()
        assert data["method"] == "oracle"
        assert len(data["samples"]) == 2
        assert set(data["aggregates"]) == {
            "precision", "recall", "rmf", "cmf50", "hr", "avg_time",
        }

    def test_save_json(self, tiny_dataset, tmp_path):
        import json

        result = evaluate_matcher(
            PerfectMatcher(tiny_dataset), tiny_dataset, tiny_dataset.test[:2], "oracle"
        )
        path = tmp_path / "result.json"
        result.save_json(path)
        loaded = json.loads(path.read_text())
        assert loaded["aggregates"]["precision"] == pytest.approx(1.0)

    def test_save_csv(self, tiny_dataset, tmp_path):
        import csv

        result = evaluate_matcher(
            PerfectMatcher(tiny_dataset), tiny_dataset, tiny_dataset.test[:3], "oracle"
        )
        path = tmp_path / "result.csv"
        result.save_csv(path)
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 3
        assert float(rows[0]["precision"]) == pytest.approx(1.0)


class TestReport:
    def make_result(self, name, value):
        result = EvaluationResult(method=name, dataset="d")
        result.samples.append(
            SampleEvaluation(
                sample_id=0, precision=value, recall=value, rmf=value,
                cmf50=value, hitting=value, seconds=0.01,
            )
        )
        return result

    def test_format_table_contains_methods_and_values(self):
        table = format_table(
            [self.make_result("A", 0.5), self.make_result("B", 0.25)],
            columns=["precision", "cmf50"],
            title="Table II",
        )
        assert "Table II" in table
        assert "A" in table and "B" in table
        assert "0.500" in table and "0.250" in table

    def test_format_table_alignment(self):
        table = format_table([self.make_result("LongMethodName", 0.1)])
        lines = table.splitlines()
        assert len(set(len(line) for line in lines if line)) <= 2

    def test_format_series(self):
        text = format_series(
            "k", [10, 20], {"LHMM": [0.1, 0.2], "STM": [0.3, 0.4]}, title="Fig 8"
        )
        assert "Fig 8" in text
        assert "LHMM" in text and "STM" in text
        assert "0.100" in text and "0.400" in text
