"""Property tests: batched spatial kernels equal per-point queries exactly.

The batched candidate-retrieval layer (``segments_near_many``,
``nearest_segments_many``, ``point_segment_distances``,
``CandidatePoolCache``) promises *bit-identical* answers to the scalar
per-point calls — same ids, same nearest-first order, same tie-breaking,
same fallbacks, same structured rejection.  These properties are checked
on randomized networks with grid-aligned geometry so exact distance ties
actually occur.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cellular.trajectory import TrajectoryPoint
from repro.core.candidates import (
    CandidatePoolCache,
    learned_candidate_pool,
    spatial_candidate_pool,
)
from repro.errors import InvalidTrajectoryInput
from repro.geometry import Point, Polyline
from repro.network import RoadNetwork, RoadSegment

GRID_M = 200.0


@st.composite
def random_networks(draw) -> RoadNetwork:
    """A small frozen network with nodes on a coarse grid.

    Grid-aligned geometry makes several segments exactly equidistant from
    grid-aligned query points, which is precisely where a sloppy batched
    sort would diverge from the scalar tie ordering.
    """
    cells = draw(
        st.lists(
            st.tuples(st.integers(0, 4), st.integers(0, 4)),
            min_size=4,
            max_size=9,
            unique=True,
        )
    )
    positions = [Point(cx * GRID_M, cy * GRID_M) for cx, cy in cells]
    n = len(positions)
    pairs = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)).filter(
                lambda uv: uv[0] != uv[1]
            ),
            min_size=3,
            max_size=12,
        )
    )
    net = RoadNetwork()
    for node, position in enumerate(positions):
        net.add_node(node, position)
    for sid, (u, v) in enumerate(pairs):
        net.add_segment(
            RoadSegment(sid, u, v, Polyline([positions[u], positions[v]]))
        )
    return net.freeze()


query_points = st.lists(
    st.tuples(
        st.integers(-1, 5),
        st.integers(-1, 5),
        st.sampled_from([0.0, 50.0, 100.0]),
        st.sampled_from([0.0, 50.0, 100.0]),
    ).map(lambda q: Point(q[0] * GRID_M + q[2], q[1] * GRID_M + q[3])),
    min_size=1,
    max_size=8,
)

radii = st.sampled_from([0.0, 100.0, 250.0, 600.0, 1500.0])


class _GraphStub:
    """The only part of RelationGraph the pool cache needs spatially."""

    def __init__(self, network: RoadNetwork) -> None:
        self.network = network


@settings(max_examples=40, deadline=None)
@given(random_networks(), query_points, radii)
def test_segments_near_many_matches_per_point(net, points, radius):
    batched = net.segments_near_many(points, radius)
    scalar = [net.segments_near(p, radius) for p in points]
    assert batched == scalar


@settings(max_examples=25, deadline=None)
@given(random_networks(), query_points, st.integers(1, 6))
def test_nearest_segments_many_matches_per_point(net, points, count):
    batched = net.nearest_segments_many(points, count=count)
    scalar = [net.nearest_segments(p, count=count) for p in points]
    assert batched == scalar


@settings(max_examples=25, deadline=None)
@given(random_networks(), query_points)
def test_point_segment_distances_bitwise_equal(net, points):
    segment_ids = sorted(net.segments)
    pair_ids = [s for _ in points for s in segment_ids]
    px = np.repeat([p.x for p in points], len(segment_ids))
    py = np.repeat([p.y for p in points], len(segment_ids))
    batched = net.point_segment_distances(px, py, pair_ids)
    scalar = [
        net.segment(s).distance_to(p) for p in points for s in segment_ids
    ]
    # Bitwise equality, not approx: feature code mixes both code paths.
    assert batched.tolist() == scalar


@settings(max_examples=25, deadline=None)
@given(random_networks(), query_points, radii)
def test_pool_cache_matches_scalar_pools(net, points, radius):
    """The batched pool cache (incl. the empty-radius nearest fallback)
    returns exactly what the scalar pool builder returns per point."""
    graph = _GraphStub(net)
    traj_points = [
        TrajectoryPoint(position=p, timestamp=float(i), tower_id=None)
        for i, p in enumerate(points)
    ]
    cache = CandidatePoolCache(graph, radius_m=radius, limit=5)
    batched = cache.pools(traj_points)
    scalar = [
        learned_candidate_pool(graph, p, radius_m=radius, limit=5)
        for p in traj_points
    ]
    assert batched == scalar
    # A second pass is answered from the cache and must not change.
    assert cache.pools(traj_points) == scalar


@settings(max_examples=15, deadline=None)
@given(random_networks())
def test_far_point_rejected_like_scalar(net):
    """A point beyond even the nearest-road fallback raises the structured
    InvalidTrajectoryInput from both the scalar and the batched path."""
    far = TrajectoryPoint(position=Point(1e6, 1e6), timestamp=0.0, tower_id=None)
    near = TrajectoryPoint(
        position=Point(0.0, 0.0), timestamp=1.0, tower_id=None
    )
    with pytest.raises(InvalidTrajectoryInput):
        spatial_candidate_pool(net, far, radius_m=100.0, limit=5)
    cache = CandidatePoolCache(_GraphStub(net), radius_m=100.0, limit=5)
    with pytest.raises(InvalidTrajectoryInput):
        cache.pools([near, far])
    # The passing point must not have been poisoned by the failure.
    fresh = CandidatePoolCache(_GraphStub(net), radius_m=100.0, limit=5)
    assert fresh.pools([near]) == [
        learned_candidate_pool(_GraphStub(net), near, radius_m=100.0, limit=5)
    ]
