"""Validated artifact envelope: checksums, manifests, fuzzing, legacy.

Covers the guarantees ``repro.nn.serialization`` makes: exact-path
writes (the ``np.savez`` silent-``.npz``-suffix bug stays fixed),
byte-determinism, detection of any single flipped byte or truncation as
:class:`ArtifactCorrupt`, wrong-kind/wrong-version as
:class:`ArtifactIncompatible`, and legacy bare ``.npz`` archives loading
only behind an explicit opt-in plus ``UserWarning``.
"""

import io
import zipfile

import numpy as np
import pytest

from repro.errors import ArtifactCorrupt, ArtifactIncompatible
from repro.nn import Adam, Linear, StateDictMismatch
from repro.nn.serialization import (
    FORMAT_VERSION,
    config_fingerprint,
    load_state,
    read_artifact,
    save_state,
    write_artifact,
)


def sample_arrays() -> dict[str, np.ndarray]:
    return {
        "weights": np.arange(12, dtype=np.float64).reshape(3, 4),
        "scalar": np.asarray(0.05),  # 0-d arrays must round-trip as 0-d
        "counts": np.array([1, 2, 3], dtype=np.int64),
    }


class TestRoundTrip:
    def test_arrays_and_meta_round_trip(self, tmp_path):
        path = tmp_path / "artifact.npz"
        write_artifact(path, sample_arrays(), kind="test", meta={"note": "hi"})
        artifact = read_artifact(path, kind="test")
        assert artifact.kind == "test"
        assert artifact.meta == {"note": "hi"}
        for name, expected in sample_arrays().items():
            got = artifact.arrays[name]
            assert got.shape == expected.shape
            assert got.dtype == expected.dtype
            np.testing.assert_array_equal(got, expected)

    def test_zero_d_array_keeps_its_shape(self, tmp_path):
        # Regression: an over-eager contiguity copy used to promote 0-d
        # arrays to shape (1,), making every archive carrying one
        # self-contradictory (manifest said () while bytes said (1,)).
        path = tmp_path / "scalar.npz"
        write_artifact(path, {"lr": np.asarray(0.01)}, kind="test")
        artifact = read_artifact(path, kind="test")
        assert artifact.arrays["lr"].shape == ()
        assert artifact.arrays["lr"] == pytest.approx(0.01)

    def test_writes_are_byte_deterministic(self, tmp_path):
        a, b = tmp_path / "a.npz", tmp_path / "b.npz"
        write_artifact(a, sample_arrays(), kind="test", meta={"k": 1})
        write_artifact(b, sample_arrays(), kind="test", meta={"k": 1})
        assert a.read_bytes() == b.read_bytes()

    def test_artifact_is_still_a_loadable_npz(self, tmp_path):
        # The envelope must stay a plain .npz: plotting/debugging scripts
        # that np.load model files keep working.
        path = tmp_path / "artifact.npz"
        write_artifact(path, sample_arrays(), kind="test")
        with np.load(path) as archive:
            np.testing.assert_array_equal(
                archive["weights"], sample_arrays()["weights"]
            )

    def test_missing_file_is_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_artifact(tmp_path / "nope.npz")


class TestExactPathWrites:
    def test_save_state_writes_exactly_the_given_path(self, tmp_path):
        # Regression: np.savez appended ".npz" to suffixless paths, so
        # save_state(module, "model") wrote "model.npz" while callers
        # kept asking for "model".
        module = Linear(3, 2, rng=0)
        target = tmp_path / "model"  # no suffix on purpose
        save_state(module, target)
        assert target.exists()
        assert not (tmp_path / "model.npz").exists()
        reloaded = Linear(3, 2, rng=1)
        load_state(reloaded, target)
        np.testing.assert_array_equal(
            reloaded.weight.data, module.weight.data
        )

    def test_failed_write_leaves_no_file_behind(self, tmp_path):
        class Hostile:
            shape = (2,)
            dtype = np.float64

            def __array__(self, dtype=None, copy=None):
                raise ValueError("boom")

        target = tmp_path / "model.npz"
        with pytest.raises(ValueError):
            write_artifact(target, {"bad": Hostile()}, kind="test")
        assert list(tmp_path.iterdir()) == []


class TestCorruptionDetection:
    def test_every_flipped_byte_is_detected_or_harmless(self, tmp_path):
        """Fuzz: flip one byte at a stride of positions across the whole
        file.  Every mutation must either surface as a structured error
        (ArtifactCorrupt, or ArtifactIncompatible for bytes encoding the
        manifest's version/kind fields) or leave the decoded arrays
        bit-identical (zip metadata the reader never consults) — never
        load silently different weights."""
        path = tmp_path / "artifact.npz"
        write_artifact(path, sample_arrays(), kind="test")
        pristine = path.read_bytes()
        expected = sample_arrays()
        raised = 0
        for offset in range(0, len(pristine), 37):
            mutated = bytearray(pristine)
            mutated[offset] ^= 0xFF
            target = tmp_path / "mutated.npz"
            target.write_bytes(bytes(mutated))
            try:
                artifact = read_artifact(target, kind="test")
            except (ArtifactCorrupt, ArtifactIncompatible):
                raised += 1
                continue
            for name, array in expected.items():
                np.testing.assert_array_equal(artifact.arrays[name], array)
        # The overwhelming majority of positions hold payload, not inert
        # zip metadata — the checksums must actually be doing the work.
        assert raised > (len(pristine) // 37) * 3 // 4

    def test_flipped_payload_byte_is_always_corrupt(self, tmp_path):
        """Every byte of every stored ``.npy`` payload is covered by a
        manifest checksum: flipping any one of them must raise."""
        path = tmp_path / "artifact.npz"
        write_artifact(path, sample_arrays(), kind="test")
        pristine = path.read_bytes()
        probe = np.arange(12, dtype=np.float64).reshape(3, 4).tobytes()
        start = pristine.index(probe)
        for offset in range(start, start + len(probe), 11):
            mutated = bytearray(pristine)
            mutated[offset] ^= 0xFF
            target = tmp_path / "mutated.npz"
            target.write_bytes(bytes(mutated))
            with pytest.raises(ArtifactCorrupt, match="checksum|unreadable"):
                read_artifact(target, kind="test")

    def test_truncated_file_is_corrupt(self, tmp_path):
        path = tmp_path / "artifact.npz"
        write_artifact(path, sample_arrays(), kind="test")
        data = path.read_bytes()
        for keep in (0, 10, len(data) // 2, len(data) - 1):
            (tmp_path / "cut.npz").write_bytes(data[:keep])
            with pytest.raises(ArtifactCorrupt):
                read_artifact(tmp_path / "cut.npz", kind="test")

    def test_extra_unmanifested_array_is_corrupt(self, tmp_path):
        path = tmp_path / "artifact.npz"
        write_artifact(path, sample_arrays(), kind="test")
        with zipfile.ZipFile(path, "a") as zf:
            buffer = io.BytesIO()
            np.lib.format.write_array(buffer, np.zeros(3))
            zf.writestr("smuggled.npy", buffer.getvalue())
        with pytest.raises(ArtifactCorrupt, match="smuggled"):
            read_artifact(path, kind="test")

    def test_not_an_archive_is_corrupt(self, tmp_path):
        path = tmp_path / "artifact.npz"
        path.write_bytes(b"definitely not a zip")
        with pytest.raises(ArtifactCorrupt):
            read_artifact(path, kind="test")


class TestCompatibilityChecks:
    def _rewrite_manifest(self, path, mutate):
        import json

        with zipfile.ZipFile(path) as zf:
            entries = {n: zf.read(n) for n in zf.namelist()}
        manifest = json.loads(entries["__manifest__.json"])
        mutate(manifest)
        entries["__manifest__.json"] = json.dumps(manifest).encode()
        with zipfile.ZipFile(path, "w") as zf:
            for name, raw in entries.items():
                zf.writestr(name, raw)

    def test_wrong_kind_is_incompatible(self, tmp_path):
        path = tmp_path / "artifact.npz"
        write_artifact(path, sample_arrays(), kind="checkpoint")
        with pytest.raises(ArtifactIncompatible, match="'checkpoint'"):
            read_artifact(path, kind="model")
        # Without an expected kind, any kind is acceptable.
        assert read_artifact(path).kind == "checkpoint"

    def test_future_format_version_is_incompatible(self, tmp_path):
        path = tmp_path / "artifact.npz"
        write_artifact(path, sample_arrays(), kind="test")
        self._rewrite_manifest(
            path, lambda m: m.update(format_version=FORMAT_VERSION + 1)
        )
        with pytest.raises(ArtifactIncompatible, match="format_version"):
            read_artifact(path, kind="test")

    def test_garbage_format_version_is_incompatible(self, tmp_path):
        path = tmp_path / "artifact.npz"
        write_artifact(path, sample_arrays(), kind="test")
        self._rewrite_manifest(
            path, lambda m: m.update(format_version="one")
        )
        with pytest.raises(ArtifactIncompatible):
            read_artifact(path, kind="test")


class TestLegacyArchives:
    def make_legacy(self, tmp_path):
        path = tmp_path / "legacy"
        np.savez(path, **sample_arrays())  # appends .npz itself
        return tmp_path / "legacy.npz"

    def test_legacy_refused_without_opt_in(self, tmp_path):
        path = self.make_legacy(tmp_path)
        with pytest.raises(ArtifactIncompatible, match="manifest"):
            read_artifact(path, kind="test")

    def test_legacy_loads_with_warning_when_allowed(self, tmp_path):
        path = self.make_legacy(tmp_path)
        with pytest.warns(UserWarning, match="legacy"):
            artifact = read_artifact(path, kind="test", allow_legacy=True)
        assert artifact.manifest is None
        assert artifact.kind is None
        np.testing.assert_array_equal(
            artifact.arrays["weights"], sample_arrays()["weights"]
        )


class TestStrictStateDicts:
    def test_strict_load_lists_every_offender_at_once(self):
        module = Linear(3, 2, rng=0)
        state = module.state_dict()
        del state["bias"]  # missing
        state["weight"] = np.zeros((5, 5))  # shape mismatch
        state["ghost"] = np.zeros(2)  # unexpected
        with pytest.raises(StateDictMismatch) as excinfo:
            module.load_state_dict(state)
        message = str(excinfo.value)
        assert "missing keys: ['bias']" in message
        assert "unexpected keys: ['ghost']" in message
        assert "shape mismatch for 'weight'" in message

    def test_non_strict_loads_what_fits_and_reports_the_rest(self):
        module = Linear(3, 2, rng=0)
        donor = Linear(3, 2, rng=1)
        state = donor.state_dict()
        del state["bias"]
        state["ghost"] = np.zeros(2)
        before_bias = module.bias.data.copy()
        missing, unexpected = module.load_state_dict(state, strict=False)
        assert missing == ["bias"]
        assert unexpected == ["ghost"]
        np.testing.assert_array_equal(module.weight.data, donor.weight.data)
        np.testing.assert_array_equal(module.bias.data, before_bias)

    def test_optimizer_state_round_trips_through_artifact(self, tmp_path):
        module = Linear(3, 2, rng=0)
        optimizer = Adam(module.parameters(), lr=0.02)
        for param in module.parameters():
            param.grad = np.ones_like(param.data)
        optimizer.step()
        path = tmp_path / "opt.npz"
        write_artifact(path, optimizer.state_dict(), kind="test")
        restored = Adam(Linear(3, 2, rng=1).parameters(), lr=0.5)
        restored.load_state_dict(read_artifact(path, kind="test").arrays)
        assert restored.lr == pytest.approx(0.02)
        assert restored._t == optimizer._t
        for mine, theirs in zip(restored._m, optimizer._m):
            np.testing.assert_array_equal(mine, theirs)
        for mine, theirs in zip(restored._v, optimizer._v):
            np.testing.assert_array_equal(mine, theirs)


class TestConfigFingerprint:
    def test_stable_across_key_order(self):
        assert config_fingerprint({"a": 1, "b": 2.5}) == config_fingerprint(
            {"b": 2.5, "a": 1}
        )

    def test_sensitive_to_values(self):
        assert config_fingerprint({"a": 1}) != config_fingerprint({"a": 2})

    def test_short_hex(self):
        digest = config_fingerprint({"a": 1})
        assert len(digest) == 16
        int(digest, 16)  # raises if not hex
