"""Tests for repro.datasets.synthetic and repro.datasets.dataset."""

import pytest

from repro.datasets import DatasetConfig, make_city_dataset, preset_config


class TestPresets:
    def test_hangzhou_preset(self):
        config = preset_config("hangzhou", num_trajectories=10)
        config.validate()
        assert config.simulation.cellular_interval_mean_s == pytest.approx(67.0)

    def test_xiamen_preset_samples_faster(self):
        hz = preset_config("hangzhou")
        xm = preset_config("xiamen")
        assert (
            xm.simulation.cellular_interval_mean_s
            < hz.simulation.cellular_interval_mean_s
        )

    def test_unknown_preset(self):
        with pytest.raises(ValueError):
            preset_config("beijing")

    def test_invalid_groundtruth_mode(self):
        config = DatasetConfig(groundtruth="magic")
        with pytest.raises(ValueError):
            config.validate()


class TestDataset:
    def test_split_sizes(self, tiny_dataset):
        n = len(tiny_dataset)
        assert len(tiny_dataset.train) == int(n * 0.7)
        assert len(tiny_dataset.train) + len(tiny_dataset.val) + len(tiny_dataset.test) == n

    def test_splits_are_disjoint(self, tiny_dataset):
        ids = lambda split: {s.sample_id for s in split}
        assert not ids(tiny_dataset.train) & ids(tiny_dataset.test)
        assert not ids(tiny_dataset.train) & ids(tiny_dataset.val)

    def test_samples_have_labels(self, tiny_dataset):
        for sample in tiny_dataset.samples:
            assert sample.truth_path
            assert len(sample.cellular) >= 3
            assert len(sample.gps) >= 2

    def test_truth_paths_are_consecutive(self, tiny_dataset):
        net = tiny_dataset.network
        for sample in tiny_dataset.samples[:10]:
            for a, b in zip(sample.truth_path, sample.truth_path[1:]):
                assert net.segments[b].start_node == net.segments[a].end_node

    def test_engine_is_shared(self, tiny_dataset):
        assert tiny_dataset.engine is tiny_dataset.engine

    def test_with_samples_shares_substrate(self, tiny_dataset):
        subset = tiny_dataset.with_samples(tiny_dataset.samples[:5])
        assert len(subset) == 5
        assert subset.network is tiny_dataset.network
        assert subset.towers is tiny_dataset.towers

    def test_distance_to_centre(self, tiny_dataset):
        for sample in tiny_dataset.samples[:5]:
            assert tiny_dataset.distance_to_centre(sample) >= 0.0

    def test_gps_hmm_groundtruth_close_to_oracle(self, gps_dataset):
        """GPS-derived truth should cover most of the simulator's true path."""
        from repro.eval.metrics import precision_recall

        net = gps_dataset.network
        recalls = []
        for sample in gps_dataset.samples:
            _, recall = precision_recall(net, sample.sim_path, sample.truth_path)
            recalls.append(recall)
        assert sum(recalls) / len(recalls) > 0.8

    def test_deterministic_given_seed(self):
        from tests.conftest import TINY_CITY, TINY_SIMULATION, TINY_TOWERS

        config = DatasetConfig(
            name="det",
            city=TINY_CITY,
            towers=TINY_TOWERS,
            simulation=TINY_SIMULATION,
            num_trajectories=5,
            groundtruth="oracle",
        )
        a = make_city_dataset(config, rng=4)
        b = make_city_dataset(config, rng=4)
        assert [s.truth_path for s in a.samples] == [s.truth_path for s in b.samples]
