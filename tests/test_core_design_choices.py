"""Tests for the reproduction's own design-choice switches."""

import pytest

from repro.core import LHMM, LHMMConfig, RelationGraph
from repro.core.candidates import learned_candidate_pool, spatial_candidate_pool
from tests.conftest import tiny_lhmm_config


@pytest.fixture(scope="module")
def graph(tiny_dataset):
    return RelationGraph(tiny_dataset.network, tiny_dataset.towers).build(
        tiny_dataset.train
    )


class TestPoolExtension:
    def test_extension_adds_cooccurring_roads(self, graph, tiny_dataset):
        # Find a point whose tower has co-occurring roads outside the
        # nearest-first spatial pool.
        for sample in tiny_dataset.test:
            for point in sample.cellular.points:
                spatial = spatial_candidate_pool(
                    tiny_dataset.network, point, 1200.0, 20
                )
                known = graph.roads_seen_with(point.tower_id)
                extra = known - set(spatial)
                if extra:
                    extended = learned_candidate_pool(graph, point, 1200.0, 20)
                    assert extra <= set(extended)
                    return
        pytest.skip("no point with out-of-pool co-occurring roads in this dataset")

    def test_extension_can_be_disabled(self, graph, tiny_dataset):
        point = tiny_dataset.test[0].cellular.points[0]
        plain = learned_candidate_pool(
            graph, point, 1200.0, 20, include_cooccurrence=False
        )
        spatial = spatial_candidate_pool(tiny_dataset.network, point, 1200.0, 20)
        assert plain == spatial


class TestConfigWiring:
    def test_feature_count_follows_flag(self):
        assert LHMMConfig(use_rank_features=True).observation_feature_count == 4
        assert LHMMConfig(use_rank_features=False).observation_feature_count == 2

    def test_matcher_trains_without_rank_features(self, tiny_dataset):
        config = tiny_lhmm_config()
        config.use_rank_features = False
        matcher = LHMM(config, rng=2).fit(tiny_dataset)
        assert matcher.observation_learner.num_explicit == 2
        assert matcher.match(tiny_dataset.test[0].cellular).path

    def test_matcher_trains_without_pool_extension(self, tiny_dataset):
        config = tiny_lhmm_config()
        config.extend_pool_with_cooccurrence = False
        matcher = LHMM(config, rng=2).fit(tiny_dataset)
        assert matcher.match(tiny_dataset.test[0].cellular).path

    def test_flags_survive_persistence(self, tiny_dataset, tmp_path):
        config = tiny_lhmm_config()
        config.use_rank_features = False
        matcher = LHMM(config, rng=2).fit(tiny_dataset)
        path = tmp_path / "m.npz"
        matcher.save(path)
        restored = LHMM.load(path, tiny_dataset)
        assert restored.config.use_rank_features is False
        assert restored.observation_learner.num_explicit == 2