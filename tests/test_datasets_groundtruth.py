"""Tests for repro.datasets.groundtruth (the GPS-HMM ground-truth pipeline)."""

import numpy as np
import pytest

from repro.datasets import GpsHmmConfig, match_gps_trajectory
from repro.eval.metrics import precision_recall


class TestConfig:
    def test_defaults_validate(self):
        GpsHmmConfig().validate()

    def test_invalid_candidates(self):
        with pytest.raises(ValueError):
            GpsHmmConfig(max_candidates=0).validate()

    def test_invalid_sigma(self):
        with pytest.raises(ValueError):
            GpsHmmConfig(observation_sigma_m=0).validate()


class TestGpsMatching:
    def test_recovers_simulated_path(self, tiny_simulator, tiny_network, tiny_engine):
        """The classical HMM on GPS must recover nearly all of the true path."""
        recalls = []
        for i in range(6):
            trip = tiny_simulator.simulate_trip(1000 + i)
            matched = match_gps_trajectory(trip.gps, tiny_network, tiny_engine)
            precision, recall = precision_recall(tiny_network, trip.path, matched)
            recalls.append(recall)
        assert np.mean(recalls) > 0.85

    def test_path_is_consecutive_where_routable(
        self, tiny_simulator, tiny_network, tiny_engine
    ):
        trip = tiny_simulator.simulate_trip(2000)
        matched = match_gps_trajectory(trip.gps, tiny_network, tiny_engine)
        breaks = 0
        for a, b in zip(matched, matched[1:]):
            if tiny_network.segments[b].start_node != tiny_network.segments[a].end_node:
                breaks += 1
        assert breaks == 0

    def test_no_consecutive_duplicates(self, tiny_simulator, tiny_network, tiny_engine):
        trip = tiny_simulator.simulate_trip(2001)
        matched = match_gps_trajectory(trip.gps, tiny_network, tiny_engine)
        assert all(a != b for a, b in zip(matched, matched[1:]))

    def test_empty_trajectory_returns_empty(self, tiny_network, tiny_engine):
        from repro.cellular import Trajectory

        empty = Trajectory(points=[], _validated=True)
        assert match_gps_trajectory(empty, tiny_network, tiny_engine) == []
