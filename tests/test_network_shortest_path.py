"""Tests for repro.network.shortest_path."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import Point, Polyline
from repro.network import RoadNetwork, RoadSegment, Route, ShortestPathEngine
from repro.network.shortest_path import stitch_segments


def line_network(n: int = 5) -> RoadNetwork:
    """A simple bidirectional chain of ``n`` nodes, 100 m apart."""
    net = RoadNetwork()
    for i in range(n):
        net.add_node(i, Point(i * 100.0, 0.0))
    seg_id = 0
    for i in range(n - 1):
        a, b = Point(i * 100.0, 0.0), Point((i + 1) * 100.0, 0.0)
        net.add_segment(RoadSegment(seg_id, i, i + 1, Polyline([a, b])))
        seg_id += 1
        net.add_segment(RoadSegment(seg_id, i + 1, i, Polyline([b, a])))
        seg_id += 1
    return net.freeze()


class TestNodeRouting:
    def test_distance_forward(self):
        engine = ShortestPathEngine(line_network())
        assert engine.node_distance(0, 3) == pytest.approx(300.0)

    def test_distance_to_self(self):
        engine = ShortestPathEngine(line_network())
        assert engine.node_distance(2, 2) == 0.0

    def test_unreachable_is_inf(self):
        net = RoadNetwork()
        net.add_node(0, Point(0, 0))
        net.add_node(1, Point(100, 0))
        net.freeze()
        engine = ShortestPathEngine(net)
        assert math.isinf(engine.node_distance(0, 1))

    def test_path_segments_reconstruct(self):
        net = line_network()
        engine = ShortestPathEngine(net)
        path = engine.node_path_segments(0, 3)
        assert path is not None
        assert [net.segments[s].start_node for s in path] == [0, 1, 2]

    def test_path_to_self_is_empty(self):
        engine = ShortestPathEngine(line_network())
        assert engine.node_path_segments(1, 1) == []

    def test_caching(self):
        engine = ShortestPathEngine(line_network())
        engine.node_distance(0, 4)
        engine.node_distance(0, 2)
        assert engine.cached_sources == 1
        engine.clear_cache()
        assert engine.cached_sources == 0

    @pytest.mark.parametrize("use_scipy", [True, False])
    def test_node_distance_never_exceeds_bound(self, use_scipy):
        net = line_network(30)
        engine = ShortestPathEngine(net, max_route_length=500.0, use_scipy=use_scipy)
        for v in net.nodes:
            distance = engine.node_distance(0, v)
            assert distance <= 500.0 or math.isinf(distance)

    def test_distances_matrix_matches_scalar(self):
        net = line_network(6)
        engine = ShortestPathEngine(net)
        nodes = sorted(net.nodes)
        matrix = engine.distances(nodes, nodes)
        for i, u in enumerate(nodes):
            for j, v in enumerate(nodes):
                scalar = engine.node_distance(u, v)
                if math.isinf(scalar):
                    assert math.isinf(matrix[i, j])
                else:
                    assert matrix[i, j] == pytest.approx(scalar)


class TestSegmentRouting:
    def test_self_route(self):
        engine = ShortestPathEngine(line_network())
        route = engine.route(0, 0)
        assert route == Route(segments=(0,), length=0.0)

    def test_direct_continuation(self):
        net = line_network()
        engine = ShortestPathEngine(net)
        # segment 0 is 0->1, segment 2 is 1->2
        route = engine.route(0, 2)
        assert route is not None
        assert route.segments == (0, 2)
        assert route.length == pytest.approx(100.0)

    def test_multi_hop_route(self):
        engine = ShortestPathEngine(line_network())
        route = engine.route(0, 6)  # 0->1 then 3->4: hops via 1->2, 2->3
        assert route is not None
        assert route.length == pytest.approx(300.0)
        assert route.segments[0] == 0
        assert route.segments[-1] == 6

    def test_route_length_unreachable(self):
        net = RoadNetwork()
        net.add_node(0, Point(0, 0))
        net.add_node(1, Point(100, 0))
        net.add_node(2, Point(200, 0))
        net.add_node(3, Point(300, 0))
        net.add_segment(RoadSegment(0, 0, 1, Polyline([Point(0, 0), Point(100, 0)])))
        net.add_segment(RoadSegment(1, 2, 3, Polyline([Point(200, 0), Point(300, 0)])))
        net.freeze()
        engine = ShortestPathEngine(net)
        assert math.isinf(engine.route_length(0, 1))

    def test_max_route_length_bound(self):
        engine = ShortestPathEngine(line_network(30), max_route_length=500.0)
        assert engine.route(0, 2 * 20) is None

    def test_route_cache_counters(self):
        engine = ShortestPathEngine(line_network())
        assert engine.route(0, 6) is not None
        assert engine.route(0, 6) is not None
        stats = engine.cache_stats()
        assert stats["route_cache_hits"] == 1
        assert stats["route_cache_misses"] == 1
        engine.clear_cache()
        assert engine.cache_stats()["route_cache_entries"] == 0

    def test_route_cache_is_bounded(self):
        engine = ShortestPathEngine(line_network(8), route_cache_size=4)
        for target in range(0, 14, 2):
            engine.route(0, target)
        assert engine.cache_stats()["route_cache_entries"] <= 4

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 7), st.integers(0, 7))
    def test_route_length_consistent_with_segments(self, a, b):
        net = line_network(5)
        engine = ShortestPathEngine(net)
        route = engine.route(a, b)
        if route is None:
            return
        expected = sum(net.segments[s].length for s in route.segments[1:])
        assert route.length == pytest.approx(expected)


class TestRouteOnCity(object):
    def test_triangle_inequality_on_city(self, tiny_network, tiny_engine):
        segs = sorted(tiny_network.segments)[:6]
        for a in segs:
            for b in segs:
                direct = tiny_engine.route_length(a, b)
                if math.isinf(direct):
                    continue
                for mid in segs[:3]:
                    via = tiny_engine.route_length(a, mid) + tiny_engine.route_length(mid, b)
                    assert direct <= via + 1e-6


class TestStitch:
    def test_stitch_deduplicates(self):
        engine = ShortestPathEngine(line_network())
        assert stitch_segments([0, 0, 0], engine) == [0]

    def test_stitch_fills_gaps(self):
        net = line_network()
        engine = ShortestPathEngine(net)
        path = stitch_segments([0, 6], engine)
        assert path == [0, 2, 4, 6]

    def test_stitch_empty(self):
        engine = ShortestPathEngine(line_network())
        assert stitch_segments([], engine) == []

    def test_stitch_is_consecutive(self, tiny_network, tiny_engine):
        segs = sorted(tiny_network.segments)
        path = stitch_segments([segs[0], segs[len(segs) // 2]], tiny_engine)
        for a, b in zip(path, path[1:]):
            assert tiny_network.segments[b].start_node == tiny_network.segments[a].end_node
