"""End-to-end tests of the HTTP matching service.

Boots a real :class:`MatchingServer` on an ephemeral port and drives it
through :class:`MatchingClient` — concurrent streaming sessions, batch
matches, saturation (503 + ``Retry-After``), and graceful drain — always
asserting results are *identical* to calling the matcher directly.
"""

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core import OnlineLHMM
from repro.serve import (
    MatchingClient,
    MatchingServer,
    ServeClientError,
    ServeConfig,
    ServerBusy,
)


@pytest.fixture()
def server(trained_lhmm):
    config = ServeConfig(port=0, batch_window_ms=5.0, default_lag=3)
    with MatchingServer(trained_lhmm, config) as running:
        yield running


@pytest.fixture()
def client(server):
    return MatchingClient(server.host, server.port)


class TestEndToEnd:
    def test_health(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["protocol_version"] == 1

    def test_batch_matches_equal_direct_calls(self, client, trained_lhmm, tiny_dataset):
        samples = tiny_dataset.test[:3]
        results = client.match([s.cellular for s in samples])
        direct = [trained_lhmm.match(s.cellular) for s in samples]
        assert [r["path"] for r in results] == [d.path for d in direct]
        assert [r["matched_sequence"] for r in results] == [
            d.matched_sequence for d in direct
        ]
        for served, computed in zip(results, direct):
            assert served["score"] == pytest.approx(computed.score)

    def test_single_trajectory_shorthand(self, client, trained_lhmm, tiny_dataset):
        sample = tiny_dataset.test[0]
        result = client._request(
            "POST",
            "/v1/match",
            {"points": [{"x": p.position.x, "y": p.position.y, "t": p.timestamp,
                         "tower_id": p.tower_id} for p in sample.cellular.points]},
        )["result"]
        assert result["path"] == trained_lhmm.match(sample.cellular).path

    def test_streaming_session_equals_direct_decoder(
        self, client, trained_lhmm, tiny_dataset
    ):
        sample = tiny_dataset.test[0]
        reference = OnlineLHMM(trained_lhmm, lag=3)
        with client.create_session(lag=3) as session:
            for point in sample.cellular.points:
                state = session.feed(point)
                reference.add_point(point)
                assert state["committed"] == reference.committed_path
                assert state["pending"] == reference.pending_points()
            path = session.close()
        assert path == reference.finish()

    def test_concurrent_streams_and_batches(self, client, trained_lhmm, tiny_dataset):
        """Interleaved workloads on many threads stay isolated and exact."""
        stream_samples = tiny_dataset.test[:2]
        batch_samples = tiny_dataset.test[2:5]

        def run_stream(sample):
            session = client.create_session(lag=3)
            for point in sample.cellular.points:
                session.feed(point)
            return session.close()

        def run_batch(sample):
            return client.match_with_retry([sample.cellular])[0]["path"]

        with ThreadPoolExecutor(max_workers=5) as pool:
            stream_futures = [pool.submit(run_stream, s) for s in stream_samples]
            batch_futures = [pool.submit(run_batch, s) for s in batch_samples]
            stream_paths = [f.result(timeout=120) for f in stream_futures]
            batch_paths = [f.result(timeout=120) for f in batch_futures]

        for sample, path in zip(stream_samples, stream_paths):
            assert path == OnlineLHMM(trained_lhmm, lag=3).match_stream(sample.cellular)
        for sample, path in zip(batch_samples, batch_paths):
            assert path == trained_lhmm.match(sample.cellular).path

    def test_session_decoders_are_recycled_across_http_sessions(
        self, client, server, tiny_dataset
    ):
        sample = tiny_dataset.test[0]
        for _ in range(2):
            session = client.create_session(lag=3)
            session.feed(list(sample.cellular.points))
            session.close()
        assert client.metrics()["sessions"]["recycled_total"] >= 1


class TestErrorHandling:
    def test_unknown_route_is_404(self, client):
        with pytest.raises(ServeClientError) as excinfo:
            client._request("GET", "/v1/nope")
        assert excinfo.value.status == 404

    def test_unknown_session_is_404(self, client):
        with pytest.raises(ServeClientError) as excinfo:
            client.close_session("missing")
        assert excinfo.value.status == 404

    def test_malformed_points_is_400(self, client):
        session = client.create_session()
        with pytest.raises(ServeClientError) as excinfo:
            client._request(
                "POST", f"/v1/sessions/{session.session_id}/points", {"points": [{"x": 1}]}
            )
        assert excinfo.value.status == 400
        session.close()

    def test_bad_json_is_400(self, client, server):
        import http.client

        connection = http.client.HTTPConnection(server.host, server.port, timeout=10)
        try:
            connection.request(
                "POST", "/v1/match", body=b"{not json",
                headers={"Content-Type": "application/json"},
            )
            assert connection.getresponse().status == 400
        finally:
            connection.close()

    def test_bad_lag_is_400(self, client):
        with pytest.raises(ServeClientError) as excinfo:
            client.create_session(lag=0)
        assert excinfo.value.status == 400

    def test_session_limit_is_429(self, trained_lhmm):
        config = ServeConfig(port=0, max_sessions=1)
        with MatchingServer(trained_lhmm, config) as running:
            client = MatchingClient(running.host, running.port)
            client.create_session()
            with pytest.raises(ServerBusy):
                client.create_session()


class TestBackpressureAndDrain:
    def test_saturated_queue_answers_503_with_retry_after(self, trained_lhmm, tiny_dataset):
        """queue_limit=1 + a gated batch_fn: the third request must shed
        with the same overload answer the cluster gateway gives — 503 +
        Retry-After and the stable ``server_overloaded`` code."""
        gate = threading.Event()
        entered = threading.Event()

        def gated_batch(trajectories):
            entered.set()
            gate.wait(30)
            return trained_lhmm.match_many(trajectories)

        config = ServeConfig(
            port=0, batch_window_ms=0.0, batch_max=1, queue_limit=1, retry_after_s=2.0
        )
        server = MatchingServer(trained_lhmm, config, batch_fn=gated_batch)
        server.start()
        try:
            client = MatchingClient(server.host, server.port, timeout=60.0)
            sample = tiny_dataset.test[0]
            pool = ThreadPoolExecutor(max_workers=2)
            admitted = [pool.submit(client.match, [sample.cellular])]
            assert entered.wait(10)  # first request now occupies the dispatcher
            admitted.append(pool.submit(client.match, [sample.cellular]))
            deadline = time.time() + 10
            while server.batcher.queue_depth < 1:  # second request now queued
                assert time.time() < deadline
                time.sleep(0.01)

            with pytest.raises(ServerBusy) as excinfo:
                client.match([sample.cellular])
            assert excinfo.value.status == 503
            assert excinfo.value.retry_after_s == 2.0
            assert excinfo.value.payload["code"] == "server_overloaded"
            assert excinfo.value.payload["error"].startswith("request queue full")

            # The admitted requests complete once the gate opens (drain).
            gate.set()
            expected = trained_lhmm.match(sample.cellular).path
            for future in admitted:
                assert future.result(timeout=60)[0]["path"] == expected
            pool.shutdown()
            metrics = client.metrics()
            assert metrics["batching"]["rejected_total"] >= 1
        finally:
            gate.set()
            server.shutdown()

    def test_shutdown_drains_in_flight_and_commits_sessions(
        self, trained_lhmm, tiny_dataset
    ):
        """In-flight batch work is answered and open sessions are committed."""
        release = threading.Event()
        entered = threading.Event()

        def slow_batch(trajectories):
            entered.set()
            release.wait(30)
            return trained_lhmm.match_many(trajectories)

        config = ServeConfig(port=0, batch_window_ms=0.0, queue_limit=8)
        server = MatchingServer(trained_lhmm, config, batch_fn=slow_batch)
        server.start()
        client = MatchingClient(server.host, server.port, timeout=60.0)
        sample = tiny_dataset.test[0]

        # An open streaming session with a few points fed.
        session = client.create_session(lag=3)
        session.feed(sample.cellular.points[:4])

        # An in-flight batch request, blocked inside batch_fn.
        pool = ThreadPoolExecutor(max_workers=1)
        in_flight = pool.submit(client.match, [sample.cellular])
        assert entered.wait(10)  # the request is now inside batch_fn

        shutdown_result = {}

        def do_shutdown():
            shutdown_result.update(server.shutdown())

        closer = threading.Thread(target=do_shutdown)
        closer.start()
        time.sleep(0.1)
        release.set()  # let the in-flight batch finish
        closer.join(timeout=30)
        assert not closer.is_alive()

        # The admitted request was answered correctly during the drain.
        assert in_flight.result(timeout=30)[0]["path"] == trained_lhmm.match(
            sample.cellular
        ).path
        pool.shutdown()

        # The open session was committed: its fixed-lag path was flushed.
        committed = shutdown_result["sessions"]
        expected = OnlineLHMM(trained_lhmm, lag=3)
        for point in sample.cellular.points[:4]:
            expected.add_point(point)
        assert committed == {session.session_id: expected.finish()}

        # And the listener is really down.
        with pytest.raises(OSError):
            client.health()

    def test_requests_after_drain_start_are_rejected(self, trained_lhmm):
        config = ServeConfig(port=0)
        server = MatchingServer(trained_lhmm, config)
        server.start()
        client = MatchingClient(server.host, server.port)
        server._draining = True  # simulate mid-drain state with listener up
        with pytest.raises(ServeClientError) as excinfo:
            client.create_session()
        assert excinfo.value.status == 503
        server.shutdown()
