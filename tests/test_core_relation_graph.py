"""Tests for repro.core.relation_graph."""

import numpy as np
import pytest

from repro.core import RelationGraph
from repro.core.relation_graph import RELATIONS


@pytest.fixture(scope="module")
def built_graph(tiny_dataset):
    return RelationGraph(tiny_dataset.network, tiny_dataset.towers).build(
        tiny_dataset.train
    )


class TestIndexing:
    def test_node_count(self, built_graph, tiny_dataset):
        assert built_graph.num_nodes == len(tiny_dataset.towers) + tiny_dataset.network.num_segments

    def test_tower_and_segment_spaces_disjoint(self, built_graph, tiny_dataset):
        tower_nodes = {built_graph.tower_node(t.tower_id) for t in tiny_dataset.towers}
        seg_ids = sorted(tiny_dataset.network.segments)[:50]
        segment_nodes = {built_graph.segment_node(s) for s in seg_ids}
        assert not tower_nodes & segment_nodes
        assert max(tower_nodes) < min(segment_nodes)

    def test_vectorised_lookups(self, built_graph, tiny_dataset):
        seg_ids = sorted(tiny_dataset.network.segments)[:5]
        nodes = built_graph.segment_nodes(seg_ids)
        assert list(nodes) == [built_graph.segment_node(s) for s in seg_ids]


class TestEdges:
    def test_all_relations_present(self, built_graph):
        assert set(built_graph.edges) == set(RELATIONS)

    def test_inverse_relations_mirror(self, built_graph):
        co = built_graph.edges["CO"]
        co_inv = built_graph.edges["CO_inv"]
        assert co.count == co_inv.count
        assert np.array_equal(co.sources, co_inv.targets)
        assert np.array_equal(co.targets, co_inv.sources)

    def test_topology_matches_network(self, built_graph, tiny_dataset):
        tp = built_graph.edges["TP"]
        expected = sum(
            len(tiny_dataset.network.successors(s))
            for s in tiny_dataset.network.segments
        )
        assert tp.count == expected

    def test_co_edges_connect_towers_to_segments(self, built_graph):
        co = built_graph.edges["CO"]
        assert co.count > 0
        assert np.all(co.sources < built_graph.num_towers)
        assert np.all(co.targets >= built_graph.num_towers)

    def test_sq_edges_connect_towers(self, built_graph):
        sq = built_graph.edges["SQ"]
        assert sq.count > 0
        assert np.all(sq.sources < built_graph.num_towers)
        assert np.all(sq.targets < built_graph.num_towers)

    def test_merged_edges_cover_all(self, built_graph):
        merged = built_graph.merged_edges()
        assert merged.count == sum(e.count for e in built_graph.edges.values())

    def test_merged_before_build_rejected(self, tiny_dataset):
        graph = RelationGraph(tiny_dataset.network, tiny_dataset.towers)
        with pytest.raises(RuntimeError):
            graph.merged_edges()


class TestMiningStatePersistence:
    def test_round_trip(self, built_graph, tiny_dataset):
        from repro.core import RelationGraph

        state = built_graph.mining_state()
        restored = RelationGraph(tiny_dataset.network, tiny_dataset.towers)
        restored.load_mining_state(state)
        # Edge counts match after reload.
        for rel in ("CO", "SQ", "TP"):
            assert restored.edges[rel].count == built_graph.edges[rel].count
        # Co-occurrence frequencies survive exactly.
        tower_id = next(iter(tiny_dataset.towers.towers))
        for seg in list(built_graph.roads_seen_with(tower_id))[:5]:
            assert restored.co_occurrence_frequency(
                tower_id, seg
            ) == pytest.approx(built_graph.co_occurrence_frequency(tower_id, seg))

    def test_state_arrays_have_expected_shape(self, built_graph):
        state = built_graph.mining_state()
        assert state["co_counts"].ndim == 2 and state["co_counts"].shape[1] == 3
        assert state["sq_counts"].ndim == 2 and state["sq_counts"].shape[1] == 3


class TestCoOccurrence:
    def test_frequencies_normalised_per_tower(self, built_graph, tiny_dataset):
        for tower in list(tiny_dataset.towers)[:10]:
            roads = built_graph.roads_seen_with(tower.tower_id)
            if not roads:
                continue
            total = sum(
                built_graph.co_occurrence_frequency(tower.tower_id, seg) for seg in roads
            )
            assert total == pytest.approx(1.0)

    def test_unseen_pair_is_zero(self, built_graph, tiny_dataset):
        tower_id = next(iter(tiny_dataset.towers.towers))
        unseen = [
            s
            for s in tiny_dataset.network.segments
            if s not in built_graph.roads_seen_with(tower_id)
        ]
        assert built_graph.co_occurrence_frequency(tower_id, unseen[0]) == 0.0

    def test_truth_roads_have_positive_frequency(self, built_graph, tiny_dataset):
        """Training roads should co-occur with some tower of their sample."""
        sample = tiny_dataset.train[0]
        towers = {p.tower_id for p in sample.cellular.points}
        hits = 0
        for seg in sample.truth_path:
            if any(
                built_graph.co_occurrence_frequency(t, seg) > 0 for t in towers
            ):
                hits += 1
        assert hits / len(sample.truth_path) > 0.9
