"""Tests for repro.datasets.stats (Table I quantities)."""

import pytest

from repro.datasets import MatchingDataset, compute_statistics


class TestStatistics:
    def test_counts_match_dataset(self, tiny_dataset):
        stats = compute_statistics(tiny_dataset)
        assert stats.road_segments == tiny_dataset.network.num_segments
        assert stats.intersections == tiny_dataset.network.num_nodes
        assert stats.cellular_points == sum(
            len(s.raw_cellular) for s in tiny_dataset.samples
        )
        assert stats.gps_points == sum(len(s.gps) for s in tiny_dataset.samples)

    def test_gps_denser_than_cellular(self, tiny_dataset):
        stats = compute_statistics(tiny_dataset)
        assert stats.gps_points_per_trajectory > stats.cellular_points_per_trajectory

    def test_interval_statistics_ordered(self, tiny_dataset):
        stats = compute_statistics(tiny_dataset)
        assert 0 < stats.mean_cellular_interval_s <= stats.max_cellular_interval_s

    def test_distance_statistics_positive(self, tiny_dataset):
        stats = compute_statistics(tiny_dataset)
        assert stats.mean_cellular_distance_m > 0
        assert stats.median_cellular_distance_m > 0

    def test_rows_cover_table1(self, tiny_dataset):
        rows = compute_statistics(tiny_dataset).rows()
        labels = [label for label, _ in rows]
        assert len(rows) == 10
        assert "road segments" in labels
        assert "average cellular sampling interval (s)" in labels

    def test_empty_dataset_rejected(self, tiny_dataset):
        empty = MatchingDataset(
            name="empty",
            network=tiny_dataset.network,
            towers=tiny_dataset.towers,
            samples=[],
        )
        with pytest.raises(ValueError):
            compute_statistics(empty)
