"""Tests for repro.core.observation and repro.core.transition learners."""

import numpy as np
import pytest

from repro.core import ObservationLearner, TransitionLearner
from repro.core.features import NUM_OBSERVATION_FEATURES, NUM_TRANSITION_FEATURES
from repro.nn import Tensor


def rand(shape, seed=0):
    return Tensor(np.random.default_rng(seed).normal(size=shape))


class TestObservationLearner:
    def test_context_shape(self):
        learner = ObservationLearner(dim=8, hidden=8, rng=0)
        context = learner.context(rand((6, 8)))
        assert context.shape == (6, 8)

    def test_implicit_logits_with_single_context(self):
        learner = ObservationLearner(dim=8, hidden=8, rng=0)
        logits = learner.implicit_logits(rand((5, 8)), rand((8,), seed=1))
        assert logits.shape == (5,)

    def test_implicit_logits_with_paired_context(self):
        learner = ObservationLearner(dim=8, hidden=8, rng=0)
        logits = learner.implicit_logits(rand((5, 8)), rand((5, 8), seed=1))
        assert logits.shape == (5,)

    def test_fuse_outputs_probabilities(self):
        learner = ObservationLearner(dim=8, hidden=8, rng=0)
        explicit = np.random.default_rng(0).random((5, NUM_OBSERVATION_FEATURES))
        probs = learner.fuse(rand((5,), seed=2).sigmoid(), explicit).numpy()
        assert probs.shape == (5,)
        assert np.all((probs > 0) & (probs < 1))

    def test_fuse_requires_implicit_unless_ablated(self):
        learner = ObservationLearner(dim=8, hidden=8, rng=0)
        explicit = np.zeros((3, NUM_OBSERVATION_FEATURES))
        with pytest.raises(ValueError):
            learner.fuse(None, explicit)

    def test_ablated_learner_uses_explicit_only(self):
        learner = ObservationLearner(dim=8, hidden=8, use_implicit=False, rng=0)
        explicit = np.zeros((3, NUM_OBSERVATION_FEATURES))
        probs = learner.fuse(None, explicit).numpy()
        assert probs.shape == (3,)

    def test_score_end_to_end(self):
        learner = ObservationLearner(dim=8, hidden=8, rng=0)
        explicit = np.random.default_rng(1).random((4, NUM_OBSERVATION_FEATURES))
        probs = learner.score(rand((4, 8)), rand((8,), seed=3), explicit).numpy()
        assert probs.shape == (4,)

    def test_context_depends_on_other_points(self):
        learner = ObservationLearner(dim=8, hidden=8, rng=0)
        base = rand((4, 8), seed=5)
        context_a = learner.context(base).numpy()[0]
        perturbed = Tensor(np.concatenate([base.numpy()[:3], base.numpy()[3:] + 5.0]))
        context_b = learner.context(perturbed).numpy()[0]
        assert not np.allclose(context_a, context_b)


class TestTransitionLearner:
    def test_relevance_shape(self):
        learner = TransitionLearner(dim=8, hidden=8, rng=0)
        logits = learner.road_relevance_logits(rand((7, 8)), rand((4, 8), seed=1))
        assert logits.shape == (7,)

    def test_fuse_outputs_probabilities(self):
        learner = TransitionLearner(dim=8, hidden=8, rng=0)
        explicit = np.random.default_rng(0).random((6, NUM_TRANSITION_FEATURES))
        probs = learner.fuse(rand((6,), seed=2).sigmoid(), explicit).numpy()
        assert np.all((probs > 0) & (probs < 1))

    def test_fuse_requires_implicit_unless_ablated(self):
        learner = TransitionLearner(dim=8, hidden=8, rng=0)
        with pytest.raises(ValueError):
            learner.fuse(None, np.zeros((2, NUM_TRANSITION_FEATURES)))

    def test_ablated_fuse(self):
        learner = TransitionLearner(dim=8, hidden=8, use_implicit=False, rng=0)
        probs = learner.fuse(None, np.zeros((2, NUM_TRANSITION_FEATURES))).numpy()
        assert probs.shape == (2,)

    def test_relevance_depends_on_trajectory(self):
        learner = TransitionLearner(dim=8, hidden=8, rng=0)
        roads = rand((5, 8), seed=6)
        towers_a = rand((3, 8), seed=7)
        towers_b = rand((3, 8), seed=8)
        a = learner.road_relevance_logits(roads, towers_a).numpy()
        b = learner.road_relevance_logits(roads, towers_b).numpy()
        assert not np.allclose(a, b)

    def test_gradients_flow(self):
        learner = TransitionLearner(dim=8, hidden=8, rng=0)
        logits = learner.road_relevance_logits(rand((4, 8)), rand((3, 8), seed=1))
        logits.sum().backward()
        assert any(p.grad is not None for p in learner.relevance_mlp.parameters())
