"""Tests for repro.network.io."""

import pytest

from repro.network import load_network, network_from_dict, network_to_dict, save_network


class TestRoundTrip:
    def test_dict_round_trip_preserves_structure(self, tiny_network):
        data = network_to_dict(tiny_network)
        rebuilt = network_from_dict(data)
        assert rebuilt.num_nodes == tiny_network.num_nodes
        assert rebuilt.num_segments == tiny_network.num_segments
        assert rebuilt.total_length() == pytest.approx(tiny_network.total_length())

    def test_dict_round_trip_preserves_attributes(self, tiny_network):
        rebuilt = network_from_dict(network_to_dict(tiny_network))
        for seg_id, seg in tiny_network.segments.items():
            other = rebuilt.segments[seg_id]
            assert other.start_node == seg.start_node
            assert other.end_node == seg.end_node
            assert other.speed_limit_mps == pytest.approx(seg.speed_limit_mps)
            assert other.road_class == seg.road_class

    def test_file_round_trip(self, tiny_network, tmp_path):
        path = tmp_path / "net.json"
        save_network(tiny_network, path)
        rebuilt = load_network(path)
        assert rebuilt.num_segments == tiny_network.num_segments

    def test_rebuilt_network_is_frozen(self, tiny_network):
        rebuilt = network_from_dict(network_to_dict(tiny_network))
        centre = next(iter(rebuilt.nodes.values()))
        assert rebuilt.segments_near(centre, 300.0)
