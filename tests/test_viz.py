"""Tests for repro.viz (ASCII and SVG rendering)."""

import pytest

from repro.geometry import Point
from repro.viz import AsciiCanvas, SvgCanvas, render_match_ascii, render_match_svg


class TestAsciiCanvas:
    def test_rejects_degenerate_bounds(self):
        with pytest.raises(ValueError):
            AsciiCanvas((0, 0, 0, 10))

    def test_rejects_tiny_canvas(self):
        with pytest.raises(ValueError):
            AsciiCanvas((0, 0, 10, 10), width=1)

    def test_mark_inside(self):
        canvas = AsciiCanvas((0, 0, 100, 100), width=10, height=10)
        canvas.mark(Point(50, 50), "#")
        assert "#" in canvas.render()

    def test_mark_outside_is_noop(self):
        canvas = AsciiCanvas((0, 0, 100, 100), width=10, height=10)
        canvas.mark(Point(500, 500), "#")
        assert "#" not in canvas.render()

    def test_protected_marks_survive(self):
        canvas = AsciiCanvas((0, 0, 100, 100), width=10, height=10, protected="x")
        canvas.mark(Point(50, 50), "x")
        canvas.mark(Point(50, 50), "o")
        assert "x" in canvas.render()
        assert "o" not in canvas.render()

    def test_render_dimensions(self):
        canvas = AsciiCanvas((0, 0, 10, 10), width=20, height=5)
        lines = canvas.render().splitlines()
        assert len(lines) == 5
        assert all(len(line) == 20 for line in lines)

    def test_draw_network(self, tiny_network):
        canvas = AsciiCanvas(tiny_network.bounding_box(), width=60, height=20)
        canvas.draw_network(tiny_network)
        assert canvas.render().count("-") > 50


class TestMatchAscii:
    def test_contains_all_marks(self, tiny_dataset):
        sample = tiny_dataset.samples[0]
        other = tiny_dataset.samples[1]
        art = render_match_ascii(
            tiny_dataset.network,
            sample.truth_path,
            {"L": other.truth_path},
            sample.cellular,
        )
        assert "." in art
        assert "L" in art
        assert "x" in art
        assert "legend" in art

    def test_rejects_multichar_labels(self, tiny_dataset):
        sample = tiny_dataset.samples[0]
        with pytest.raises(ValueError):
            render_match_ascii(
                tiny_dataset.network, sample.truth_path, {"AB": sample.truth_path}
            )


class TestSvg:
    def test_document_structure(self, tiny_network):
        canvas = SvgCanvas(tiny_network.bounding_box())
        canvas.draw_network(tiny_network)
        svg = canvas.render()
        assert svg.startswith("<svg")
        assert svg.rstrip().endswith("</svg>")
        assert svg.count("<polyline") == tiny_network.num_segments

    def test_rejects_degenerate_bounds(self):
        with pytest.raises(ValueError):
            SvgCanvas((0, 0, 0, 10))

    def test_full_match_figure(self, tiny_dataset):
        sample = tiny_dataset.samples[0]
        svg = render_match_svg(
            tiny_dataset.network,
            sample.truth_path,
            {"LHMM": tiny_dataset.samples[1].truth_path},
            trajectory=sample.cellular,
            towers=tiny_dataset.towers,
        )
        assert "<circle" in svg  # samples + towers + legend dots
        assert "LHMM" in svg
        assert "truth" in svg

    def test_save(self, tiny_network, tmp_path):
        canvas = SvgCanvas(tiny_network.bounding_box())
        canvas.draw_network(tiny_network)
        out = tmp_path / "map.svg"
        canvas.save(out)
        assert out.read_text().startswith("<svg")

    def test_text_is_escaped(self, tiny_network):
        canvas = SvgCanvas(tiny_network.bounding_box())
        canvas.text(Point(0, 0), "<script>")
        assert "<script>" not in canvas.render()
        assert "&lt;script&gt;" in canvas.render()
