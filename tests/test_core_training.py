"""Tests for repro.core.training internals."""

import numpy as np
import pytest

from repro.core import LHMM, HetGraphEncoder, ObservationLearner, RelationGraph, TransitionLearner
from repro.core.training import LHMMTrainer, _point_positive_roads
from tests.conftest import tiny_lhmm_config


@pytest.fixture(scope="module")
def trainer_setup(tiny_dataset):
    config = tiny_lhmm_config()
    graph = RelationGraph(tiny_dataset.network, tiny_dataset.towers).build(
        tiny_dataset.train
    )
    encoder = HetGraphEncoder(
        graph, dim=config.embedding_dim, num_layers=config.het_layers, rng=0
    )
    observation = ObservationLearner(
        dim=config.embedding_dim, hidden=config.mlp_hidden, rng=0
    )
    transition = TransitionLearner(
        dim=config.embedding_dim, hidden=config.mlp_hidden, rng=0
    )
    trainer = LHMMTrainer(
        config, graph, encoder, observation, transition, tiny_dataset.engine, rng=0
    )
    return trainer, graph


class TestPositives:
    def test_one_positive_per_point(self, trainer_setup, tiny_dataset):
        _, graph = trainer_setup
        sample = tiny_dataset.train[0]
        pairs = _point_positive_roads(graph, sample)
        assert len(pairs) == len(sample.cellular)
        indices = [i for i, _ in pairs]
        assert indices == list(range(len(sample.cellular)))

    def test_positives_come_from_truth_path(self, trainer_setup, tiny_dataset):
        _, graph = trainer_setup
        sample = tiny_dataset.train[0]
        truth = set(sample.truth_path)
        for _, positive in _point_positive_roads(graph, sample):
            assert positive in truth

    def test_empty_truth_gives_no_pairs(self, trainer_setup, tiny_dataset):
        trainer, graph = trainer_setup
        import dataclasses

        sample = dataclasses.replace(tiny_dataset.train[0], truth_path=[])
        assert _point_positive_roads(graph, sample) == []


class TestSampling:
    def test_negatives_exclude_truth(self, trainer_setup, tiny_dataset):
        trainer, _ = trainer_setup
        sample = tiny_dataset.train[0]
        truth = set(sample.truth_path)
        negatives = trainer._sample_negatives(sample, 0, truth, 5)
        assert len(negatives) <= 5
        assert not truth.intersection(negatives)

    def test_pool_cache_reused(self, trainer_setup, tiny_dataset):
        trainer, _ = trainer_setup
        sample = tiny_dataset.train[1]
        first = trainer._point_pool(sample, 0)
        second = trainer._point_pool(sample, 0)
        assert first is second

    def test_transition_pairs_include_truth_transition(self, trainer_setup, tiny_dataset):
        trainer, _ = trainer_setup
        sample = tiny_dataset.train[0]
        pairs = trainer._sample_transition_pairs(sample, 1, 4)
        assert len(pairs) == 4
        truth = set(sample.truth_path)
        has_truth_pair = any(a in truth and b in truth for a, b in pairs)
        # The true transition is seeded whenever pools contain truth roads.
        if any(seg in truth for seg in trainer._point_pool(sample, 0)[:20]) and any(
            seg in truth for seg in trainer._point_pool(sample, 1)[:20]
        ):
            assert has_truth_pair


class TestStages:
    def test_train_requires_samples(self, trainer_setup):
        trainer, _ = trainer_setup
        with pytest.raises(ValueError):
            trainer.train([])

    def test_embeddings_frozen_after_stage_one(self, tiny_dataset):
        matcher = LHMM(tiny_lhmm_config(), rng=5).fit(tiny_dataset)
        assert matcher.node_embeddings is not None

    def test_fusion_data_consistency(self, trainer_setup, tiny_dataset):
        trainer, _ = trainer_setup
        trainer._freeze_embeddings()
        features, labels = trainer._collect_observation_fusion_data(
            tiny_dataset.train[:3]
        )
        assert features is not None
        assert features.shape[0] == labels.shape[0]
        # implicit prob + 4 explicit features
        assert features.shape[1] == 5
        assert set(np.unique(labels)) <= {0.0, 1.0}

    def test_transition_fusion_targets_are_ratios(self, trainer_setup, tiny_dataset):
        trainer, _ = trainer_setup
        trainer._freeze_embeddings()
        features, targets = trainer._collect_transition_fusion_data(
            tiny_dataset.train[:3]
        )
        assert features is not None
        assert np.all(targets >= 0.0) and np.all(targets <= 1.0)
        # implicit + 3 explicit transition features
        assert features.shape[1] == 4


class TestEMAShadowWeights:
    """Determinism invariants of the trainer's EMA shadow weight set."""

    def test_shadow_of_frozen_weights_equals_weights_exactly(self, trainer_setup):
        """For parameters the optimizer never moved, the shadow must stay
        *bitwise* equal to the raw weight — ``(1 - d) * (w - s)`` is exactly
        zero when ``w == s`` — no matter how many updates run."""
        trainer, _ = trainer_setup
        for _ in range(50):
            trainer._ema_update()
        params = dict(trainer._tracked_parameters())
        shadows = trainer.ema_state()
        assert set(shadows) == set(params)
        for name, param in params.items():
            assert shadows[name].tobytes() == param.data.tobytes(), name

    def test_shadow_diverges_from_moving_weights(self, tiny_dataset):
        """After a real fit, the shadow is a genuine second weight set."""
        matcher = LHMM(tiny_lhmm_config(), rng=5).fit(tiny_dataset)
        ema = matcher._ema_arrays
        assert ema is not None
        assert set(ema) == {
            "node_embeddings",
            *(k for k in ema if k.startswith(("obs.", "trans."))),
        }
        assert not np.array_equal(ema["node_embeddings"], matcher.node_embeddings)

    def test_ema_consumes_no_rng(self, tiny_dataset):
        """The raw weights are invariant under the decay setting: the EMA
        update reads the RNG stream exactly zero times."""
        config_a = tiny_lhmm_config()
        config_b = tiny_lhmm_config()
        config_b.ema_decay = 0.5
        a = LHMM(config_a, rng=5).fit(tiny_dataset)
        b = LHMM(config_b, rng=5).fit(tiny_dataset)
        assert a.node_embeddings.tobytes() == b.node_embeddings.tobytes()
        # ... while the shadow set itself does honour the decay.
        assert (
            a._ema_arrays["node_embeddings"].tobytes()
            != b._ema_arrays["node_embeddings"].tobytes()
        )

    @pytest.mark.parametrize("decay", [0.0, 1.0, -0.1, 1.5])
    def test_ema_decay_is_validated(self, decay):
        config = tiny_lhmm_config()
        config.ema_decay = decay
        with pytest.raises(ValueError, match="ema_decay"):
            config.validate()
