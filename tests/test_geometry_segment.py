"""Tests for repro.geometry.segment."""

import pytest
from hypothesis import given, strategies as st

from repro.geometry import (
    Point,
    Polyline,
    point_to_polyline_distance,
    point_to_segment_distance,
    project_point_to_segment,
)

coord = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False)


class TestProjection:
    def test_projects_inside_segment(self):
        foot, t = project_point_to_segment(Point(5, 5), Point(0, 0), Point(10, 0))
        assert (foot.x, foot.y) == (5.0, 0.0)
        assert t == pytest.approx(0.5)

    def test_clamps_before_start(self):
        foot, t = project_point_to_segment(Point(-3, 2), Point(0, 0), Point(10, 0))
        assert (foot.x, foot.y) == (0.0, 0.0)
        assert t == 0.0

    def test_clamps_after_end(self):
        foot, t = project_point_to_segment(Point(15, 2), Point(0, 0), Point(10, 0))
        assert (foot.x, foot.y) == (10.0, 0.0)
        assert t == 1.0

    def test_degenerate_segment(self):
        foot, t = project_point_to_segment(Point(1, 1), Point(2, 2), Point(2, 2))
        assert (foot.x, foot.y) == (2.0, 2.0)
        assert t == 0.0

    def test_distance_matches_projection(self):
        d = point_to_segment_distance(Point(5, 7), Point(0, 0), Point(10, 0))
        assert d == pytest.approx(7.0)

    @given(coord, coord, coord, coord, coord, coord)
    def test_projection_is_nearest_of_samples(self, px, py, ax, ay, bx, by):
        p, a, b = Point(px, py), Point(ax, ay), Point(bx, by)
        best = point_to_segment_distance(p, a, b)
        for i in range(11):
            t = i / 10.0
            sample = Point(a.x + t * (b.x - a.x), a.y + t * (b.y - a.y))
            assert best <= p.distance_to(sample) + 1e-6


class TestPolyline:
    def make(self) -> Polyline:
        return Polyline([Point(0, 0), Point(10, 0), Point(10, 10)])

    def test_requires_two_points(self):
        with pytest.raises(ValueError):
            Polyline([Point(0, 0)])

    def test_length(self):
        assert self.make().length == pytest.approx(20.0)

    def test_start_end(self):
        line = self.make()
        assert line.start == Point(0, 0)
        assert line.end == Point(10, 10)

    def test_interpolate_midway(self):
        p = self.make().interpolate(10.0)
        assert (p.x, p.y) == pytest.approx((10.0, 0.0))

    def test_interpolate_clamps(self):
        line = self.make()
        assert line.interpolate(-5).as_tuple() == (0.0, 0.0)
        assert line.interpolate(100).as_tuple() == (10.0, 10.0)

    def test_interpolate_within_second_leg(self):
        p = self.make().interpolate(15.0)
        assert (p.x, p.y) == pytest.approx((10.0, 5.0))

    def test_project_returns_offset(self):
        foot, dist, offset = self.make().project(Point(10, 4))
        assert (foot.x, foot.y) == pytest.approx((10.0, 4.0))
        assert dist == pytest.approx(0.0)
        assert offset == pytest.approx(14.0)

    def test_project_off_line(self):
        _, dist, _ = self.make().project(Point(5, 3))
        assert dist == pytest.approx(3.0)

    def test_turn_angle_sum_right_angle(self):
        assert self.make().turn_angle_sum_deg() == pytest.approx(90.0)

    def test_turn_angle_sum_straight_line(self):
        line = Polyline([Point(0, 0), Point(5, 0), Point(10, 0)])
        assert line.turn_angle_sum_deg() == pytest.approx(0.0)

    def test_heading(self):
        assert Polyline([Point(0, 0), Point(0, 5)]).heading_deg() == pytest.approx(0.0)

    def test_point_to_polyline_distance(self):
        assert point_to_polyline_distance(Point(5, -2), self.make()) == pytest.approx(2.0)

    @given(st.floats(0, 20, allow_nan=False))
    def test_interpolated_points_lie_on_line(self, offset):
        line = self.make()
        p = line.interpolate(offset)
        assert point_to_polyline_distance(p, line) < 1e-6
