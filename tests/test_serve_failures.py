"""Serve-layer failure paths: status mapping, per-item error slots,
degraded health, hot-reload canary rollback.  All in-process —
pool/worker-killing scenarios are in ``test_chaos.py``."""

import math

import pytest

from repro.nn.serialization import write_artifact
from repro.serve import (
    MatchingClient,
    MatchingServer,
    ServeClientError,
    ServeConfig,
)
from repro.testing import faults


@pytest.fixture()
def server(trained_lhmm):
    config = ServeConfig(port=0, batch_window_ms=5.0)
    with MatchingServer(trained_lhmm, config) as running:
        yield running


@pytest.fixture()
def client(server):
    return MatchingClient(server.host, server.port)


def _points(sample):
    return [
        {"x": p.position.x, "y": p.position.y, "t": p.timestamp, "tower_id": p.tower_id}
        for p in sample.cellular.points
    ]


class TestStatusMapping:
    def test_empty_points_is_400(self, client):
        with pytest.raises(ServeClientError) as excinfo:
            client._request("POST", "/v1/match", {"points": []})
        assert excinfo.value.status == 400

    def test_non_finite_coordinate_is_400(self, client):
        # Python's json emits/parses bare NaN; the protocol layer must
        # refuse it before it can poison a batch.
        with pytest.raises(ServeClientError) as excinfo:
            client._request(
                "POST", "/v1/match", {"points": [{"x": math.nan, "y": 0.0, "t": 0.0}]}
            )
        assert excinfo.value.status == 400
        assert "finite" in excinfo.value.payload["error"]

    def test_out_of_bounds_point_is_422_with_field(self, client):
        with pytest.raises(ServeClientError) as excinfo:
            client._request(
                "POST",
                "/v1/match",
                {"points": [{"x": 1e7, "y": 1e7, "t": 0.0}]},
            )
        assert excinfo.value.status == 422
        assert excinfo.value.payload["code"] == "invalid_trajectory"
        assert "points[0]" in excinfo.value.payload["error"]

    def test_bad_trajectory_in_batch_is_422_naming_its_index(
        self, client, tiny_dataset
    ):
        good = _points(tiny_dataset.test[0])
        bad = [{"x": 1e7, "y": 1e7, "t": 0.0}]
        with pytest.raises(ServeClientError) as excinfo:
            client._request("POST", "/v1/match", {"trajectories": [good, bad]})
        assert excinfo.value.status == 422
        assert "trajectories[1]" in excinfo.value.payload["error"]


class TestPerItemFaultIsolation:
    def test_one_failing_trajectory_does_not_void_the_batch(
        self, client, trained_lhmm, tiny_dataset
    ):
        samples = tiny_dataset.test[:3]
        trained_lhmm.degradation_enabled = False
        try:
            # The "match" fault point sits outside the cascade, so
            # trajectory 1 fails outright while 0 and 2 succeed.
            with faults.armed("match", "raise", trajectory_id=1):
                results = client._request(
                    "POST",
                    "/v1/match",
                    {"trajectories": [_points(s) for s in samples]},
                )["results"]
        finally:
            trained_lhmm.degradation_enabled = True
        assert results[1]["error"]["code"] == "match_failure"
        expected = [trained_lhmm.match(s.cellular).path for s in samples]
        assert results[0]["path"] == expected[0]
        assert results[2]["path"] == expected[2]
        metrics = client.metrics()
        assert metrics["counters"]["match_failed_total"] >= 1
        assert metrics["counters"]["trajectories_matched"] >= 2

    def test_single_trajectory_failure_is_500_and_server_survives(
        self, client, trained_lhmm, tiny_dataset
    ):
        sample = tiny_dataset.test[0]
        trained_lhmm.degradation_enabled = False
        try:
            with faults.armed("match", "raise", trajectory_id=0):
                with pytest.raises(ServeClientError) as excinfo:
                    client._request("POST", "/v1/match", {"points": _points(sample)})
        finally:
            trained_lhmm.degradation_enabled = True
        assert excinfo.value.status == 500
        assert excinfo.value.payload["code"] == "match_failure"
        # The daemon answered a failure, it did not die on it.
        assert client._request("POST", "/v1/match", {"points": _points(sample)})[
            "result"
        ]["path"] == trained_lhmm.match(sample.cellular).path


class TestDegradedHealth:
    def test_healthy_server_reports_ok_with_zeroed_counters(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["degraded"] == {
            "match_degraded_total": 0,
            "match_failed_total": 0,
            "worker_respawns_total": 0,
        }
        counters = client.metrics()["counters"]
        assert counters["match_degraded_total"] == 0
        assert counters["worker_respawns_total"] == 0

    def test_degraded_match_flips_health_and_counts(
        self, client, trained_lhmm, tiny_dataset
    ):
        sample = tiny_dataset.test[0]
        with faults.armed("match.learned", "raise"):
            result = client._request(
                "POST", "/v1/match", {"points": _points(sample)}
            )["result"]
        assert result["provenance"] == "heuristic_hmm"
        assert result["path"]
        health = client.health()
        assert health["status"] == "degraded"
        assert health["degraded"]["match_degraded_total"] >= 1
        assert client.metrics()["counters"]["match_degraded_total"] >= 1

    def test_normal_results_carry_lhmm_provenance(self, client, tiny_dataset):
        result = client._request(
            "POST", "/v1/match", {"points": _points(tiny_dataset.test[0])}
        )["result"]
        assert result["provenance"] == "lhmm"


@pytest.fixture(scope="module")
def model_artifact(tmp_path_factory, trained_lhmm):
    path = tmp_path_factory.mktemp("reload") / "model.npz"
    trained_lhmm.save(path)
    return path


@pytest.fixture()
def reload_server(trained_lhmm, tiny_dataset, model_artifact):
    config = ServeConfig(port=0, batch_window_ms=5.0)
    with MatchingServer(
        trained_lhmm,
        config,
        model_path=str(model_artifact),
        dataset=tiny_dataset,
    ) as running:
        yield running


@pytest.fixture()
def reload_client(reload_server):
    return MatchingClient(reload_server.host, reload_server.port)


class TestModelReload:
    def _model_counters(self, client):
        counters = client.metrics()["counters"]
        return {k: v for k, v in counters.items() if k.startswith("model_")}

    def test_successful_reload_bumps_generation(
        self, reload_server, reload_client, model_artifact, tiny_dataset
    ):
        info = reload_client.reload_model()
        assert info["status"] == "reloaded"
        assert info["generation"] == 2
        assert info["model_path"] == str(model_artifact)
        assert info["canary_trajectories"] == reload_server.DEFAULT_CANARY_COUNT
        assert self._model_counters(reload_client) == {
            "model_generation": 2,
            "model_reloads_total": 1,
            "model_reload_failures_total": 0,
        }
        # The swapped-in model answers requests.
        result = reload_client.match([tiny_dataset.test[0].cellular])[0]
        assert result["path"]

    def test_healthz_reports_the_model_section(self, reload_client):
        health = reload_client.health()
        assert health["model"] == {
            "model_generation": 1,
            "model_reloads_total": 0,
            "model_reload_failures_total": 0,
            "ab_live": False,
        }

    def test_missing_artifact_is_refused_and_old_model_serves(
        self, reload_server, reload_client, tmp_path, tiny_dataset, trained_lhmm
    ):
        with pytest.raises(ServeClientError) as excinfo:
            reload_client.reload_model(str(tmp_path / "nope.npz"))
        assert excinfo.value.status == 500
        assert excinfo.value.payload["code"] == "model_reload_failed"
        assert reload_server.matcher is trained_lhmm
        assert self._model_counters(reload_client) == {
            "model_generation": 1,
            "model_reloads_total": 0,
            "model_reload_failures_total": 1,
        }
        sample = tiny_dataset.test[0]
        result = reload_client.match([sample.cellular])[0]
        assert result["path"] == trained_lhmm.match(sample.cellular).path

    def test_corrupt_artifact_is_500_artifact_corrupt(
        self, reload_server, reload_client, tmp_path, model_artifact
    ):
        blob = bytearray(model_artifact.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        bad = tmp_path / "corrupt.npz"
        bad.write_bytes(bytes(blob))
        with pytest.raises(ServeClientError) as excinfo:
            reload_client.reload_model(str(bad))
        assert excinfo.value.status == 500
        assert excinfo.value.payload["code"] == "artifact_corrupt"
        assert self._model_counters(reload_client)[
            "model_reload_failures_total"
        ] == 1
        assert reload_server.model_generation == 1

    def test_incompatible_artifact_is_422(
        self, reload_server, reload_client, tmp_path
    ):
        import numpy as np

        wrong = tmp_path / "wrong-kind.npz"
        write_artifact(wrong, {"w": np.zeros(3)}, kind="module-state")
        with pytest.raises(ServeClientError) as excinfo:
            reload_client.reload_model(str(wrong))
        assert excinfo.value.status == 422
        assert excinfo.value.payload["code"] == "artifact_incompatible"
        assert reload_server.model_generation == 1

    def test_failed_canary_keeps_the_old_model_serving(
        self, reload_server, reload_client, trained_lhmm, tiny_dataset
    ):
        """The candidate loads fine but cannot match the canary corpus:
        the swap is refused, the failure is counted, and the resident
        model keeps answering."""
        with faults.armed("match", "raise"):
            with pytest.raises(ServeClientError) as excinfo:
                reload_client.reload_model()
        assert excinfo.value.status == 500
        assert excinfo.value.payload["code"] == "model_reload_failed"
        assert "canary" in excinfo.value.payload["error"]
        assert reload_server.matcher is trained_lhmm
        assert reload_server.model_generation == 1
        assert self._model_counters(reload_client) == {
            "model_generation": 1,
            "model_reloads_total": 0,
            "model_reload_failures_total": 1,
        }
        sample = tiny_dataset.test[0]
        result = reload_client.match([sample.cellular])[0]
        assert result["path"] == trained_lhmm.match(sample.cellular).path

    def test_server_without_model_path_refuses_reload(self, client):
        # The plain `server` fixture has no model_path/dataset wired in.
        with pytest.raises(ServeClientError) as excinfo:
            client.reload_model()
        assert excinfo.value.status == 500
        assert excinfo.value.payload["code"] == "model_reload_failed"
