"""Live A/B traffic splitting, end to end, on both deployment shapes.

Two model generations serve simultaneously — the raw-weight champion and
an EMA-weight challenger of the same artifact — with the deterministic
key-hash split from :mod:`repro.serve.ab`.  Every assertion is exact,
never statistical: the expected assignment of each trajectory is
recomputed client-side from its canonical payload, each response is
compared byte-identically against the generation that must have produced
it, and the per-generation ``/metrics`` counters must sum to exactly the
number of admitted trajectories.  ``promote`` atomically makes the
challenger the sole serving generation; ``abort`` drops it without a
trace.  The same contract is proven against the threaded
:class:`MatchingServer` and the multi-process cluster gateway.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.core import LHMM
from repro.datasets import save_dataset
from repro.serve import (
    ClusterConfig,
    ClusterServer,
    MatchingClient,
    MatchingServer,
    ServeClientError,
    ServeConfig,
    ShardRegistry,
    ShardSpec,
    canonical_key,
    routes_to_challenger,
)
from repro.serve import protocol
from repro.serve.shm import leaked_segments


@pytest.fixture(scope="module")
def model_artifact(tmp_path_factory, trained_lhmm):
    path = tmp_path_factory.mktemp("ab") / "model.npz"
    trained_lhmm.save(path)
    return path


@pytest.fixture(scope="module")
def ema_matcher(model_artifact, tiny_dataset):
    """The challenger generation: the artifact's EMA shadow weight set."""
    return LHMM.load(model_artifact, tiny_dataset, weights="ema")


def _assigned(samples, split):
    """Expected challenger assignment per sample — exact, from the key hash."""
    return [
        routes_to_challenger(
            canonical_key(protocol.encode_trajectory(s.cellular)), split
        )
        for s in samples
    ]


def _expect(samples, to_challenger, champion, challenger):
    return [
        protocol.encode_match_result(
            (challenger if hit else champion).match(s.cellular)
        )
        for s, hit in zip(samples, to_challenger)
    ]


def _generation_counters(metrics_ab):
    """``role -> counters`` from one region/server A/B snapshot."""
    return {g["role"]: g for g in metrics_ab["generations"].values()}


# --------------------------------------------------------------------------
# Threaded server
# --------------------------------------------------------------------------


@pytest.fixture()
def server(trained_lhmm, tiny_dataset, model_artifact):
    config = ServeConfig(port=0, batch_window_ms=5.0)
    running = MatchingServer(
        trained_lhmm,
        config,
        model_path=str(model_artifact),
        dataset=tiny_dataset,
    )
    with running:
        yield running


@pytest.fixture()
def client(server):
    return MatchingClient(server.host, server.port, timeout=60.0)


class TestThreadedAB:
    def test_split_is_exact_and_both_generations_bit_identical(
        self, client, trained_lhmm, ema_matcher, tiny_dataset, model_artifact
    ):
        info = client.start_ab(split=0.5, weights="ema")
        assert info["status"] == "ab_started"
        assert info["champion_generation"] == 1
        assert info["challenger_generation"] == 2
        assert info["challenger_model"] == str(model_artifact)
        assert info["challenger_weights"] == "ema"
        assert client.health()["model"]["ab_live"] is True

        samples = tiny_dataset.samples[:12]
        to_challenger = _assigned(samples, 0.5)
        assert any(to_challenger) and not all(to_challenger), (
            "fixture corpus must exercise both generations at split=0.5"
        )
        served = client.match([s.cellular for s in samples])
        assert served == _expect(samples, to_challenger, trained_lhmm, ema_matcher)

        ab = client.metrics()["ab"]
        assert ab["split"] == 0.5
        roles = _generation_counters(ab)
        assert roles["challenger"]["requests"] == sum(to_challenger)
        assert roles["champion"]["requests"] == len(samples) - sum(to_challenger)
        assert roles["champion"]["failed"] == roles["challenger"]["failed"] == 0
        # Exactness of the sum is the no-dropped-requests claim.
        total = roles["champion"]["requests"] + roles["challenger"]["requests"]
        assert total == len(samples)

    def test_promote_makes_challenger_the_sole_generation(
        self, client, ema_matcher, tiny_dataset
    ):
        client.start_ab(split=0.3, weights="ema")
        samples = tiny_dataset.samples[:8]
        client.match([s.cellular for s in samples])

        info = client.promote_ab()
        assert info["status"] == "promoted"
        assert info["generation"] == 2
        snapshot = info["ab"]
        roles = _generation_counters(snapshot)
        assert (
            roles["champion"]["requests"] + roles["challenger"]["requests"]
            == len(samples)
        )

        health = client.health()
        assert health["model"]["ab_live"] is False
        assert health["model"]["model_generation"] == 2
        # Every post-promote response is the challenger's, bit-identical.
        served = client.match([s.cellular for s in samples])
        assert served == _expect(samples, [True] * len(samples), None, ema_matcher)
        counters = client.metrics()["counters"]
        assert counters["ab_promotions_total"] == 1
        assert "ab" not in client.metrics()

    def test_abort_restores_the_champion_untouched(
        self, client, trained_lhmm, tiny_dataset
    ):
        client.start_ab(split=0.9, weights="ema")
        info = client.abort_ab()
        assert info["status"] == "aborted"
        assert info["generation"] == 1
        samples = tiny_dataset.samples[:6]
        served = client.match([s.cellular for s in samples])
        assert served == _expect(samples, [False] * len(samples), trained_lhmm, None)
        assert client.health()["model"]["model_generation"] == 1
        assert client.metrics()["counters"]["ab_aborts_total"] == 1

    def test_lifecycle_refusals(self, client):
        with pytest.raises(ServeClientError) as excinfo:
            client.promote_ab()
        assert excinfo.value.status == 409
        with pytest.raises(ServeClientError) as excinfo:
            client.abort_ab()
        assert excinfo.value.status == 409

        client.start_ab(split=0.5)
        with pytest.raises(ServeClientError) as excinfo:
            client.start_ab(split=0.5)
        assert excinfo.value.status == 409
        # A hot reload must not yank the champion from under a live test.
        with pytest.raises(ServeClientError) as excinfo:
            client.reload_model()
        assert excinfo.value.status == 409
        client.abort_ab()

    @pytest.mark.parametrize("split", [0, -0.5, 1.5, "half", True])
    def test_invalid_split_is_rejected(self, client, split):
        with pytest.raises(ServeClientError) as excinfo:
            client.start_ab(split=split)
        assert excinfo.value.status == 400
        assert client.health()["model"]["ab_live"] is False

    def test_invalid_weights_is_rejected(self, client):
        with pytest.raises(ServeClientError) as excinfo:
            client.start_ab(weights="fp16")
        assert excinfo.value.status == 400


# --------------------------------------------------------------------------
# Cluster gateway
# --------------------------------------------------------------------------


@pytest.fixture(scope="module")
def cluster_paths(tmp_path_factory, tiny_dataset, trained_lhmm):
    root = tmp_path_factory.mktemp("ab_cluster")
    dataset_path = root / "tiny.json.gz"
    model_path = root / "model.npz"
    save_dataset(tiny_dataset, dataset_path)
    trained_lhmm.save(model_path)
    return str(dataset_path), str(model_path)


@pytest.fixture()
def cluster(cluster_paths):
    dataset_path, model_path = cluster_paths
    registry = ShardRegistry.publish(
        [ShardSpec(region="default", dataset=dataset_path, model=model_path)]
    )
    server = ClusterServer(
        registry, ClusterConfig(port=0, num_workers=2, cache_size=64)
    )
    with server:
        yield server
    assert leaked_segments() == []


@pytest.fixture()
def cluster_client(cluster):
    return MatchingClient(cluster.host, cluster.port, timeout=60.0)


class TestClusterAB:
    def test_two_generations_serve_simultaneously_then_promote(
        self, cluster_client, trained_lhmm, ema_matcher, tiny_dataset,
        cluster_paths,
    ):
        client = cluster_client
        info = client.start_ab(split=0.5, weights="ema")
        assert info["region"] == "default"
        assert info["champion_generation"] == 1
        assert info["challenger_generation"] == 2
        assert info["challenger_weights"] == "ema"
        assert info["canary_checked"] > 0
        assert client.health()["ab_live"] == ["default"]

        samples = tiny_dataset.samples[:12]
        to_challenger = _assigned(samples, 0.5)
        assert any(to_challenger) and not all(to_challenger)
        served = client.match([s.cellular for s in samples])
        assert served == _expect(samples, to_challenger, trained_lhmm, ema_matcher)

        metrics = client.metrics()
        ab = metrics["ab"]["default"]
        assert ab["split"] == 0.5
        roles = _generation_counters(ab)
        assert roles["challenger"]["requests"] == sum(to_challenger)
        assert (
            roles["champion"]["requests"] + roles["challenger"]["requests"]
            == len(samples)
        )
        assert metrics["counters"]["ab_starts_total"] == 1

        # Promote: the challenger becomes the fleet's sole generation.
        info = client.promote_ab()
        assert info["generation"] == 2
        assert info["workers_swapped"] == 2
        assert info["workers_failed"] == 0
        assert client.health()["ab_live"] == []
        # The same payloads must now come back as the challenger's
        # results for EVERY trajectory — this also proves the response
        # cache was invalidated at the generation swap (a stale champion
        # entry would be bit-different here).
        served = client.match([s.cellular for s in samples])
        assert served == _expect(samples, [True] * len(samples), None, ema_matcher)
        counters = client.metrics()["counters"]
        assert counters["ab_promotions_total"] == 1
        assert counters["ab_challenger_deaths_total"] == 0

    def test_abort_drops_the_challenger_without_a_trace(
        self, cluster_client, trained_lhmm, tiny_dataset
    ):
        client = cluster_client
        client.start_ab(split=0.9, weights="ema")
        info = client.abort_ab()
        assert info["region"] == "default"
        assert info["generation"] == 1
        assert client.health()["ab_live"] == []
        samples = tiny_dataset.samples[:6]
        served = client.match([s.cellular for s in samples])
        assert served == _expect(samples, [False] * len(samples), trained_lhmm, None)
        snapshot = client.metrics()
        assert snapshot["counters"]["ab_aborts_total"] == 1
        assert "ab" not in snapshot

    def test_refusals_and_rollout_mutual_exclusion(
        self, cluster_client, cluster_paths
    ):
        client = cluster_client
        _, model_path = cluster_paths
        with pytest.raises(ServeClientError) as excinfo:
            client.promote_ab()
        assert excinfo.value.status == 409
        with pytest.raises(ServeClientError) as excinfo:
            client.abort_ab()
        assert excinfo.value.status == 409

        client.start_ab(split=0.25)
        with pytest.raises(ServeClientError) as excinfo:
            client.start_ab(split=0.25)
        assert excinfo.value.status == 409
        # Rollouts and A/B tests both retarget the fleet; never both.
        with pytest.raises(ServeClientError) as excinfo:
            client.rollout(model=model_path)
        assert excinfo.value.status == 409
        client.abort_ab()
        # With the test resolved, the rollout path is free again.
        info = client.rollout(model=model_path)
        assert info["workers_failed"] == 0

    def test_challenger_death_fails_over_to_the_champion(
        self, cluster, cluster_client, trained_lhmm, tiny_dataset
    ):
        """SIGKILL the challenger worker: traffic keeps flowing, counters
        keep summing, and every response is the champion's bit-identical
        answer."""
        client = cluster_client
        client.start_ab(split=1.0, weights="ema")  # all traffic on the challenger
        record = cluster._ab["default"]
        os.kill(record.handle.process.pid, signal.SIGKILL)
        deadline = time.monotonic() + 10.0
        while record.handle.alive and time.monotonic() < deadline:
            time.sleep(0.05)
        assert not record.handle.alive

        samples = tiny_dataset.samples[:8]
        served = client.match([s.cellular for s in samples])
        assert served == _expect(samples, [False] * len(samples), trained_lhmm, None)

        metrics = client.metrics()
        assert metrics["counters"]["ab_challenger_deaths_total"] == 1
        roles = _generation_counters(metrics["ab"]["default"])
        # Failover accounting: every admitted trajectory landed on the
        # champion, none vanished.
        assert roles["champion"]["requests"] == len(samples)
        assert roles["challenger"]["requests"] == 0
        client.abort_ab()
