"""Tests for repro.cellular.tower."""

import pytest

from repro.cellular import CellTower, TowerField, TowerPlacementConfig, place_towers
from repro.geometry import Point


class TestTowerField:
    def make_field(self) -> TowerField:
        return TowerField(
            [
                CellTower(0, Point(0, 0)),
                CellTower(1, Point(1000, 0)),
                CellTower(2, Point(0, 1000)),
            ]
        )

    def test_requires_towers(self):
        with pytest.raises(ValueError):
            TowerField([])

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            TowerField([CellTower(0, Point(0, 0)), CellTower(0, Point(1, 1))])

    def test_len_iter_lookup(self):
        field = self.make_field()
        assert len(field) == 3
        assert {t.tower_id for t in field} == {0, 1, 2}
        assert field.tower(1).location == Point(1000, 0)
        assert field.location(2) == Point(0, 1000)

    def test_towers_within(self):
        field = self.make_field()
        assert field.towers_within(Point(0, 0), 1200) == [0, 1, 2]
        assert field.towers_within(Point(0, 0), 500) == [0]

    def test_nearest(self):
        field = self.make_field()
        assert field.nearest(Point(900, 100), count=1) == [1]
        assert len(field.nearest(Point(0, 0), count=3)) == 3


class TestPlacement:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            TowerPlacementConfig(base_spacing_m=-1).validate()
        with pytest.raises(ValueError):
            TowerPlacementConfig(spacing_gradient=-0.5).validate()
        with pytest.raises(ValueError):
            TowerPlacementConfig(candidate_factor=0).validate()

    def test_placement_respects_min_spacing(self, tiny_network, tiny_towers):
        config = TowerPlacementConfig(base_spacing_m=350.0, spacing_gradient=1.0)
        towers = list(tiny_towers)
        for i, a in enumerate(towers):
            for b in towers[i + 1 :]:
                # The *central* exclusion radius lower-bounds all spacings.
                assert a.location.distance_to(b.location) >= config.base_spacing_m * 0.99

    def test_placement_is_deterministic(self, tiny_network):
        a = place_towers(tiny_network, rng=3)
        b = place_towers(tiny_network, rng=3)
        assert len(a) == len(b)
        assert all(a.location(t.tower_id) == b.location(t.tower_id) for t in a)

    def test_placement_covers_city(self, tiny_network, tiny_towers):
        # Every intersection should have a tower within a few kilometres.
        for node in tiny_network.nodes.values():
            nearest = tiny_towers.nearest(node, count=1)
            assert tiny_towers.location(nearest[0]).distance_to(node) < 4000.0

    def test_density_gradient(self):
        from repro.network import CityConfig, generate_city_network

        net = generate_city_network(
            CityConfig(grid_rows=20, grid_cols=20, block_size_m=250.0), rng=2
        )
        towers = place_towers(
            net, TowerPlacementConfig(base_spacing_m=400.0, spacing_gradient=3.0), rng=2
        )
        min_x, min_y, max_x, max_y = net.bounding_box()
        centre = Point((min_x + max_x) / 2, (min_y + max_y) / 2)
        radius = (max_x - min_x) / 2
        inner = [t for t in towers if t.location.distance_to(centre) < radius * 0.4]
        outer = [t for t in towers if t.location.distance_to(centre) > radius * 0.7]
        inner_area = 3.14159 * (radius * 0.4) ** 2
        outer_area = (2 * radius) ** 2 - 3.14159 * (radius * 0.7) ** 2
        assert len(inner) / inner_area > len(outer) / max(outer_area, 1.0)
