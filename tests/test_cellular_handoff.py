"""Tests for repro.cellular.handoff."""

import numpy as np
import pytest

from repro.cellular import CellTower, HandoffConfig, HandoffModel, TowerField
from repro.geometry import Point


def two_tower_field() -> TowerField:
    return TowerField([CellTower(0, Point(0, 0)), CellTower(1, Point(2000, 0))])


class TestConfig:
    def test_defaults_validate(self):
        HandoffConfig().validate()

    def test_invalid_exponent(self):
        with pytest.raises(ValueError):
            HandoffConfig(path_loss_exponent=0).validate()

    def test_invalid_correlation(self):
        with pytest.raises(ValueError):
            HandoffConfig(shadow_correlation=1.0).validate()

    def test_invalid_sigma(self):
        with pytest.raises(ValueError):
            HandoffConfig(shadow_sigma_db=-1).validate()


class TestHandoff:
    def test_connects_to_near_tower_without_fading(self):
        config = HandoffConfig(shadow_sigma_db=0.0, hysteresis_db=0.0)
        model = HandoffModel(two_tower_field(), config, rng=0)
        assert model.observe(Point(100, 0)) == 0
        assert model.observe(Point(1900, 0)) == 1

    def test_hysteresis_keeps_serving_cell(self):
        config = HandoffConfig(shadow_sigma_db=0.0, hysteresis_db=30.0)
        model = HandoffModel(two_tower_field(), config, rng=0)
        assert model.observe(Point(100, 0)) == 0
        # Slightly past the midpoint: tower 1 is better but not by 30 dB.
        assert model.observe(Point(1100, 0)) == 0

    def test_reset_clears_serving_cell(self):
        config = HandoffConfig(shadow_sigma_db=0.0, hysteresis_db=30.0)
        model = HandoffModel(two_tower_field(), config, rng=0)
        model.observe(Point(100, 0))
        model.reset()
        assert model.observe(Point(1900, 0)) == 1

    def test_positioning_error_distribution(self, tiny_towers):
        """Errors should mostly fall in the paper's 0.1-3 km band."""
        model = HandoffModel(tiny_towers, rng=0)
        rng = np.random.default_rng(1)
        errors = []
        for _ in range(200):
            p = Point(float(rng.uniform(-800, 800)), float(rng.uniform(-800, 800)))
            tower = model.observe(p)
            errors.append(tiny_towers.location(tower).distance_to(p))
        errors = np.array(errors)
        assert np.median(errors) > 50.0
        assert np.percentile(errors, 95) < 4000.0

    def test_fading_is_temporally_correlated(self):
        config = HandoffConfig(shadow_sigma_db=8.0, shadow_correlation=0.95)
        field = two_tower_field()
        model = HandoffModel(field, config, rng=0)
        # With heavy correlation the connected tower should not flip-flop
        # every single step while the phone stands still.
        flips = 0
        previous = model.observe(Point(1000, 0))
        for _ in range(50):
            current = model.observe(Point(1000, 0))
            if current != previous:
                flips += 1
            previous = current
        assert flips < 25

    def test_deterministic_given_seed(self):
        field = two_tower_field()
        a = HandoffModel(field, rng=5)
        b = HandoffModel(field, rng=5)
        points = [Point(x, 50.0) for x in range(0, 2000, 100)]
        assert [a.observe(p) for p in points] == [b.observe(p) for p in points]
