"""Tests for repro.nn.functional."""

import numpy as np
import pytest

from repro.nn import Tensor
from repro.nn.functional import (
    dropout_mask,
    embedding_lookup,
    log_softmax,
    segment_mean,
    softmax,
)
from tests.test_nn_tensor import check_gradients, numeric_grad


class TestSoftmax:
    def test_rows_sum_to_one(self):
        x = Tensor(np.random.default_rng(0).normal(size=(4, 5)))
        out = softmax(x, axis=-1).numpy()
        assert np.allclose(out.sum(axis=-1), 1.0)
        assert np.all(out >= 0)

    def test_shift_invariance(self):
        x = np.random.default_rng(1).normal(size=(3, 4))
        a = softmax(Tensor(x)).numpy()
        b = softmax(Tensor(x + 1000.0)).numpy()
        assert np.allclose(a, b)

    def test_gradient(self):
        check_gradients(lambda a: (softmax(a, axis=-1) ** 2.0).sum(), (3, 4))

    def test_log_softmax_matches_log_of_softmax(self):
        x = Tensor(np.random.default_rng(2).normal(size=(2, 6)))
        assert np.allclose(log_softmax(x).numpy(), np.log(softmax(x).numpy()))

    def test_log_softmax_gradient(self):
        check_gradients(lambda a: (log_softmax(a, axis=-1) * log_softmax(a, axis=-1)).sum(), (2, 3))


class TestSegmentMean:
    def test_values(self):
        x = Tensor(np.array([[1.0], [3.0], [10.0]]))
        out = segment_mean(x, np.array([0, 0, 2]), 3).numpy()
        assert np.allclose(out[:, 0], [2.0, 0.0, 10.0])

    def test_empty_segments_are_zero(self):
        x = Tensor(np.ones((2, 3)))
        out = segment_mean(x, np.array([1, 1]), 4).numpy()
        assert np.allclose(out[0], 0)
        assert np.allclose(out[2], 0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            segment_mean(Tensor(np.ones((3, 2))), np.array([0, 1]), 2)

    def test_gradient(self):
        ids = np.array([0, 0, 1, 2, 2, 2])

        def build(a):
            return (segment_mean(a, ids, 4) ** 2.0).sum()

        check_gradients(build, (6, 2))


class TestEmbeddingLookup:
    def test_selects_rows(self):
        w = Tensor(np.arange(12.0).reshape(4, 3))
        out = embedding_lookup(w, np.array([2, 0])).numpy()
        assert np.allclose(out[0], [6, 7, 8])
        assert np.allclose(out[1], [0, 1, 2])

    def test_gradient_scatter_adds_duplicates(self):
        w = Tensor(np.zeros((3, 2)), requires_grad=True)
        out = embedding_lookup(w, np.array([1, 1, 0]))
        out.sum().backward()
        assert np.allclose(w.grad, [[1, 1], [2, 2], [0, 0]])


class TestDropout:
    def test_eval_mode_identity(self):
        x = Tensor(np.ones(100))
        out = dropout_mask(x, 0.5, np.random.default_rng(0), training=False)
        assert out is x

    def test_training_zeroes_and_rescales(self):
        x = Tensor(np.ones(10000))
        out = dropout_mask(x, 0.5, np.random.default_rng(0), training=True).numpy()
        zero_fraction = np.mean(out == 0)
        assert 0.4 < zero_fraction < 0.6
        assert np.isclose(out.mean(), 1.0, atol=0.1)
