"""Tests for the BENCH_*.json writer and the regression checker."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_bench_regression",
        REPO_ROOT / "scripts" / "check_bench_regression.py",
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _load_bench_util():
    spec = importlib.util.spec_from_file_location(
        "bench_util", REPO_ROOT / "benchmarks" / "bench_util.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestBenchUtil:
    def test_metric_validates_direction(self):
        util = _load_bench_util()
        assert util.metric(1.5, "s", "lower")["value"] == 1.5
        with pytest.raises(ValueError):
            util.metric(1.0, "s", "sideways")

    def test_fingerprint_stable_and_order_independent(self):
        util = _load_bench_util()
        a = util.config_fingerprint({"x": 1, "y": [2, 3]})
        b = util.config_fingerprint({"y": [2, 3], "x": 1})
        c = util.config_fingerprint({"x": 2, "y": [2, 3]})
        assert a == b
        assert a != c
        assert a.startswith("sha256:")

    def test_machine_specs_fields(self):
        specs = _load_bench_util().machine_specs()
        assert specs["cpu_count"] >= 1
        assert specs["python"] and specs["numpy"] and specs["platform"]


class TestCompare:
    def _payload(self, **metrics):
        return {
            "config_fingerprint": "sha256:abc",
            "fast_mode": False,
            "metrics": metrics,
        }

    def test_clean_when_within_threshold(self):
        checker = _load_checker()
        base = self._payload(t={"value": 1.0, "unit": "s", "direction": "lower"})
        cur = self._payload(t={"value": 1.05, "unit": "s", "direction": "lower"})
        assert checker.compare("b", base, cur, 0.10) == []

    def test_flags_lower_direction_slowdown(self):
        checker = _load_checker()
        base = self._payload(t={"value": 1.0, "unit": "s", "direction": "lower"})
        cur = self._payload(t={"value": 1.2, "unit": "s", "direction": "lower"})
        problems = checker.compare("b", base, cur, 0.10)
        assert len(problems) == 1 and "b:t" in problems[0]

    def test_flags_higher_direction_drop(self):
        checker = _load_checker()
        base = self._payload(s={"value": 4.0, "unit": "x", "direction": "higher"})
        cur = self._payload(s={"value": 3.0, "unit": "x", "direction": "higher"})
        assert len(checker.compare("b", base, cur, 0.10)) == 1

    def test_improvements_never_flagged(self):
        checker = _load_checker()
        base = self._payload(
            t={"value": 1.0, "unit": "s", "direction": "lower"},
            s={"value": 3.0, "unit": "x", "direction": "higher"},
        )
        cur = self._payload(
            t={"value": 0.5, "unit": "s", "direction": "lower"},
            s={"value": 9.0, "unit": "x", "direction": "higher"},
        )
        assert checker.compare("b", base, cur, 0.10) == []

    def test_new_metric_skipped(self):
        checker = _load_checker()
        base = self._payload()
        cur = self._payload(t={"value": 9.9, "unit": "s", "direction": "lower"})
        assert checker.compare("b", base, cur, 0.10) == []

    def test_malformed_metric_entry_skipped_not_crash(self, capsys):
        """A hand-edited or truncated baseline entry must degrade to a
        note, not a traceback that fails the whole (advisory) CI step."""
        checker = _load_checker()
        base = self._payload(
            t={"unit": "s", "direction": "lower"},  # no "value"
            u={"value": "not-a-number", "unit": "s", "direction": "lower"},
            v={"value": None, "unit": "s", "direction": "lower"},
        )
        cur = self._payload(
            t={"value": 1.0, "unit": "s", "direction": "lower"},
            u={"value": 1.0, "unit": "s", "direction": "lower"},
            v={"value": 1.0, "unit": "s", "direction": "lower"},
        )
        assert checker.compare("b", base, cur, 0.10) == []
        assert capsys.readouterr().out.count("skipped") == 3


class TestMain:
    def test_missing_baseline_skipped(self, tmp_path, capsys):
        checker = _load_checker()
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps({"bench": "x", "metrics": {}}))
        # tmp_path is outside the repo; `git show HEAD:` cannot resolve it,
        # so the run must skip, not crash.
        assert checker.main([str(path)]) == 0
        assert "skipped" in capsys.readouterr().out

    def test_missing_current_file_skipped(self, tmp_path, capsys):
        """A failed benchmark step leaves no BENCH file; the checker must
        explain and exit 0, not die with FileNotFoundError."""
        checker = _load_checker()
        assert checker.main([str(tmp_path / "BENCH_gone.json")]) == 0
        out = capsys.readouterr().out
        assert "not found in the working tree" in out
        assert "skipped" in out

    def test_unreadable_json_skipped(self, tmp_path, capsys):
        checker = _load_checker()
        path = tmp_path / "BENCH_x.json"
        path.write_text("{truncated")
        assert checker.main([str(path)]) == 0
        assert "unreadable JSON" in capsys.readouterr().out

    def test_non_object_payload_skipped(self, tmp_path, capsys):
        checker = _load_checker()
        path = tmp_path / "BENCH_x.json"
        path.write_text("[1, 2, 3]")
        assert checker.main([str(path)]) == 0
        assert "expected a JSON object" in capsys.readouterr().out

    def test_repo_bench_files_parse(self):
        # The committed BENCH files must stay loadable by the checker.
        for path in sorted(REPO_ROOT.glob("BENCH_*.json")):
            payload = json.loads(path.read_text())
            assert payload["bench"]
            assert payload["config_fingerprint"].startswith("sha256:")
            for name, entry in payload["metrics"].items():
                assert entry["direction"] in ("lower", "higher"), name
