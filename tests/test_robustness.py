"""Fast robustness tests: input validation, the degradation cascade,
per-item error slots, and client-side retry backoff.

Process-killing and pool-healing scenarios live in ``test_chaos.py``
(``pytest -m chaos``); everything here runs in-process.
"""

import math
import random

import pytest

from repro.cellular.trajectory import Trajectory, TrajectoryPoint
from repro.core import ParallelMatcher
from repro.errors import InvalidTrajectoryInput, MatchError, MatchFailure
from repro.geometry import Point
from repro.serve import MatchingClient, ServeClientError, ServerBusy
from repro.testing import faults


def _trajectory(coords, tower_id=None):
    return Trajectory(
        points=[
            TrajectoryPoint(position=Point(x, y), timestamp=float(t), tower_id=tower_id)
            for x, y, t in coords
        ]
    )


class TestInputValidation:
    def test_empty_trajectory_rejected(self, trained_lhmm):
        with pytest.raises(InvalidTrajectoryInput, match="trajectory is empty"):
            trained_lhmm.match(Trajectory(points=[]))

    def test_non_finite_coordinate_names_the_point(self, trained_lhmm):
        bad = _trajectory([(100.0, 100.0, 0.0), (math.nan, 100.0, 30.0)])
        with pytest.raises(InvalidTrajectoryInput, match=r"points\[1\].*non-finite"):
            trained_lhmm.match(bad)

    def test_out_of_bounds_point_names_the_point(self, trained_lhmm):
        bad = _trajectory([(100.0, 100.0, 0.0), (1e7, 1e7, 30.0)])
        with pytest.raises(
            InvalidTrajectoryInput, match=r"points\[1\].*outside the served map"
        ):
            trained_lhmm.match(bad)

    def test_context_prefix_is_configurable(self, trained_lhmm):
        with pytest.raises(InvalidTrajectoryInput, match=r"trajectories\[4\]"):
            trained_lhmm.validate_trajectory(
                Trajectory(points=[]), context="trajectories[4]"
            )

    def test_absent_tower_id_is_normalised_not_rejected(
        self, trained_lhmm, tiny_dataset
    ):
        sample = tiny_dataset.test[0].cellular
        stripped = Trajectory(
            points=[
                TrajectoryPoint(position=p.position, timestamp=p.timestamp, tower_id=None)
                for p in sample.points
            ]
        )
        result = trained_lhmm.match(stripped)
        assert result.path  # matched via nearest-tower normalisation

    def test_valid_trajectory_passes(self, trained_lhmm, tiny_dataset):
        trained_lhmm.validate_trajectory(tiny_dataset.test[0].cellular)


class TestDegradationCascade:
    def test_learned_failure_degrades_to_heuristic_hmm(
        self, trained_lhmm, tiny_dataset
    ):
        trajectory = tiny_dataset.test[0].cellular
        before = trained_lhmm.degraded_counts.get("heuristic_hmm", 0)
        with faults.armed("match.learned", "raise"):
            result = trained_lhmm.match(trajectory)
        assert result.provenance == "heuristic_hmm"
        assert result.degraded
        assert result.path
        assert len(result.matched_sequence) == len(trajectory)
        assert trained_lhmm.degraded_counts["heuristic_hmm"] == before + 1
        assert isinstance(trained_lhmm.last_degraded_cause, MatchFailure)

    def test_double_failure_degrades_to_nearest_road(self, trained_lhmm, tiny_dataset):
        trajectory = tiny_dataset.test[0].cellular
        with faults.armed("match.learned", "raise"):
            with faults.armed("match.heuristic", "raise"):
                result = trained_lhmm.match(trajectory)
        assert result.provenance == "nearest_road"
        assert result.degraded
        assert len(result.matched_sequence) == len(trajectory)
        # The path is the deduplicated projection sequence.
        assert all(a != b for a, b in zip(result.path, result.path[1:]))

    def test_normal_match_is_tagged_lhmm(self, trained_lhmm, tiny_dataset):
        result = trained_lhmm.match(tiny_dataset.test[0].cellular)
        assert result.provenance == "lhmm"
        assert not result.degraded

    def test_degradation_can_be_disabled(self, trained_lhmm, tiny_dataset):
        trajectory = tiny_dataset.test[0].cellular
        trained_lhmm.degradation_enabled = False
        try:
            with faults.armed("match.learned", "raise"):
                with pytest.raises(MatchFailure):
                    trained_lhmm.match(trajectory)
        finally:
            trained_lhmm.degradation_enabled = True

    def test_invalid_input_is_never_degraded(self, trained_lhmm, tiny_dataset):
        # Bad input must raise 422-class errors, not quietly fall back.
        trajectory = tiny_dataset.test[0].cellular
        with faults.armed("match.learned", "raise", error="invalid"):
            with pytest.raises(InvalidTrajectoryInput):
                trained_lhmm.match(trajectory)


class TestSerialErrorSlots:
    def test_match_many_isolates_the_poison_trajectory(
        self, trained_lhmm, tiny_dataset
    ):
        good = tiny_dataset.test[0].cellular
        bad = Trajectory(points=[])
        slots = trained_lhmm.match_many([good, bad, good], return_errors=True)
        assert len(slots) == 3
        assert isinstance(slots[1], MatchError)
        assert slots[1].code == "invalid_trajectory"
        assert slots[1].index == 1
        assert slots[0].path == slots[2].path == trained_lhmm.match(good).path

    def test_match_many_default_still_raises(self, trained_lhmm, tiny_dataset):
        good = tiny_dataset.test[0].cellular
        with pytest.raises(InvalidTrajectoryInput):
            trained_lhmm.match_many([good, Trajectory(points=[])])


class TestParallelMatcherConstruction:
    def test_missing_model_file_fails_fast(self, tmp_path):
        dataset = tmp_path / "city.json.gz"
        dataset.write_bytes(b"placeholder")
        with pytest.raises(FileNotFoundError, match="nope.npz"):
            ParallelMatcher(tmp_path / "nope.npz", dataset)

    def test_missing_dataset_file_fails_fast(self, tmp_path):
        model = tmp_path / "model.npz"
        model.write_bytes(b"placeholder")
        with pytest.raises(FileNotFoundError, match="absent.json.gz"):
            ParallelMatcher(model, tmp_path / "absent.json.gz")


class _FlakyClient(MatchingClient):
    """A client whose ``match`` answers 429 a fixed number of times."""

    def __init__(self, failures: int, retry_after_s: float = 0.0) -> None:
        super().__init__("localhost", 1)
        self.failures = failures
        self.retry_after_s = retry_after_s
        self.calls = 0

    def match(self, trajectories, region=None, deadline_ms=None):
        self.calls += 1
        if self.calls <= self.failures:
            raise ServerBusy(429, "busy", {}, self.retry_after_s)
        return [{"ok": True}]


class _FailingClient(MatchingClient):
    """A client whose ``match`` raises a given error a fixed number of
    times, then succeeds — for exercising retryability decisions."""

    def __init__(self, errors) -> None:
        super().__init__("localhost", 1)
        self.errors = list(errors)
        self.calls = 0

    def match(self, trajectories, region=None, deadline_ms=None):
        self.calls += 1
        if self.errors:
            raise self.errors.pop(0)
        return [{"ok": True}]


class TestMatchWithRetry:
    def test_backoff_grows_exponentially_with_jitter(self):
        client = _FlakyClient(failures=4)
        sleeps: list[float] = []
        result = client.match_with_retry(
            [], sleep=sleeps.append, clock=lambda: 0.0, rng=random.Random(0)
        )
        assert result == [{"ok": True}]
        assert client.calls == 5
        assert len(sleeps) == 4
        # Jitter multiplies by [0.5, 1.0], so attempt n waits within
        # [0.5, 1.0] x (0.25 * 2**n) — and the sequence never shrinks.
        for attempt, slept in enumerate(sleeps):
            ceiling = min(5.0, 0.25 * 2**attempt)
            assert 0.5 * ceiling <= slept <= ceiling
        assert all(a <= b for a, b in zip(sleeps, sleeps[1:]))

    def test_delay_is_capped(self):
        client = _FlakyClient(failures=7)
        sleeps: list[float] = []
        client.match_with_retry(
            [],
            sleep=sleeps.append,
            clock=lambda: 0.0,
            rng=random.Random(1),
            deadline_s=1000.0,
        )
        assert max(sleeps) <= 5.0

    def test_retry_after_is_respected(self):
        client = _FlakyClient(failures=1, retry_after_s=2.0)
        sleeps: list[float] = []
        client.match_with_retry(
            [], sleep=sleeps.append, clock=lambda: 0.0, rng=random.Random(2)
        )
        assert sleeps[0] >= 1.0  # 2.0 x jitter >= 0.5

    def test_total_deadline_caps_retrying(self):
        client = _FlakyClient(failures=100, retry_after_s=4.0)
        now = [0.0]
        sleeps: list[float] = []

        def fake_sleep(seconds: float) -> None:
            sleeps.append(seconds)
            now[0] += seconds

        with pytest.raises(ServerBusy):
            client.match_with_retry(
                [],
                max_attempts=50,
                deadline_s=10.0,
                sleep=fake_sleep,
                clock=lambda: now[0],
                rng=random.Random(3),
            )
        assert sum(sleeps) <= 10.0
        assert client.calls < 50  # the deadline, not the attempt cap, stopped it

    def test_large_retry_after_is_clipped_to_remaining_deadline(self):
        """A server-sent Retry-After bigger than what is left of the total
        deadline must be clipped, not obeyed: sleeping the full hint would
        overshoot the deadline and forfeit the final attempt."""
        client = _FlakyClient(failures=1, retry_after_s=30.0)
        now = [0.0]
        sleeps: list[float] = []

        def fake_sleep(seconds: float) -> None:
            sleeps.append(seconds)
            now[0] += seconds

        # rng seed 0 jitters the 5 s-capped hint to ~4.6 s > the 3 s
        # budget; the fixed loop clips the sleep and still gets the win.
        result = client.match_with_retry(
            [],
            deadline_s=3.0,
            sleep=fake_sleep,
            clock=lambda: now[0],
            rng=random.Random(0),
        )
        assert result == [{"ok": True}]
        assert client.calls == 2
        assert sleeps == [3.0]

    def test_attempt_cap_still_applies(self):
        client = _FlakyClient(failures=100)
        with pytest.raises(ServerBusy):
            client.match_with_retry(
                [],
                max_attempts=3,
                sleep=lambda s: None,
                clock=lambda: 0.0,
                rng=random.Random(4),
            )
        assert client.calls == 3

    def test_503_during_drain_is_retried(self):
        """A draining gateway answers 503 + retry_after_s; the retry loop
        honours the hint and wins once the drain (or respawn) completes."""
        client = _FailingClient(
            [ServeClientError(503, "draining", {"retry_after_s": 2.0})] * 2
        )
        sleeps: list[float] = []
        result = client.match_with_retry(
            [], sleep=sleeps.append, clock=lambda: 0.0, rng=random.Random(5)
        )
        assert result == [{"ok": True}]
        assert client.calls == 3
        assert all(s >= 1.0 for s in sleeps)  # 2.0 x jitter in [0.5, 1.0]

    def test_connection_reset_is_retried(self):
        """A worker respawn can reset in-flight sockets mid-request; that
        is transient, not fatal."""
        client = _FailingClient(
            [ConnectionResetError("peer reset"), ConnectionRefusedError("down")]
        )
        result = client.match_with_retry(
            [], sleep=lambda s: None, clock=lambda: 0.0, rng=random.Random(6)
        )
        assert result == [{"ok": True}]
        assert client.calls == 3

    def test_non_transient_http_errors_raise_immediately(self):
        """4xx input errors and 500s repeat deterministically — retrying
        them only repeats the failure."""
        for status in (400, 404, 422, 500):
            client = _FailingClient([ServeClientError(status, "nope", {})])
            with pytest.raises(ServeClientError):
                client.match_with_retry(
                    [], sleep=lambda s: None, clock=lambda: 0.0,
                    rng=random.Random(7),
                )
            assert client.calls == 1

    def test_exhausted_attempts_raise_the_transient_error(self):
        client = _FailingClient([ConnectionResetError("reset")] * 10)
        with pytest.raises(ConnectionResetError):
            client.match_with_retry(
                [], max_attempts=4, sleep=lambda s: None, clock=lambda: 0.0,
                rng=random.Random(8),
            )
        assert client.calls == 4
