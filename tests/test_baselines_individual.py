"""Behavioural tests for individual baseline heuristics."""

import math

import numpy as np
import pytest

from repro.baselines import IVMM, MCM, STMatching, IFMatching, SnapNet, THMM
from repro.cellular import TrajectoryPoint
from repro.core.trellis import UNREACHABLE_SCORE
from repro.geometry import Point


def _reachable_pair(dataset):
    """A segment and one of its successors (a guaranteed short route)."""
    net = dataset.network
    for seg_id in sorted(net.segments):
        successors = net.successors(seg_id)
        if successors:
            return seg_id, successors[0]
    raise AssertionError("network has no reachable pair")


def _points_for(dataset, a, b, dt=60.0):
    net = dataset.network
    return [
        TrajectoryPoint(net.segments[a].midpoint, 0.0, tower_id=0),
        TrajectoryPoint(net.segments[b].midpoint, dt, tower_id=0),
    ]


class TestSTM:
    def test_transmission_prefers_direct_routes(self, tiny_dataset):
        """A near-straight route must beat a detour between the same points."""
        matcher = STMatching(tiny_dataset)
        a, b = _reachable_pair(tiny_dataset)
        points = _points_for(tiny_dataset, a, b)
        direct = matcher.transition_probability(points, 1, a, b)
        # transit to a far-away segment implies an enormous detour
        far = max(
            sorted(tiny_dataset.network.segments),
            key=lambda s: tiny_dataset.network.segments[s].midpoint.distance_to(
                points[0].position
            ),
        )
        detour = matcher.transition_probability(points, 1, a, far)
        assert direct > detour or detour == UNREACHABLE_SCORE

    def test_temporal_penalises_impossible_speed(self, tiny_dataset):
        matcher = STMatching(tiny_dataset)
        a, b = _reachable_pair(tiny_dataset)
        slow = matcher.transition_probability(_points_for(tiny_dataset, a, b, dt=60.0), 1, a, b)
        fast = matcher.transition_probability(_points_for(tiny_dataset, a, b, dt=0.5), 1, a, b)
        assert fast <= slow + 1e-9


class TestIFM:
    def test_speed_violation_damped(self, tiny_dataset):
        matcher = IFMatching(tiny_dataset)
        a, b = _reachable_pair(tiny_dataset)
        normal = matcher.transition_probability(
            _points_for(tiny_dataset, a, b, dt=60.0), 1, a, b
        )
        teleport = matcher.transition_probability(
            _points_for(tiny_dataset, a, b, dt=0.2), 1, a, b
        )
        assert teleport < normal


class TestMCM:
    def test_corridor_bonus_prefers_on_corridor_routes(self, tiny_dataset):
        matcher = MCM(tiny_dataset)
        a, b = _reachable_pair(tiny_dataset)
        points = _points_for(tiny_dataset, a, b)
        base = super(MCM, matcher).transition_probability(points, 1, a, b)
        scored = matcher.transition_probability(points, 1, a, b)
        # the corridor factor is multiplicative in (0, 1]
        assert 0 < scored <= base + 1e-12


class TestSnapNet:
    def test_direction_factor_prefers_aligned_roads(self, tiny_dataset):
        matcher = SnapNet(tiny_dataset)
        net = tiny_dataset.network
        a, b = _reachable_pair(tiny_dataset)
        seg_b = net.segments[b]
        heading = seg_b.heading_deg()
        # movement aligned with b's heading
        start = seg_b.polyline.start
        aligned_end = start.translated(
            600 * math.sin(math.radians(heading)), 600 * math.cos(math.radians(heading))
        )
        opposed_end = start.translated(
            -600 * math.sin(math.radians(heading)), -600 * math.cos(math.radians(heading))
        )
        points_aligned = [
            TrajectoryPoint(start, 0.0, tower_id=0),
            TrajectoryPoint(aligned_end, 60.0, tower_id=0),
        ]
        points_opposed = [
            TrajectoryPoint(start, 0.0, tower_id=0),
            TrajectoryPoint(opposed_end, 60.0, tower_id=0),
        ]
        p_aligned = matcher.transition_probability(points_aligned, 1, a, b)
        p_opposed = matcher.transition_probability(points_opposed, 1, a, b)
        if p_aligned > UNREACHABLE_SCORE and p_opposed > UNREACHABLE_SCORE:
            # direction factor must not favour the opposed movement; length
            # terms differ too, so allow a generous margin.
            assert p_aligned >= p_opposed * 0.5


class TestTHMM:
    def test_arterial_observation_bonus(self, tiny_dataset):
        matcher = THMM(tiny_dataset)
        net = tiny_dataset.network
        arterials = [s for s in sorted(net.segments) if net.segments[s].road_class == "arterial"]
        locals_ = [s for s in sorted(net.segments) if net.segments[s].road_class == "local"]
        art, loc = arterials[0], locals_[0]
        # place the point equidistant scenarios: compare against the plain
        # gaussian by checking the bonus factor directly
        p = TrajectoryPoint(net.segments[art].midpoint, 0.0, tower_id=0)
        bonus = matcher.observation_probability([p], 0, art)
        plain = math.exp(
            -0.5
            * (net.segments[art].distance_to(p.position) / matcher.config.observation_sigma_m) ** 2
        )
        assert bonus >= plain

    def test_tighter_reachability_window(self, tiny_dataset):
        assert THMM(tiny_dataset).config.max_detour_factor < STMatching(
            tiny_dataset
        ).config.max_detour_factor + 3.0


class TestIVMM:
    def test_votes_fill_every_position(self, tiny_dataset):
        matcher = IVMM(tiny_dataset)
        matcher.config.candidate_k = 5
        sample = tiny_dataset.test[0]
        result = matcher.match(sample.cellular)
        assert len(result.matched_sequence) == len(sample.cellular)

    def test_weighted_viterbi_respects_weights(self, tiny_dataset):
        matcher = IVMM(tiny_dataset)
        matcher.config.candidate_k = 4
        sample = tiny_dataset.test[0]
        points = list(sample.cellular.points)
        sets = matcher.candidate_sets(sample.cellular)
        uniform = matcher._weighted_viterbi(points, sets, [1.0] * len(points))
        assert len(uniform) == len(points)
        assert all(seg in candidates for seg, candidates in zip(uniform, sets))
