"""Tests for the seq2seq baselines (DeepMM, TransformerMM, DMM)."""

import numpy as np
import pytest

from repro.baselines import DMM, DeepMM, TransformerMM, make_baseline
from repro.baselines.seq2seq import Seq2SeqConfig, Seq2SeqMatcher


def fast_config(**overrides) -> Seq2SeqConfig:
    defaults = dict(
        embedding_dim=12,
        hidden_dim=16,
        epochs=2,
        max_target_len=20,
        max_decode_len=25,
    )
    defaults.update(overrides)
    return Seq2SeqConfig(**defaults)


@pytest.fixture(scope="module")
def trained_dmm(tiny_dataset):
    matcher = DMM(
        tiny_dataset, fast_config(input_mode="tower", constrained=True), rng=0
    )
    return matcher.fit(tiny_dataset.train)


class TestTokenisation:
    def test_tower_tokens(self, tiny_dataset):
        matcher = DMM(tiny_dataset, fast_config(input_mode="tower", constrained=True), rng=0)
        tokens = matcher._tokens(tiny_dataset.test[0].cellular)
        assert len(tokens) == len(tiny_dataset.test[0].cellular)
        assert tokens.min() >= 0
        assert tokens.max() < len(tiny_dataset.towers)

    def test_grid_tokens_in_vocab(self, tiny_dataset):
        matcher = DeepMM(tiny_dataset, fast_config(input_mode="grid"), rng=0)
        tokens = matcher._tokens(tiny_dataset.test[0].cellular)
        assert tokens.min() >= 0
        assert tokens.max() < matcher._grid_rows * matcher._grid_cols


class TestTraining:
    def test_loss_decreases(self, trained_dmm):
        losses = trained_dmm.losses
        first = np.mean(losses[: max(3, len(losses) // 10)])
        last = np.mean(losses[-max(3, len(losses) // 10) :])
        assert last < first

    def test_fit_rejects_empty(self, tiny_dataset):
        matcher = DMM(tiny_dataset, fast_config(), rng=0)
        with pytest.raises(ValueError):
            matcher.fit([])


class TestDecoding:
    def test_match_produces_segments(self, trained_dmm, tiny_dataset):
        result = trained_dmm.match(tiny_dataset.test[0].cellular)
        assert all(s in tiny_dataset.network.segments for s in result.path)
        assert result.candidate_sets is None  # HR does not apply to seq2seq

    def test_constrained_decoding_is_connected(self, trained_dmm, tiny_dataset):
        net = tiny_dataset.network
        for sample in tiny_dataset.test[:3]:
            path = trained_dmm.match(sample.cellular).path
            for a, b in zip(path, path[1:]):
                assert net.segments[b].start_node == net.segments[a].end_node

    def test_first_segment_near_first_point(self, trained_dmm, tiny_dataset):
        sample = tiny_dataset.test[0]
        path = trained_dmm.match(sample.cellular).path
        if path:
            first = tiny_dataset.network.segments[path[0]]
            assert first.distance_to(sample.cellular[0].position) <= 2500.0

    def test_decode_length_bounded(self, trained_dmm, tiny_dataset):
        sample = tiny_dataset.test[0]
        path = trained_dmm.match(sample.cellular).path
        assert len(path) <= trained_dmm.config.max_decode_len

    def test_no_consecutive_duplicates(self, trained_dmm, tiny_dataset):
        path = trained_dmm.match(tiny_dataset.test[1].cellular).path
        assert all(a != b for a, b in zip(path, path[1:]))


class TestBeamSearch:
    def test_beam_one_equals_greedy(self, trained_dmm, tiny_dataset):
        tokens = trained_dmm._tokens(tiny_dataset.test[0].cellular)
        allowed = trained_dmm._make_allowed_next(tiny_dataset.test[0].cellular)
        greedy = trained_dmm.model.greedy_decode(tokens, 20, allowed_next=allowed)
        beam1 = trained_dmm.model.beam_decode(tokens, 20, 1, allowed_next=allowed)
        assert greedy == beam1

    def test_beam_respects_constraints(self, trained_dmm, tiny_dataset):
        sample = tiny_dataset.test[0]
        tokens = trained_dmm._tokens(sample.cellular)
        allowed = trained_dmm._make_allowed_next(sample.cellular)
        decoded = trained_dmm.model.beam_decode(tokens, 20, 3, allowed_next=allowed)
        net = tiny_dataset.network
        segs = [trained_dmm._segment_ids[i] for i in decoded]
        for a, b in zip(segs, segs[1:]):
            assert b == a or net.segments[b].start_node == net.segments[a].end_node

    def test_beam_width_via_config(self, tiny_dataset):
        matcher = DMM(
            tiny_dataset,
            fast_config(input_mode="tower", constrained=True, beam_width=3),
            rng=0,
        )
        matcher.fit(tiny_dataset.train[:10])
        result = matcher.match(tiny_dataset.test[0].cellular)
        assert all(s in tiny_dataset.network.segments for s in result.path)


class TestVariants:
    def test_deepmm_unconstrained(self, tiny_dataset):
        matcher = DeepMM(tiny_dataset, fast_config(input_mode="grid"), rng=0)
        matcher.fit(tiny_dataset.train[:10])
        assert matcher._successors is None
        assert matcher.match(tiny_dataset.test[0].cellular).path is not None

    def test_transformer_encoder_used(self, tiny_dataset):
        matcher = TransformerMM(
            tiny_dataset, fast_config(input_mode="grid", encoder="transformer"), rng=0
        )
        assert matcher.model.encoder_layer is not None
        assert matcher.model.encoder_rnn is None
        matcher.fit(tiny_dataset.train[:10])
        assert matcher.match(tiny_dataset.test[0].cellular) is not None

    def test_registry_trains_seq2seq(self, tiny_dataset):
        matcher = make_baseline(
            "DMM", tiny_dataset, rng=0, config=fast_config(input_mode="tower", constrained=True)
        )
        assert matcher.losses  # fit() was called by the factory
