"""Tests for the cluster's self-healing control plane.

Two layers, mirroring the design of :mod:`repro.serve.control`:

* **unit** — the four control primitives (journal, admission gate, crash
  tracker, autoscaler policy) exercised with synthetic clocks, so every
  hysteresis edge is deterministic;
* **end-to-end** — short-lived clusters driven over HTTP: zero-downtime
  artifact rollout (``POST /v1/admin/rollout``), rejected rollouts that
  leave the old generation serving, deadline propagation (504) and
  admission-queue overload (503 + ``server_overloaded``), always
  asserting served results stay byte-identical to direct ``LHMM`` calls.

The heavyweight chaos scenarios (SIGKILL, stall injection, autoscaling
under Poisson load) live in ``tests/test_chaos_cluster.py``.
"""

from __future__ import annotations

import asyncio
import json
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.datasets import save_dataset
from repro.errors import DeadlineExceeded, ServerOverloaded
from repro.serve import (
    AdmissionGate,
    AutoscalerPolicy,
    ClusterConfig,
    ClusterServer,
    ControlJournal,
    CrashTracker,
    MatchingClient,
    RollingWindow,
    ServeClientError,
    ServerBusy,
    ShardRegistry,
    ShardSpec,
)
from repro.serve.shm import leaked_segments


# =====================================================================
# unit: RollingWindow
# =====================================================================
class TestRollingWindow:
    def test_percentile_nearest_rank(self):
        window = RollingWindow(window_s=60.0)
        for value in (0.1, 0.2, 0.3, 0.4, 0.5):
            window.record(value, now=100.0)
        assert window.percentile(0.0, now=100.0) == 0.1
        assert window.percentile(50.0, now=100.0) == 0.3
        assert window.percentile(100.0, now=100.0) == 0.5

    def test_empty_window_is_zero(self):
        assert RollingWindow().percentile(95.0) == 0.0

    def test_old_samples_evicted(self):
        window = RollingWindow(window_s=10.0)
        window.record(1.0, now=0.0)
        window.record(2.0, now=8.0)
        assert window.values(now=9.0) == [1.0, 2.0]
        # At t=11 the first sample is outside the 10s window.
        assert window.values(now=11.0) == [2.0]
        assert window.count(now=11.0) == 1

    def test_max_samples_bound(self):
        window = RollingWindow(window_s=60.0, max_samples=4)
        for index in range(10):
            window.record(float(index), now=50.0)
        assert window.values(now=50.0) == [6.0, 7.0, 8.0, 9.0]


# =====================================================================
# unit: ControlJournal
# =====================================================================
class TestControlJournal:
    def test_records_and_tails_in_order(self):
        journal = ControlJournal()
        journal.record("scale_up", target=3)
        journal.record("scale_down", target=2)
        tail = journal.tail(10)
        assert [entry["event"] for entry in tail] == ["scale_up", "scale_down"]
        assert tail[0]["target"] == 3
        assert all("ts" in entry for entry in tail)

    def test_keep_bounds_memory(self):
        journal = ControlJournal(keep=3)
        for index in range(6):
            journal.record("tick", n=index)
        assert [entry["n"] for entry in journal.tail(10)] == [3, 4, 5]

    def test_jsonl_file_survives_each_event(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = ControlJournal(path=str(path))
        journal.record("worker_respawn", worker="w0")
        # Flushed per event — readable *before* close, which is what makes
        # the journal useful after a SIGKILL.
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        entry = json.loads(lines[0])
        assert entry["event"] == "worker_respawn"
        assert entry["worker"] == "w0"
        journal.record("breaker_open", worker="w1")
        journal.close()
        journal.close()  # idempotent
        events = [json.loads(line)["event"] for line in path.read_text().splitlines()]
        assert events == ["worker_respawn", "breaker_open"]


# =====================================================================
# unit: CrashTracker
# =====================================================================
class TestCrashTracker:
    def test_breaker_opens_at_threshold_within_window(self):
        tracker = CrashTracker(threshold=3, window_s=30.0)
        assert tracker.record("w0", now=0.0) is False
        assert tracker.record("w0", now=1.0) is False
        assert tracker.record("w0", now=2.0) is True  # just opened
        assert tracker.is_open("w0")
        # Opening is reported exactly once.
        assert tracker.record("w0", now=3.0) is False
        assert tracker.open_breakers() == ["w0"]

    def test_crashes_outside_window_do_not_count(self):
        tracker = CrashTracker(threshold=3, window_s=10.0)
        tracker.record("w1", now=0.0)
        tracker.record("w1", now=1.0)
        # The first two crashes have aged out by t=20.
        assert tracker.record("w1", now=20.0) is False
        assert not tracker.is_open("w1")
        assert tracker.recent("w1", now=20.0) == 1

    def test_recent_drives_backoff_exponent(self):
        tracker = CrashTracker(threshold=5, window_s=30.0)
        for stamp in (0.0, 1.0, 2.0):
            tracker.record("w2", now=stamp)
        assert tracker.recent("w2", now=2.0) == 3

    def test_forget_clears_state(self):
        tracker = CrashTracker(threshold=1, window_s=30.0)
        assert tracker.record("w3", now=0.0) is True
        tracker.forget("w3")
        assert not tracker.is_open("w3")
        assert tracker.recent("w3", now=0.0) == 0
        assert tracker.open_breakers() == []


# =====================================================================
# unit: AutoscalerPolicy
# =====================================================================
class TestAutoscalerPolicy:
    def _policy(self, **overrides):
        defaults = dict(
            min_workers=1,
            max_workers=4,
            high_water_depth=4,
            high_water_wait_s=0.5,
            low_water_wait_s=0.05,
            up_cooldown_s=2.0,
            down_cooldown_s=10.0,
            idle_ticks_needed=3,
        )
        defaults.update(overrides)
        return AutoscalerPolicy(**defaults)

    def test_scales_up_on_queue_depth(self):
        policy = self._policy()
        assert policy.decide(0.0, workers=1, depth=4, p95_wait_s=0.0, inflight=1) == "up"

    def test_scales_up_on_wait_pressure(self):
        policy = self._policy()
        assert policy.decide(0.0, workers=2, depth=0, p95_wait_s=0.6, inflight=2) == "up"

    def test_up_respects_cooldown_and_ceiling(self):
        policy = self._policy()
        assert policy.decide(0.0, workers=1, depth=8, p95_wait_s=1.0, inflight=1) == "up"
        # Still pressured one tick later: inside the up-cooldown → hold.
        assert policy.decide(0.5, workers=2, depth=8, p95_wait_s=1.0, inflight=2) is None
        assert policy.decide(3.0, workers=2, depth=8, p95_wait_s=1.0, inflight=2) == "up"
        # At the ceiling, pressure no longer scales up.
        assert policy.decide(9.0, workers=4, depth=8, p95_wait_s=1.0, inflight=4) is None

    def test_scales_down_only_after_consecutive_idle_ticks(self):
        policy = self._policy(idle_ticks_needed=3, down_cooldown_s=0.0)
        assert policy.decide(0.0, workers=3, depth=0, p95_wait_s=0.0, inflight=0) is None
        assert policy.decide(1.0, workers=3, depth=0, p95_wait_s=0.0, inflight=0) is None
        assert policy.decide(2.0, workers=3, depth=0, p95_wait_s=0.0, inflight=0) == "down"

    def test_busy_tick_resets_idle_streak(self):
        policy = self._policy(idle_ticks_needed=2, down_cooldown_s=0.0)
        assert policy.decide(0.0, workers=2, depth=0, p95_wait_s=0.0, inflight=0) is None
        # A single busy tick (inflight == workers) restarts the countdown.
        assert policy.decide(1.0, workers=2, depth=0, p95_wait_s=0.0, inflight=2) is None
        assert policy.decide(2.0, workers=2, depth=0, p95_wait_s=0.0, inflight=0) is None
        assert policy.decide(3.0, workers=2, depth=0, p95_wait_s=0.0, inflight=0) == "down"

    def test_down_respects_floor_and_cooldown(self):
        policy = self._policy(idle_ticks_needed=1, down_cooldown_s=10.0)
        # At the floor: never down.
        for tick in range(5):
            assert (
                policy.decide(float(tick), workers=1, depth=0, p95_wait_s=0.0, inflight=0)
                is None
            )
        policy = self._policy(idle_ticks_needed=1, down_cooldown_s=10.0)
        assert policy.decide(0.0, workers=2, depth=8, p95_wait_s=1.0, inflight=2) == "up"
        # Idle immediately after scaling: the down-cooldown holds the fleet.
        assert policy.decide(5.0, workers=3, depth=0, p95_wait_s=0.0, inflight=0) is None
        assert policy.decide(11.0, workers=3, depth=0, p95_wait_s=0.0, inflight=0) == "down"

    def test_bounds_validation(self):
        with pytest.raises(ValueError):
            AutoscalerPolicy(min_workers=0, max_workers=2)
        with pytest.raises(ValueError):
            AutoscalerPolicy(min_workers=3, max_workers=2)


# =====================================================================
# unit: AdmissionGate (loop-confined, driven via asyncio.run)
# =====================================================================
class TestAdmissionGate:
    def test_immediate_admission_and_release(self):
        async def scenario():
            gate = AdmissionGate(max_inflight=2, queue_limit=4)
            await gate.acquire()
            assert gate.inflight == 1
            assert gate.admitted_total == 1
            gate.release()
            assert gate.inflight == 0

        asyncio.run(scenario())

    def test_waiters_are_granted_fifo(self):
        async def scenario():
            gate = AdmissionGate(max_inflight=1, queue_limit=4)
            await gate.acquire()
            order: list[int] = []

            async def contender(tag: int):
                await gate.acquire()
                order.append(tag)
                gate.release()

            tasks = [asyncio.ensure_future(contender(tag)) for tag in (1, 2, 3)]
            await asyncio.sleep(0)  # let all three enqueue
            assert gate.depth == 3
            gate.release()  # grant cascades through the queue
            await asyncio.gather(*tasks)
            assert order == [1, 2, 3]

        asyncio.run(scenario())

    def test_overflow_is_shed_with_server_overloaded(self):
        async def scenario():
            gate = AdmissionGate(max_inflight=1, queue_limit=1)
            await gate.acquire()
            waiter = asyncio.ensure_future(gate.acquire())
            await asyncio.sleep(0)
            assert gate.depth == 1
            with pytest.raises(ServerOverloaded):
                await gate.acquire()
            assert gate.shed_overflow_total == 1
            gate.release()
            await waiter
            gate.release()

        asyncio.run(scenario())

    def test_expired_deadline_is_shed_before_queueing(self):
        async def scenario():
            gate = AdmissionGate(max_inflight=1, queue_limit=4)
            with pytest.raises(DeadlineExceeded):
                await gate.acquire(deadline=time.monotonic() - 1.0)
            assert gate.shed_deadline_total == 1
            assert gate.inflight == 0

        asyncio.run(scenario())

    def test_queued_waiter_deadline_expires_without_leaking_slot(self):
        async def scenario():
            gate = AdmissionGate(max_inflight=1, queue_limit=4)
            await gate.acquire()
            with pytest.raises(DeadlineExceeded):
                await gate.acquire(deadline=time.monotonic() + 0.05)
            assert gate.shed_deadline_total == 1
            # The holder's slot is untouched and still grantable.
            gate.release()
            await gate.acquire()
            assert gate.inflight == 1
            gate.release()

        asyncio.run(scenario())

    def test_sweep_sheds_expired_waiters_at_the_queue(self):
        async def scenario():
            gate = AdmissionGate(max_inflight=1, queue_limit=4)
            await gate.acquire()
            waiter = asyncio.ensure_future(gate.acquire(deadline=time.monotonic() + 60.0))
            await asyncio.sleep(0)
            assert gate.depth == 1
            # Simulate the deadline passing mid-stall (no release coming):
            # the supervision tick's sweep must shed it in place.
            gate._waiters[0].deadline = time.monotonic() - 1.0
            assert gate.sweep() == 1
            with pytest.raises(DeadlineExceeded):
                await waiter
            assert gate.depth == 0
            snapshot = gate.snapshot()
            assert snapshot["shed_deadline_total"] == 1
            assert snapshot["inflight"] == 1
            gate.release()

        asyncio.run(scenario())


# =====================================================================
# end-to-end: rollout, deadlines, overload
# =====================================================================
@pytest.fixture(scope="module")
def control_paths(tmp_path_factory, tiny_dataset, trained_lhmm):
    root = tmp_path_factory.mktemp("cluster-control")
    dataset_path = root / "tiny.json.gz"
    model_path = root / "model.npz"
    save_dataset(tiny_dataset, dataset_path)
    trained_lhmm.save(model_path)
    return str(dataset_path), str(model_path)


def _publish(control_paths):
    dataset_path, model_path = control_paths
    return ShardRegistry.publish(
        [ShardSpec(region="default", dataset=dataset_path, model=model_path)]
    )


class TestRolloutEndpoint:
    def test_rollout_publishes_new_generation_bit_identically(
        self, control_paths, trained_lhmm, tiny_dataset
    ):
        registry = _publish(control_paths)
        server = ClusterServer(
            registry, ClusterConfig(port=0, num_workers=2, cache_size=0)
        ).start()
        try:
            client = MatchingClient(server.host, server.port, timeout=60.0)
            samples = tiny_dataset.samples[:3]
            before = client.match([s.cellular for s in samples])

            summary = client.rollout()
            assert summary["region"] == "default"
            assert summary["generation"] == 2
            assert summary["workers_swapped"] == 2
            assert summary["workers_failed"] == 0
            assert summary["canary_checked"] >= 1

            health = client.health()
            assert health["generations"]["default"] == 2
            assert health["workers_alive"] == 2

            # The swapped fleet serves the *same bytes* as generation 1
            # and as a direct matcher call.
            after = client.match([s.cellular for s in samples])
            assert after == before
            assert [r["path"] for r in after] == [
                trained_lhmm.match(s.cellular).path for s in samples
            ]

            metrics = client.metrics()
            assert metrics["counters"]["rollouts_total"] == 1
            assert metrics["generations"]["default"] == 2
            assert all(w["generation"] == 2 for w in metrics["workers"])
            events = [e["event"] for e in metrics["control"]["journal_tail"]]
            assert "rollout_committed" in events or "rollout_started" in events
        finally:
            server.shutdown()
        assert leaked_segments() == []

    def test_corrupt_artifact_is_rejected_and_old_generation_serves(
        self, control_paths, trained_lhmm, tiny_dataset, tmp_path
    ):
        bad_model = tmp_path / "corrupt.npz"
        bad_model.write_bytes(b"this is not an npz archive")
        registry = _publish(control_paths)
        server = ClusterServer(
            registry, ClusterConfig(port=0, num_workers=1, cache_size=0)
        ).start()
        try:
            client = MatchingClient(server.host, server.port, timeout=60.0)
            sample = tiny_dataset.samples[4]
            baseline = set(leaked_segments())

            with pytest.raises(ServeClientError) as excinfo:
                client.rollout(model=str(bad_model))
            assert excinfo.value.status >= 400

            # Nothing changed: generation 1 keeps serving, no staged
            # segments were left behind.
            assert client.health()["generations"]["default"] == 1
            result = client.match([sample.cellular])
            assert result[0]["path"] == trained_lhmm.match(sample.cellular).path
            assert set(leaked_segments()) == baseline
            metrics = client.metrics()
            assert metrics["counters"]["rollout_failures_total"] >= 1
            assert metrics["counters"]["rollouts_total"] == 0
        finally:
            server.shutdown()
        assert leaked_segments() == []

    def test_rollout_unknown_region_is_404_and_bad_model_type_400(self, control_paths):
        registry = _publish(control_paths)
        server = ClusterServer(
            registry, ClusterConfig(port=0, num_workers=1, cache_size=0)
        ).start()
        try:
            client = MatchingClient(server.host, server.port, timeout=60.0)
            with pytest.raises(ServeClientError) as excinfo:
                client.rollout(region="atlantis")
            assert excinfo.value.status == 404
            with pytest.raises(ServeClientError) as excinfo:
                client._request("POST", "/v1/admin/rollout", {"model": 5})
            assert excinfo.value.status == 400
        finally:
            server.shutdown()
        assert leaked_segments() == []


class TestDeadlinesAndOverload:
    def test_deadline_propagation_and_queue_shedding(
        self, control_paths, trained_lhmm, tiny_dataset, monkeypatch, tmp_path
    ):
        """One saturated single-worker cluster exercises the whole shedding
        ladder: expired deadline → 504 before any work, queued waiter whose
        deadline passes → 504, overflow → 503 + ``server_overloaded``, and
        the admitted request still completes bit-identically."""
        # The *first* match op inside a worker hangs 3s (token-gated so
        # respawned/extra workers never re-fire it).  Env must be set
        # before the fork below.
        token = tmp_path / "hang-once"
        monkeypatch.setenv(
            "REPRO_FAULTS", f"cluster.op:hang:op=match:seconds=3:once={token}"
        )
        registry = _publish(control_paths)
        server = ClusterServer(
            registry,
            ClusterConfig(
                port=0,
                num_workers=1,
                cache_size=0,
                max_inflight=1,
                queue_limit=1,
                retry_after_s=2.0,
            ),
        ).start()
        pool = ThreadPoolExecutor(max_workers=2)
        try:
            client = MatchingClient(server.host, server.port, timeout=60.0)
            samples = tiny_dataset.samples[:3]

            # (1) A pre-expired deadline never reaches a worker: 504 with
            # the stable code, shed at the admission gate.
            with pytest.raises(ServeClientError) as excinfo:
                client.match([samples[0].cellular], deadline_ms=0.001)
            assert excinfo.value.status == 504
            assert excinfo.value.payload["code"] == "deadline_exceeded"

            # (2) An invalid deadline is a protocol error.
            with pytest.raises(ServeClientError) as excinfo:
                client.match([samples[0].cellular], deadline_ms=-5)
            assert excinfo.value.status == 400

            # (3) Saturate: the admitted request hangs inside the worker.
            admitted = pool.submit(client.match, [samples[0].cellular])
            deadline = time.time() + 10
            while server._gate.inflight < 1:
                assert time.time() < deadline
                time.sleep(0.01)

            # (4) A queued waiter whose deadline passes is shed with 504.
            queued = pool.submit(client.match, [samples[1].cellular], deadline_ms=500)
            while server._gate.depth < 1:
                assert time.time() < deadline
                time.sleep(0.01)

            # (5) The queue is now full: overflow sheds instantly with the
            # cluster's 503 + Retry-After overload answer.
            with pytest.raises(ServerBusy) as excinfo:
                client.match([samples[2].cellular])
            assert excinfo.value.status == 503
            assert excinfo.value.payload["code"] == "server_overloaded"
            assert excinfo.value.retry_after_s == 2.0

            with pytest.raises(ServeClientError) as excinfo:
                queued.result(timeout=30)
            assert excinfo.value.status == 504
            assert excinfo.value.payload["code"] == "deadline_exceeded"

            # (6) The admitted request rides out the stall and answers
            # exactly what a direct call computes.
            result = admitted.result(timeout=30)
            assert result[0]["path"] == trained_lhmm.match(samples[0].cellular).path

            admission = client.metrics()["admission"]
            assert admission["shed_overflow_total"] >= 1
            assert admission["shed_deadline_total"] >= 2
        finally:
            pool.shutdown(wait=False)
            server.shutdown()
        assert leaked_segments() == []

    def test_generous_deadline_serves_normally(
        self, control_paths, trained_lhmm, tiny_dataset
    ):
        registry = _publish(control_paths)
        server = ClusterServer(
            registry, ClusterConfig(port=0, num_workers=1, cache_size=0)
        ).start()
        try:
            client = MatchingClient(server.host, server.port, timeout=60.0)
            sample = tiny_dataset.samples[6]
            result = client.match([sample.cellular], deadline_ms=60_000)
            assert result[0]["path"] == trained_lhmm.match(sample.cellular).path
        finally:
            server.shutdown()
        assert leaked_segments() == []
