"""Tests for the micro-batcher (batching, demux, backpressure, drain)."""

import threading
import time

import pytest

from repro.serve import Backpressure, MicroBatcher, ServiceClosed


def doubler(items):
    return [item * 2 for item in items]


class TestBatching:
    def test_results_demultiplex_in_order(self):
        with MicroBatcher(doubler, max_batch=4, window_s=0.02, queue_limit=64) as batcher:
            futures = [batcher.submit(i) for i in range(10)]
            assert [f.result(timeout=5) for f in futures] == [i * 2 for i in range(10)]

    def test_requests_coalesce_into_batches(self):
        sizes = []

        def recording(items):
            sizes.append(len(items))
            return items

        gate = threading.Event()

        def gated(items):
            gate.wait(5)
            return recording(items)

        with MicroBatcher(gated, max_batch=8, window_s=0.5, queue_limit=64) as batcher:
            futures = [batcher.submit(i) for i in range(6)]
            gate.set()
            for future in futures:
                future.result(timeout=5)
        # All six arrived within one window: at most two dispatches
        # (the first request may have been picked up alone before the rest).
        assert sum(sizes) == 6
        assert len(sizes) <= 2
        assert max(sizes) >= 5

    def test_max_batch_caps_dispatch_size(self):
        sizes = []

        def recording(items):
            sizes.append(len(items))
            return items

        with MicroBatcher(recording, max_batch=3, window_s=0.2, queue_limit=64) as batcher:
            futures = [batcher.submit(i) for i in range(7)]
            for future in futures:
                future.result(timeout=5)
        assert max(sizes) <= 3
        assert sum(sizes) == 7

    def test_batch_fn_exception_propagates_to_all(self):
        def broken(items):
            raise RuntimeError("boom")

        with MicroBatcher(broken, window_s=0.01, queue_limit=8) as batcher:
            future = batcher.submit(1)
            with pytest.raises(RuntimeError, match="boom"):
                future.result(timeout=5)

    def test_result_count_mismatch_is_an_error(self):
        with MicroBatcher(lambda items: [], window_s=0.01, queue_limit=8) as batcher:
            future = batcher.submit(1)
            with pytest.raises(RuntimeError, match="0 results for 1"):
                future.result(timeout=5)


class TestBackpressure:
    def test_full_queue_rejects_with_retry_after(self):
        gate = threading.Event()
        entered = threading.Event()

        def slow(items):
            entered.set()
            gate.wait(10)
            return items

        batcher = MicroBatcher(
            slow, max_batch=1, window_s=0.0, queue_limit=2, retry_after_s=3.0
        )
        try:
            admitted = [batcher.submit(0)]
            assert entered.wait(5)  # the dispatcher is now blocked in slow()
            admitted += [batcher.submit(i) for i in (1, 2)]  # fills the queue
            with pytest.raises(Backpressure) as excinfo:
                batcher.submit(99)
            assert excinfo.value.retry_after_s == 3.0
            assert batcher.stats()["rejected_total"] >= 1
        finally:
            gate.set()
            batcher.close()
        # Everything admitted before the rejection still completes.
        for future in admitted:
            assert future.result(timeout=5) is not None


class TestShutdown:
    def test_close_drains_admitted_work(self):
        release = threading.Event()
        done = []

        def slow(items):
            release.wait(5)
            done.extend(items)
            return items

        batcher = MicroBatcher(slow, max_batch=2, window_s=0.01, queue_limit=16)
        futures = [batcher.submit(i) for i in range(5)]
        closer = threading.Thread(target=batcher.close)
        closer.start()
        release.set()
        closer.join(timeout=5)
        assert not closer.is_alive()
        assert sorted(done) == [0, 1, 2, 3, 4]
        assert [f.result(0) for f in futures] == [0, 1, 2, 3, 4]

    def test_submit_after_close_raises(self):
        batcher = MicroBatcher(doubler, queue_limit=4)
        batcher.close()
        with pytest.raises(ServiceClosed):
            batcher.submit(1)

    def test_close_without_drain_fails_queued_work(self):
        gate = threading.Event()

        def slow(items):
            gate.wait(5)
            return items

        batcher = MicroBatcher(slow, max_batch=1, window_s=0.0, queue_limit=8)
        first = batcher.submit(1)  # occupies the dispatcher
        time.sleep(0.05)
        queued = [batcher.submit(i) for i in (2, 3)]
        gate.set()
        batcher.close(drain=False)
        assert first.result(timeout=5) == 1
        failed = 0
        for future in queued:
            try:
                future.result(timeout=5)
            except ServiceClosed:
                failed += 1
        assert failed >= 1

    def test_close_is_idempotent(self):
        batcher = MicroBatcher(doubler, queue_limit=4)
        batcher.close()
        batcher.close()
