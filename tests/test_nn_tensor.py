"""Tests for repro.nn.tensor: autograd correctness via numeric gradients."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn import Tensor, no_grad
from repro.nn.functional import concat, stack


def numeric_grad(f, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar ``f()`` w.r.t. array ``x``."""
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        original = x[idx]
        x[idx] = original + eps
        plus = f()
        x[idx] = original - eps
        minus = f()
        x[idx] = original
        grad[idx] = (plus - minus) / (2 * eps)
        it.iternext()
    return grad


def check_gradients(build, *shapes, seed=0, tol=1e-6):
    """Compare autograd and numeric gradients for ``build(*tensors)``."""
    rng = np.random.default_rng(seed)
    tensors = [Tensor(rng.normal(size=s), requires_grad=True) for s in shapes]
    loss = build(*tensors)
    loss.backward()
    for tensor in tensors:
        numeric = numeric_grad(lambda: build(*[Tensor(t.data) for t in tensors]).item(), tensor.data)
        assert tensor.grad is not None
        np.testing.assert_allclose(tensor.grad, numeric, atol=tol, rtol=1e-4)


class TestArithmeticGradients:
    def test_add_broadcast(self):
        check_gradients(lambda a, b: (a + b).sum(), (3, 4), (4,))

    def test_sub(self):
        check_gradients(lambda a, b: (a - b).sum(), (2, 3), (2, 3))

    def test_mul_broadcast(self):
        check_gradients(lambda a, b: (a * b).sum(), (3, 4), (3, 1))

    def test_div(self):
        check_gradients(lambda a, b: (a / (b * b + 1.0)).sum(), (2, 2), (2, 2))

    def test_pow(self):
        check_gradients(lambda a: ((a * a + 1.0) ** 1.5).sum(), (3,))

    def test_neg_rsub_rdiv(self):
        check_gradients(lambda a: (1.0 - a).sum() + (2.0 / (a * a + 2.0)).sum(), (4,))

    def test_matmul(self):
        check_gradients(lambda a, b: (a @ b).sum(), (3, 4), (4, 2))

    def test_matmul_chain(self):
        check_gradients(lambda a, b, c: ((a @ b) @ c).sum(), (2, 3), (3, 3), (3, 2))


class TestActivationGradients:
    def test_tanh(self):
        check_gradients(lambda a: a.tanh().sum(), (5,))

    def test_sigmoid(self):
        check_gradients(lambda a: a.sigmoid().sum(), (5,))

    def test_relu(self):
        # keep away from the kink for numeric stability
        rng = np.random.default_rng(0)
        data = rng.normal(size=(6,))
        data[np.abs(data) < 0.1] = 0.5
        a = Tensor(data, requires_grad=True)
        a.relu().sum().backward()
        assert np.allclose(a.grad, (data > 0).astype(float))

    def test_exp_log(self):
        check_gradients(lambda a: ((a * a + 1.0).log() + a.exp()).sum(), (4,))


class TestReductionGradients:
    def test_sum_axis(self):
        check_gradients(lambda a: (a.sum(axis=0) ** 2.0).sum(), (3, 4))

    def test_sum_keepdims(self):
        check_gradients(lambda a: (a.sum(axis=1, keepdims=True) * a).sum(), (3, 4))

    def test_mean(self):
        check_gradients(lambda a: (a.mean(axis=1) ** 2.0).sum(), (2, 5))

    def test_max(self):
        rng = np.random.default_rng(3)
        data = rng.normal(size=(4, 3))
        a = Tensor(data, requires_grad=True)
        a.max(axis=1).sum().backward()
        assert a.grad.sum() == pytest.approx(4.0)


class TestShapeGradients:
    def test_reshape(self):
        check_gradients(lambda a: (a.reshape(6) ** 2.0).sum(), (2, 3))

    def test_transpose(self):
        check_gradients(lambda a, b: (a.transpose() @ b).sum(), (3, 2), (3, 4))

    def test_getitem_rows(self):
        idx = np.array([0, 2, 2])

        def build(a):
            return (a[idx] ** 2.0).sum()

        check_gradients(build, (4, 3))

    def test_concat(self):
        check_gradients(lambda a, b: (concat([a, b], axis=1) ** 2.0).sum(), (2, 3), (2, 2))

    def test_stack(self):
        check_gradients(lambda a, b: (stack([a, b], axis=0) ** 2.0).sum(), (4,), (4,))


class TestMechanics:
    def test_backward_requires_scalar(self):
        t = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(ValueError):
            (t * 2).backward()

    def test_no_grad_blocks_graph(self):
        t = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            out = (t * 2).sum()
        assert not out.requires_grad

    def test_detach(self):
        t = Tensor(np.ones(3), requires_grad=True)
        d = t.detach()
        assert not d.requires_grad
        assert d.data is t.data

    def test_grad_accumulates_across_backward(self):
        t = Tensor(np.ones(2), requires_grad=True)
        (t * 2).sum().backward()
        (t * 3).sum().backward()
        assert np.allclose(t.grad, [5.0, 5.0])

    def test_zero_grad(self):
        t = Tensor(np.ones(2), requires_grad=True)
        (t * 2).sum().backward()
        t.zero_grad()
        assert t.grad is None

    def test_shared_subexpression(self):
        t = Tensor(np.array([2.0]), requires_grad=True)
        y = t * t  # used twice below
        (y + y).sum().backward()
        assert t.grad[0] == pytest.approx(8.0)

    @settings(max_examples=25, deadline=None)
    @given(
        hnp.arrays(
            np.float64,
            hnp.array_shapes(min_dims=1, max_dims=2, max_side=4),
            elements=st.floats(-3, 3, allow_nan=False),
        )
    )
    def test_tanh_bounded_and_monotone_grad(self, data):
        t = Tensor(data, requires_grad=True)
        out = t.tanh()
        assert np.all(np.abs(out.data) <= 1.0)
        out.sum().backward()
        assert np.all(t.grad >= 0.0)
        assert np.all(t.grad <= 1.0)
