"""Golden regression test: ``LHMM.match`` pinned against a committed corpus.

The expectations live in ``tests/golden/golden_matches.json`` and cover the
whole pipeline — synthesis, training, candidate generation, decoding.  A
failure here means matcher behaviour *changed*; if the change is intended,
regenerate with ``python -m repro golden --regen`` and review the JSON diff
(``src/repro/testing/golden.py`` documents the frozen configuration).
"""

from __future__ import annotations

import pytest

from repro.core.trellis import TRELLIS_IMPLS
from repro.testing import golden


@pytest.fixture(scope="module")
def golden_corpus():
    path = golden.default_corpus_path()
    assert path.exists(), (
        f"missing {path}; generate it with `python -m repro golden --regen`"
    )
    return golden.load_corpus(path)


@pytest.fixture(scope="module")
def golden_matcher():
    dataset = golden.build_golden_dataset()
    return dataset, golden.build_golden_matcher(dataset)


class TestGoldenCorpus:
    def test_corpus_metadata_is_current(self, golden_corpus):
        """A corpus built from older frozen settings must not pass silently."""
        assert golden_corpus["version"] == golden.CORPUS_VERSION
        assert golden_corpus["dataset_seed"] == golden.GOLDEN_DATASET_SEED
        assert golden_corpus["model_seed"] == golden.GOLDEN_MODEL_SEED
        assert golden_corpus["num_trajectories"] == golden.GOLDEN_NUM_TRAJECTORIES
        assert golden_corpus["match_count"] == golden.GOLDEN_MATCH_COUNT
        assert len(golden_corpus["records"]) == golden.GOLDEN_MATCH_COUNT

    @pytest.mark.parametrize("impl", TRELLIS_IMPLS)
    def test_match_output_pinned_exactly(self, golden_matcher, golden_corpus, impl):
        dataset, matcher = golden_matcher
        saved = matcher.config.trellis_impl
        matcher.config.trellis_impl = impl
        try:
            records = golden.compute_golden_records(matcher, dataset)
        finally:
            matcher.config.trellis_impl = saved
        problems = golden.diff_records(records, golden_corpus["records"])
        assert problems == []

    def test_records_are_nontrivial(self, golden_corpus):
        """Guard against an accidentally-degenerate corpus (empty matches)."""
        for record in golden_corpus["records"]:
            assert len(record["matched_sequence"]) >= 2
            # Stitching may collapse repeated candidates, so the path can be
            # shorter than the sequence — but never empty.
            assert len(record["path"]) >= 1
