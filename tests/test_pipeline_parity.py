"""Differential parity: the batched pipeline equals the scalar reference.

``pipeline_impl`` selects how candidates, observation features, embeddings
and transition features are produced — per point (``scalar``) or stacked
per trajectory (``batched``).  The two must be *bit-identical* end to end:
same decoded paths, same matched candidates, same candidate sets, same
Viterbi score, warm or cold caches.  The trellis backend is exercised in
both combinations because the batched pipeline feeds the vectorized
trellis in production while the parity oracle runs the reference trellis.
"""

from __future__ import annotations

import pytest

from repro.core import OnlineLHMM
from repro.core.config import PIPELINE_IMPLS


def _reset_caches(matcher) -> None:
    matcher.engine.clear_cache()
    network = matcher.network
    network._near_memo.clear()
    network._route_turns.clear()
    network._index._box_cache.clear()
    matcher._pool_cache_obj = None


def _match_all(matcher, trajectories, pipeline_impl, trellis_impl):
    saved = (matcher.config.pipeline_impl, matcher.config.trellis_impl)
    matcher.config.pipeline_impl = pipeline_impl
    matcher.config.trellis_impl = trellis_impl
    _reset_caches(matcher)
    try:
        return [matcher.match(t) for t in trajectories]
    finally:
        matcher.config.pipeline_impl, matcher.config.trellis_impl = saved


@pytest.fixture(scope="module")
def parity_cases(tiny_dataset):
    return [s.cellular for s in tiny_dataset.samples[:12]]


def test_batched_pipeline_bit_identical_to_scalar(trained_lhmm, parity_cases):
    reference = _match_all(trained_lhmm, parity_cases, "scalar", "reference")
    batched = _match_all(trained_lhmm, parity_cases, "batched", "vectorized")
    for ref, got in zip(reference, batched):
        assert got.path == ref.path
        assert got.matched_sequence == ref.matched_sequence
        assert got.candidate_sets == ref.candidate_sets
        assert got.score == ref.score  # bitwise, not approx
        assert got.provenance == ref.provenance == "lhmm"


@pytest.mark.parametrize("trellis_impl", ["reference", "vectorized"])
def test_pipelines_agree_under_either_trellis(
    trained_lhmm, parity_cases, trellis_impl
):
    """Pipeline choice and trellis backend are independent axes; every
    combination decodes the same paths."""
    results = {
        impl: _match_all(trained_lhmm, parity_cases[:6], impl, trellis_impl)
        for impl in PIPELINE_IMPLS
    }
    assert [r.path for r in results["batched"]] == [
        r.path for r in results["scalar"]
    ]
    assert [r.score for r in results["batched"]] == [
        r.score for r in results["scalar"]
    ]


def test_warm_caches_do_not_change_answers(trained_lhmm, parity_cases):
    """Caches are value-transparent: a second (warm) batched pass returns
    exactly what the cold pass returned."""
    cold = _match_all(trained_lhmm, parity_cases, "batched", "vectorized")
    trained_lhmm.config.pipeline_impl = "batched"
    trained_lhmm.config.trellis_impl = "vectorized"
    try:
        warm = [trained_lhmm.match(t) for t in parity_cases]
    finally:
        trained_lhmm.config.pipeline_impl = "batched"
    assert [r.path for r in warm] == [r.path for r in cold]
    assert [r.score for r in warm] == [r.score for r in cold]


def test_streaming_parity_across_pipelines(trained_lhmm, parity_cases):
    """OnlineLHMM commits the same segments whichever pipeline feeds it.

    Unlike online-vs-batch parity (where attention context differs by
    design), both sides here are the same streaming decoder — only the
    candidate/feature plumbing changes, and that plumbing is bit-identical.
    """
    for trajectory in parity_cases[:4]:
        commits = {}
        for impl in PIPELINE_IMPLS:
            saved = trained_lhmm.config.pipeline_impl
            trained_lhmm.config.pipeline_impl = impl
            _reset_caches(trained_lhmm)
            try:
                online = OnlineLHMM(trained_lhmm, lag=4)
                for point in trajectory.points:
                    online.add_point(point)
                commits[impl] = online.finish()
            finally:
                trained_lhmm.config.pipeline_impl = saved
        assert commits["batched"] == commits["scalar"]
