"""Smoke tests over the example scripts.

All examples must at least parse and expose a ``main``; the cheapest one
(the custom-city pipeline) is executed end to end so the documented
low-level API path stays green.
"""

import ast
import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def _load(path: Path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_examples_exist(self):
        names = {p.stem for p in EXAMPLE_FILES}
        assert "quickstart" in names
        assert len(EXAMPLE_FILES) >= 3

    @pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
    def test_example_parses_and_has_main(self, path):
        tree = ast.parse(path.read_text())
        assert ast.get_docstring(tree), f"{path.name} lacks a docstring"
        functions = {
            node.name for node in tree.body if isinstance(node, ast.FunctionDef)
        }
        assert "main" in functions, f"{path.name} has no main()"

    def test_custom_city_pipeline_runs(self, capsys):
        module = _load(EXAMPLES_DIR / "custom_city_pipeline.py")
        module.main()
        out = capsys.readouterr().out
        assert "network:" in out
        assert "matched test trajectory" in out
