"""Tests for repro.nn.optim, loss, init, and serialization."""

import numpy as np
import pytest

from repro.nn import (
    MLP,
    SGD,
    Adam,
    Tensor,
    binary_cross_entropy_with_logits,
    cross_entropy_with_label_smoothing,
    load_state,
    mse_loss,
    save_state,
    xavier_uniform,
)
from repro.nn.module import Parameter


class TestOptimizers:
    def test_lr_must_be_positive(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.ones(2))], lr=0)

    def test_sgd_step_direction(self):
        p = Parameter(np.array([1.0]))
        p.grad = np.array([2.0])
        SGD([p], lr=0.1).step()
        assert p.data[0] == pytest.approx(0.8)

    def test_sgd_momentum(self):
        p = Parameter(np.array([0.0]))
        opt = SGD([p], lr=0.1, momentum=0.9)
        p.grad = np.array([1.0])
        opt.step()
        first = p.data.copy()
        p.grad = np.array([1.0])
        opt.step()
        assert (first[0] - p.data[0]) > 0.1  # momentum accelerates

    def test_adam_converges_on_quadratic(self):
        p = Parameter(np.array([5.0, -3.0]))
        opt = Adam([p], lr=0.1, weight_decay=0.0)
        for _ in range(300):
            opt.zero_grad()
            p.grad = 2.0 * p.data
            opt.step()
        assert np.allclose(p.data, 0.0, atol=1e-2)

    def test_adam_weight_decay_shrinks(self):
        p = Parameter(np.array([10.0]))
        opt = Adam([p], lr=0.01, weight_decay=1.0)
        for _ in range(50):
            p.grad = np.zeros(1)
            opt.step()
        assert abs(p.data[0]) < 10.0

    def test_skip_parameters_without_grad(self):
        p = Parameter(np.array([1.0]))
        Adam([p]).step()
        assert p.data[0] == 1.0

    def test_training_decreases_loss(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(64, 3))
        y = (x.sum(axis=1) > 0).astype(int)
        mlp = MLP([3, 16, 2], rng=1)
        opt = Adam(mlp.parameters(), lr=1e-2, weight_decay=0.0)
        losses = []
        for _ in range(60):
            opt.zero_grad()
            loss = cross_entropy_with_label_smoothing(mlp(Tensor(x)), y, 0.1)
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0] * 0.8


class TestLosses:
    def test_cross_entropy_matches_manual(self):
        logits = Tensor(np.array([[2.0, 0.0], [0.0, 2.0]]))
        targets = np.array([0, 1])
        loss = cross_entropy_with_label_smoothing(logits, targets, smoothing=0.0)
        manual = -np.log(np.exp(2) / (np.exp(2) + 1))
        assert loss.item() == pytest.approx(manual)

    def test_smoothing_raises_floor(self):
        logits = Tensor(np.array([[50.0, 0.0]]))
        hard = cross_entropy_with_label_smoothing(logits, np.array([0]), 0.0)
        smooth = cross_entropy_with_label_smoothing(logits, np.array([0]), 0.1)
        assert smooth.item() > hard.item()

    def test_cross_entropy_validation(self):
        with pytest.raises(ValueError):
            cross_entropy_with_label_smoothing(Tensor(np.ones((2, 3))), np.array([0]))
        with pytest.raises(ValueError):
            cross_entropy_with_label_smoothing(
                Tensor(np.ones((1, 2))), np.array([0]), smoothing=1.0
            )

    def test_bce_matches_manual(self):
        logits = Tensor(np.array([0.0]))
        loss = binary_cross_entropy_with_logits(logits, np.array([1.0]))
        assert loss.item() == pytest.approx(np.log(2.0))

    def test_bce_extreme_logits_stable(self):
        logits = Tensor(np.array([500.0, -500.0]))
        loss = binary_cross_entropy_with_logits(logits, np.array([1.0, 0.0]))
        assert np.isfinite(loss.item())
        assert loss.item() < 1e-6

    def test_bce_gradient_direction(self):
        logits = Tensor(np.array([0.0]), requires_grad=True)
        binary_cross_entropy_with_logits(logits, np.array([1.0])).backward()
        assert logits.grad[0] < 0  # pushing the logit up reduces loss

    def test_mse(self):
        loss = mse_loss(Tensor(np.array([1.0, 2.0])), np.array([0.0, 0.0]))
        assert loss.item() == pytest.approx(2.5)


class TestInitAndSerialization:
    def test_xavier_bounds(self):
        w = xavier_uniform((100, 50), rng=0)
        bound = np.sqrt(6.0 / 150)
        assert np.all(np.abs(w) <= bound)

    def test_xavier_vector(self):
        w = xavier_uniform((10,), rng=0)
        assert w.shape == (10,)

    def test_save_load_round_trip(self, tmp_path):
        a = MLP([3, 4, 2], rng=0)
        b = MLP([3, 4, 2], rng=9)
        path = tmp_path / "model.npz"
        save_state(a, path)
        load_state(b, path)
        x = Tensor(np.ones((2, 3)))
        assert np.allclose(a(x).numpy(), b(x).numpy())
