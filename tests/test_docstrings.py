"""Meta-test: every public item in the library carries a docstring."""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue
        yield importlib.import_module(info.name)


MODULES = list(_walk_modules())


class TestDocstrings:
    @pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
    def test_module_docstring(self, module):
        assert module.__doc__, f"{module.__name__} lacks a module docstring"

    @pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
    def test_public_classes_and_functions_documented(self, module):
        undocumented = []
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            if getattr(obj, "__module__", None) != module.__name__:
                continue  # re-export; documented at its home
            if not inspect.getdoc(obj):
                undocumented.append(name)
            if inspect.isclass(obj):
                for method_name, method in vars(obj).items():
                    if method_name.startswith("_"):
                        continue
                    if inspect.isfunction(method) and not inspect.getdoc(method):
                        undocumented.append(f"{name}.{method_name}")
        assert not undocumented, (
            f"undocumented public items in {module.__name__}: {undocumented}"
        )
