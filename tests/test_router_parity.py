"""Property tests: every routing backend agrees on every network.

Three implementations can answer the same segment-to-segment query — the
vectorised scipy engine, the pure-Python heap engine, and the UBODT table
router — and the matcher treats them interchangeably through the
:class:`~repro.network.router.Router` protocol, so they must agree on
route lengths, reachability, and path well-formedness everywhere.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import Point, Polyline
from repro.network import (
    RoadNetwork,
    RoadSegment,
    Router,
    ShortestPathEngine,
    Ubodt,
    UbodtRouter,
)


def random_network(seed: int) -> RoadNetwork:
    """A small random directed network: a chain plus random extra edges."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(4, 12))
    net = RoadNetwork()
    points = []
    for i in range(n):
        p = Point(float(rng.uniform(0.0, 2000.0)), float(rng.uniform(0.0, 2000.0)))
        net.add_node(i, p)
        points.append(p)
    edges: set[tuple[int, int]] = set()
    order = rng.permutation(n)
    for a, b in zip(order, order[1:]):
        edges.add((int(a), int(b)))
    for _ in range(int(rng.integers(n, 3 * n))):
        a, b = (int(x) for x in rng.integers(0, n, size=2))
        if a != b:
            edges.add((a, b))
    for seg_id, (a, b) in enumerate(sorted(edges)):
        net.add_segment(RoadSegment(seg_id, a, b, Polyline([points[a], points[b]])))
    return net.freeze()


def assert_route_well_formed(net: RoadNetwork, route) -> None:
    for a, b in zip(route.segments, route.segments[1:]):
        assert net.segments[b].start_node == net.segments[a].end_node
    driven = sum(net.segments[s].length for s in route.segments[1:])
    assert route.length == pytest.approx(driven, abs=1e-6)


class TestUbodtParity:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000))
    def test_router_matches_engine_on_random_networks(self, seed):
        net = random_network(seed)
        engine = ShortestPathEngine(net)
        table = Ubodt.build(net, delta_m=20_000.0)
        router = UbodtRouter(net, table, fallback=ShortestPathEngine(net))
        assert isinstance(router, Router) and isinstance(engine, Router)
        segs = sorted(net.segments)[:12]
        for a in segs:
            for b in segs:
                via_engine = engine.route(a, b)
                via_router = router.route(a, b)
                if via_engine is None:
                    assert via_router is None
                    assert math.isinf(router.route_length(a, b))
                    continue
                assert via_router is not None
                assert via_router.length == pytest.approx(via_engine.length)
                assert router.route_length(a, b) == pytest.approx(via_engine.length)
                assert_route_well_formed(net, via_router)
                assert_route_well_formed(net, via_engine)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_small_delta_still_agrees_via_fallback(self, seed):
        net = random_network(seed)
        engine = ShortestPathEngine(net)
        table = Ubodt.build(net, delta_m=400.0)
        router = UbodtRouter(net, table, fallback=ShortestPathEngine(net))
        segs = sorted(net.segments)[:8]
        for a in segs:
            for b in segs:
                expected = engine.route_length(a, b)
                got = router.route_length(a, b)
                if math.isinf(expected):
                    assert math.isinf(got)
                else:
                    assert got == pytest.approx(expected)


class TestBackendParity:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_scipy_and_python_backends_agree(self, seed):
        net = random_network(seed)
        fast = ShortestPathEngine(net)
        slow = ShortestPathEngine(net, use_scipy=False)
        if not fast.use_scipy:  # pragma: no cover - scipy-less environment
            pytest.skip("scipy unavailable")
        nodes = sorted(net.nodes)
        matrix = fast.distances(nodes, nodes)
        for i, u in enumerate(nodes):
            for j, v in enumerate(nodes):
                reference = slow.node_distance(u, v)
                if math.isinf(reference):
                    assert math.isinf(matrix[i, j])
                else:
                    assert matrix[i, j] == pytest.approx(reference)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000))
    def test_route_length_matrix_matches_per_pair(self, seed):
        net = random_network(seed)
        engine = ShortestPathEngine(net)
        table = Ubodt.build(net, delta_m=20_000.0)
        router = UbodtRouter(net, table, fallback=ShortestPathEngine(net))
        segs = sorted(net.segments)[:8]
        for backend in (engine, router):
            matrix = backend.route_length_matrix(segs, segs)
            for i, a in enumerate(segs):
                for j, b in enumerate(segs):
                    expected = engine.route_length(a, b)
                    if math.isinf(expected):
                        assert math.isinf(matrix[i, j])
                    else:
                        assert matrix[i, j] == pytest.approx(expected)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000))
    def test_route_many_matches_route(self, seed):
        net = random_network(seed)
        engine = ShortestPathEngine(net)
        segs = sorted(net.segments)[:8]
        pairs = [(a, b) for a in segs for b in segs]
        batched = engine.route_many(pairs)
        fresh = ShortestPathEngine(net)
        for (a, b), route in zip(pairs, batched):
            assert route == fresh.route(a, b)
