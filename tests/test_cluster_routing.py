"""Property tests for the cluster's consistent-hash session routing.

Two guarantees matter operationally and are asserted here:

* **stickiness** — routing is a pure function of (ring membership, key):
  any two ring instances with the same nodes agree on every key, so a
  respawned worker that keeps its name keeps all of its sessions;
* **minimal disruption** — removing a node re-routes *only* the keys that
  node owned (the consistent-hash invariant, exact), and the share of
  keys moved stays near 1/N rather than reshuffling everything (checked
  statistically on a fixed corpus).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ClusterUnavailable
from repro.serve import ConsistentHashRing

node_names = st.lists(
    st.text(alphabet="abcdefghij0123456789", min_size=1, max_size=8),
    min_size=1,
    max_size=8,
    unique=True,
)
keys = st.lists(st.text(min_size=0, max_size=32), min_size=1, max_size=64)


class TestStickiness:
    @given(nodes=node_names, session_keys=keys)
    @settings(max_examples=60, deadline=None)
    def test_independent_rings_agree(self, nodes, session_keys):
        """Same membership -> same owner for every key, on any instance."""
        a = ConsistentHashRing(tuple(nodes))
        b = ConsistentHashRing(tuple(reversed(nodes)))  # insertion order free
        for key in session_keys:
            assert a.route(key) == b.route(key)

    @given(nodes=node_names, session_keys=keys)
    @settings(max_examples=60, deadline=None)
    def test_add_is_idempotent(self, nodes, session_keys):
        ring = ConsistentHashRing(tuple(nodes))
        before = [ring.route(k) for k in session_keys]
        for node in nodes:
            ring.add(node)
        assert [ring.route(k) for k in session_keys] == before

    @given(session_keys=keys)
    @settings(max_examples=20, deadline=None)
    def test_single_node_owns_everything(self, session_keys):
        ring = ConsistentHashRing(("only",))
        assert all(ring.route(k) == "only" for k in session_keys)


class TestRemoval:
    @given(nodes=node_names, session_keys=keys, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_only_the_removed_nodes_keys_move(self, nodes, session_keys, data):
        """The consistent-hash invariant, exactly: a key changes owner
        iff its owner was removed."""
        ring = ConsistentHashRing(tuple(nodes))
        victim = data.draw(st.sampled_from(nodes))
        before = {k: ring.route(k) for k in session_keys}
        ring.remove(victim)
        if len(nodes) == 1:
            for key in session_keys:
                with pytest.raises(ClusterUnavailable):
                    ring.route(key)
            return
        for key in session_keys:
            after = ring.route(key)
            if before[key] == victim:
                assert after != victim
            else:
                assert after == before[key], (
                    f"key {key!r} moved from surviving node "
                    f"{before[key]!r} to {after!r}"
                )

    def test_rebalance_share_is_near_one_over_n(self):
        """Removing one of N workers moves ~1/N of sessions, not all."""
        nodes = tuple(f"w{i}" for i in range(6))
        ring = ConsistentHashRing(nodes, replicas=64)
        corpus = [f"s{i}-deadbeef{i:04x}" for i in range(3000)]
        before = {k: ring.route(k) for k in corpus}
        ring.remove("w3")
        moved = sum(1 for k in corpus if ring.route(k) != before[k])
        fraction = moved / len(corpus)
        # Exactly the keys w3 owned move; with 64 virtual nodes the owned
        # share concentrates around 1/6 ~ 16.7%.  A naive mod-N scheme
        # would move ~83% — the bound below separates the two regimes.
        assert 0.05 <= fraction <= 0.40, fraction
        assert moved == sum(1 for k in corpus if before[k] == "w3")

    def test_remove_unknown_node_is_a_noop(self):
        ring = ConsistentHashRing(("a", "b"))
        before = [ring.route(f"k{i}") for i in range(20)]
        ring.remove("zzz")
        assert [ring.route(f"k{i}") for i in range(20)] == before

    def test_empty_ring_raises_cluster_unavailable(self):
        ring = ConsistentHashRing()
        with pytest.raises(ClusterUnavailable):
            ring.route("anything")

    def test_nodes_property_and_len(self):
        ring = ConsistentHashRing(("a", "b", "c"))
        assert ring.nodes == {"a", "b", "c"}
        assert len(ring) == 3
        ring.remove("b")
        assert ring.nodes == {"a", "c"}
        assert len(ring) == 2

    def test_replicas_validated(self):
        with pytest.raises(ValueError):
            ConsistentHashRing(replicas=0)
