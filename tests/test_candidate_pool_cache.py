"""Regression tests for the per-tower candidate-pool cache.

Guards the fix for the learned pool re-deriving a tower's co-occurrence
extension per point: the extension is now a tuple cached per tower on the
relation graph, and the pool cache memoises whole pools per
``(tower_id, x, y)`` key — so identical tower ids must yield identical
(cached) pool contents without re-running the spatial kernel.
"""

from __future__ import annotations

import pytest

from repro.cellular.trajectory import TrajectoryPoint
from repro.core import RelationGraph
from repro.core.candidates import CandidatePoolCache, learned_candidate_pool


@pytest.fixture(scope="module")
def graph(tiny_dataset):
    return RelationGraph(tiny_dataset.network, tiny_dataset.towers).build(
        tiny_dataset.train
    )


@pytest.fixture()
def tower_points(tiny_dataset, graph):
    """Two cellular points at the same tower (plus a third, different one)."""
    towers = [t for t in tiny_dataset.towers if graph.cooccurrence_extension(t.tower_id)]
    assert len(towers) >= 2, "dataset mining produced no co-occurring towers"
    a, b = towers[0], towers[1]
    return [
        TrajectoryPoint(position=a.location, timestamp=0.0, tower_id=a.tower_id),
        TrajectoryPoint(position=a.location, timestamp=60.0, tower_id=a.tower_id),
        TrajectoryPoint(position=b.location, timestamp=120.0, tower_id=b.tower_id),
    ]


def test_cooccurrence_extension_is_cached_per_tower(graph, tiny_dataset):
    tower = next(iter(tiny_dataset.towers)).tower_id
    first = graph.cooccurrence_extension(tower)
    second = graph.cooccurrence_extension(tower)
    assert first is second  # cached tuple, not re-derived per point


def test_identical_tower_ids_get_identical_cached_pools(graph, tower_points):
    cache = CandidatePoolCache(graph, radius_m=1600.0, limit=50)
    pools = cache.pools(tower_points)
    # Same tower + position => same pool contents, different tower differs
    # (towers at different locations see different roads).
    assert pools[0] == pools[1]
    assert pools[0] != pools[2]
    # And the cached answer equals the scalar per-point builder exactly.
    for point, pool in zip(tower_points, pools):
        assert pool == learned_candidate_pool(
            graph, point, radius_m=1600.0, limit=50
        )


def test_repeat_towers_skip_the_spatial_kernel(graph, tower_points, monkeypatch):
    cache = CandidatePoolCache(graph, radius_m=1600.0, limit=50)
    network = graph.network
    calls = []
    original = type(network).segments_near_many

    def counting(self, points, radius):
        calls.append(len(points))
        return original(self, points, radius)

    monkeypatch.setattr(type(network), "segments_near_many", counting)
    first = cache.pools(tower_points)
    # Three points, two distinct (tower, position) keys: one bulk call
    # resolving exactly the two distinct misses.
    assert calls == [2]
    second = cache.pools(tower_points)
    assert calls == [2]  # fully answered from the cache
    assert second == first
    # Fresh lists each time: mutating a returned pool must not poison the
    # cache for the next caller.
    second[0].append(-1)
    assert cache.pools(tower_points)[0] == first[0]


def test_pools_features_blocks_are_memoised_per_key(graph, tower_points):
    cache = CandidatePoolCache(graph, radius_m=1600.0, limit=50)
    pools, features, counts, node_idx = cache.pools_features(tower_points)
    assert [len(p) for p in pools] == counts.tolist()
    assert features.shape[0] == int(counts.sum()) == node_idx.shape[0]
    # Identical tower/position keys share one cached feature block.
    k0 = int(counts[0])
    assert features[:k0].tolist() == features[k0 : 2 * k0].tolist()
    # A repeat call reuses the cached blocks and returns the same values.
    again = cache.pools_features(tower_points)
    assert again[1].tolist() == features.tolist()
    assert again[3].tolist() == node_idx.tolist()
