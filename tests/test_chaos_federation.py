"""Federation chaos tests: two real gateways under partition-grade fire.

Every scenario drives two ``python -m repro serve --cluster`` processes
joined into a federation through the real CLI flags, then breaks the
world the way ``docs/robustness.md`` promises to absorb:

* **SIGSTOP half-open** — a stopped peer answers nothing but its TCP
  stays open; the transport heartbeat must trip within its timeout, the
  survivor must answer for the lost peer's regions with bounded-time
  ``503`` + ``Retry-After``, and SIGCONT must heal the link;
* **SIGKILL mid-stream** — the session owner dies with no warning; the
  client fails over to the replica gateway, which adopts the journal and
  commits a path bit-identical to an uninterrupted decode, and the dead
  owner's shared-memory segments vanish;
* **frame-dropping proxy** — an asymmetric partition (B cannot hear A,
  A can hear B) lets both sides believe they own one session; the
  fencing tokens must ensure **exactly one commit** — the superseded
  owner's close is answered 409, never silently doubled.

Excluded from the default suite; run with ``pytest -m chaos -k
federation`` (CI does, as a blocking step, uploading both gateways'
control journals on failure).
"""

from __future__ import annotations

import os
import re
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path
from queue import Empty, Queue

import pytest

from repro.core import OnlineLHMM
from repro.datasets import save_dataset
from repro.serve import MatchingClient, ServeClientError, ServerBusy
from repro.serve import protocol
from repro.serve.shm import leaked_segments
from repro.testing import faults

pytestmark = pytest.mark.chaos

#: Where the gateways' control journals land (CI uploads these on failure).
JOURNAL_DIR = os.environ.get("REPRO_FED_JOURNAL_DIR")


@pytest.fixture(scope="module")
def cluster_paths(tmp_path_factory, trained_lhmm, tiny_dataset):
    root = tmp_path_factory.mktemp("federation-chaos")
    model_path = root / "model.npz"
    dataset_path = root / "tiny.json.gz"
    trained_lhmm.save(model_path)
    save_dataset(tiny_dataset, dataset_path)
    return str(dataset_path), str(model_path)


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def _journal_path(tmp_path, node: str) -> str:
    root = Path(JOURNAL_DIR) if JOURNAL_DIR else tmp_path
    root.mkdir(parents=True, exist_ok=True)
    return str(root / f"fed_journal_{node}.jsonl")


class Gateway:
    """One ``repro serve --cluster`` subprocess joined to the federation."""

    def __init__(
        self,
        node: str,
        cluster_paths,
        tmp_path,
        *,
        regions,
        fed_port: int,
        peers,
        transport: str = "socketpair",
        route_mode: str = "proxy",
    ) -> None:
        dataset_path, model_path = cluster_paths
        src = Path(__file__).resolve().parents[1] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(src)] + [p for p in [env.get("PYTHONPATH")] if p]
        )
        env.pop(faults.ENV_VAR, None)
        env.pop("REPRO_CLUSTER_JOURNAL", None)
        cmd = [
            sys.executable, "-u", "-m", "repro", "serve", "--cluster",
            "--workers", "1", "--port", "0", "--cache-size", "0",
            "--transport", transport,
            "--node", node, "--fed-port", str(fed_port),
            "--fed-heartbeat", "0.2", "--fed-heartbeat-timeout", "1.0",
            "--route-mode", route_mode,
            "--journal", _journal_path(tmp_path, node),
        ]
        for region in regions:
            cmd += ["--region", f"{region}={dataset_path}:{model_path}"]
        for peer in peers:
            cmd += ["--peer", peer]
        self.node = node
        self.fed_port = fed_port
        self.proc = subprocess.Popen(
            cmd, env=env, stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT, text=True,
        )
        self.lines: Queue = Queue()
        threading.Thread(
            target=lambda: [self.lines.put(l) for l in self.proc.stdout],
            daemon=True,
        ).start()
        self.host = ""
        self.port = 0

    def await_address(self, timeout_s: float = 120.0) -> None:
        deadline = time.monotonic() + timeout_s
        while not self.port:
            assert self.proc.poll() is None, f"{self.node} died during startup"
            try:
                line = self.lines.get(timeout=max(0.1, deadline - time.monotonic()))
            except Empty:
                pytest.fail(f"{self.node} never announced its address")
            matched = re.search(r"cluster gateway at http://([\d.]+):(\d+)", line)
            if matched:
                self.host, self.port = matched.group(1), int(matched.group(2))

    def client(self, **kwargs) -> MatchingClient:
        return MatchingClient(self.host, self.port, timeout=60.0, **kwargs)

    def kill(self, sig=signal.SIGKILL) -> None:
        if self.proc.poll() is None:
            os.kill(self.proc.pid, sig)

    def cleanup(self) -> None:
        if self.proc.poll() is None:
            try:  # it may be SIGSTOPped: resume so SIGKILL can land
                os.kill(self.proc.pid, signal.SIGCONT)
            except ProcessLookupError:
                pass
            self.proc.kill()
            self.proc.wait(timeout=15)


def _await(predicate, timeout_s: float = 60.0, message: str = "condition"):
    deadline = time.monotonic() + timeout_s
    while True:
        value = predicate()
        if value:
            return value
        assert time.monotonic() < deadline, f"timed out waiting for {message}"
        time.sleep(0.1)


def _peers_up(client: MatchingClient) -> bool:
    try:
        fed = client.health()["federation"]
    except Exception:  # noqa: BLE001 - gateway still booting
        return False
    return bool(fed["peers"]) and all(
        p["up"] and p["regions"] for p in fed["peers"].values()
    )


def _feed_failover(client, sid, point, seq, attempts: int = 60):
    """Feed one point, riding out 503/404 while failover converges."""
    for attempt in range(attempts):
        try:
            return client.feed_points(sid, [point], seq=seq)
        except (ServeClientError, ConnectionError, TimeoutError) as error:
            if isinstance(error, ServeClientError) and error.status not in (
                503, 404,
            ):
                raise
            if attempt == attempts - 1:
                raise
            time.sleep(0.25)


class FrameDropProxy:
    """A TCP forwarder that can silently eat bytes in both directions.

    While ``forwarding`` is False every byte is read and discarded but
    both sockets stay open — exactly the half-open shape a lossy link or
    a wedged middlebox produces, which only application heartbeats can
    detect.
    """

    def __init__(self, target_host: str, target_port: int) -> None:
        self.target = (target_host, target_port)
        self.forwarding = True
        self._server = socket.socket()
        self._server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._server.bind(("127.0.0.1", 0))
        self._server.listen(16)
        self.port = self._server.getsockname()[1]
        self._closing = False
        self._thread = threading.Thread(target=self._accept_loop, daemon=True)
        self._thread.start()

    def _accept_loop(self) -> None:
        while not self._closing:
            try:
                downstream, _ = self._server.accept()
            except OSError:
                return
            try:
                upstream = socket.create_connection(self.target, timeout=5)
            except OSError:
                downstream.close()
                continue
            for src, dst in ((downstream, upstream), (upstream, downstream)):
                threading.Thread(
                    target=self._pump, args=(src, dst), daemon=True
                ).start()

    def _pump(self, src: socket.socket, dst: socket.socket) -> None:
        try:
            while True:
                data = src.recv(65536)
                if not data:
                    break
                if self.forwarding:
                    dst.sendall(data)
                # else: dropped on the floor; the connection stays open.
        except OSError:
            pass
        for sock in (src, dst):
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            sock.close()

    def blackhole(self) -> None:
        self.forwarding = False

    def heal(self) -> None:
        self.forwarding = True

    def close(self) -> None:
        self._closing = True
        self._server.close()


# --------------------------------------------------------------------------
# Scenario 1: SIGSTOP half-open
# --------------------------------------------------------------------------
class TestHalfOpenPeer:
    def test_sigstop_trips_heartbeat_degrades_and_recovers(
        self, cluster_paths, tmp_path, trained_lhmm, tiny_dataset
    ):
        """SIGSTOP a peer: its TCP stays open but nothing answers.  The
        survivor must detect it via heartbeats within seconds, answer the
        stopped peer's regions with bounded-time 503 + Retry-After (not a
        hang), report ``degraded`` on /healthz — and heal on SIGCONT."""
        port_a, port_b = _free_port(), _free_port()
        a = Gateway(
            "node-a", cluster_paths, tmp_path, regions=("default",),
            fed_port=port_a, peers=[f"node-b=127.0.0.1:{port_b}"],
        )
        b = Gateway(
            "node-b", cluster_paths, tmp_path, regions=("uptown",),
            fed_port=port_b, peers=[f"node-a=127.0.0.1:{port_a}"],
        )
        try:
            a.await_address()
            b.await_address()
            client = a.client()
            _await(lambda: _peers_up(client), message="federation links up")

            sample = tiny_dataset.test[0]
            expected = protocol.encode_match_result(trained_lhmm.match(sample.cellular))
            assert client.match([sample.cellular], region="uptown")[0] == expected

            b.kill(signal.SIGSTOP)
            detect_start = time.monotonic()
            _await(
                lambda: client.health()["federation"]["partitioned"] == ["node-b"],
                timeout_s=15.0,
                message="heartbeat-timeout partition detection",
            )
            assert time.monotonic() - detect_start < 10.0
            assert client.health()["status"] == "degraded"

            # The lost peer's region degrades in bounded time — never hangs.
            ask_start = time.monotonic()
            with pytest.raises(ServerBusy) as excinfo:
                client.match([sample.cellular], region="uptown")
            assert time.monotonic() - ask_start < 10.0
            assert excinfo.value.payload["code"] == "region_partitioned"
            assert excinfo.value.retry_after_s > 0
            # Its own region keeps serving through the partition.
            assert client.match([sample.cellular], region="default")[0] == expected

            b.kill(signal.SIGCONT)
            _await(
                lambda: client.health()["federation"]["partitioned"] == [],
                message="partition healing after SIGCONT",
            )
            assert client.match([sample.cellular], region="uptown")[0] == expected
            assert client.health()["status"] == "ok"
        finally:
            b.cleanup()
            a.cleanup()


# --------------------------------------------------------------------------
# Scenario 2: SIGKILL mid-stream, journal-replica failover
# --------------------------------------------------------------------------
class TestOwnerSigkillFailover:
    def test_session_fails_over_to_replica_bit_identically(
        self, cluster_paths, tmp_path, trained_lhmm, tiny_dataset
    ):
        """SIGKILL the gateway owning a mid-flight streaming session (a
        TCP-transport deployment).  The client's fallback target adopts
        the replicated journal and the committed path is bit-identical to
        an uninterrupted ``OnlineLHMM`` decode; the dead gateway's shared
        segments are unlinked even though its workers never saw a signal."""
        baseline = set(leaked_segments())
        port_a, port_b = _free_port(), _free_port()
        a = Gateway(
            "node-a", cluster_paths, tmp_path, regions=("default",),
            fed_port=port_a, peers=[f"node-b=127.0.0.1:{port_b}"],
            transport="tcp",
        )
        try:
            a.await_address()
            a_segments = set(leaked_segments()) - baseline
            assert a_segments, "node-a published no segments?"
            b = Gateway(
                "node-b", cluster_paths, tmp_path, regions=("default",),
                fed_port=port_b, peers=[f"node-a=127.0.0.1:{port_a}"],
            )
        except BaseException:
            a.cleanup()
            raise
        try:
            b.await_address()
            _await(lambda: _peers_up(a.client()), message="links up on node-a")
            _await(lambda: _peers_up(b.client()), message="links up on node-b")

            client = a.client(
                fallbacks=[(b.host, b.port)], failover_deadline_s=45.0
            )
            sample = tiny_dataset.test[1]
            points = list(sample.cellular.points)
            half = len(points) // 2
            assert half >= 1

            session = client.create_session(lag=3, region="default")
            sid = session.session_id
            for point in points[:half]:
                session.feed(point)

            a.kill(signal.SIGKILL)
            assert a.proc.wait(timeout=30) == -signal.SIGKILL

            # The same session object keeps feeding: the client rotates to
            # the fallback, node-b adopts the replica journal, the stream
            # continues.  seq idempotency absorbs any ambiguous retry.
            for seq, point in enumerate(points[half:], start=half):
                _feed_failover(client, sid, point, seq)
            closed = client.close_session(sid)

            expected = OnlineLHMM(trained_lhmm, lag=3).match_stream(sample.cellular)
            assert closed["path"] == expected

            survivor = b.client()
            counters = survivor.metrics()["counters"]
            assert counters["fed_adoptions_total"] >= 1

            # TCP workers hold no janitor guard, so the dead gateway alone
            # keyed the cleanup: its segments must already be unlinking.
            _await(
                lambda: not (set(leaked_segments()) & a_segments),
                timeout_s=30.0,
                message="dead owner's segments to unlink",
            )
        finally:
            b.cleanup()
            a.cleanup()


# --------------------------------------------------------------------------
# Scenario 3: asymmetric frame-dropping partition — no double commit
# --------------------------------------------------------------------------
class TestSplitBrainFencing:
    def test_partition_yields_exactly_one_commit(
        self, cluster_paths, tmp_path, trained_lhmm, tiny_dataset
    ):
        """Drop every frame from node-b's view of node-a while node-a can
        still reach node-b.  Both gateways now hold a live copy of one
        session — the adopted replica on node-b and the original on
        node-a.  The fencing tokens must let exactly one commit through:
        node-b's adoption carries the higher fence, so node-a's close is
        answered 409 (``session_fenced``) and only node-b's close emits a
        path — bit-identical to the uninterrupted decode."""
        port_a, port_b = _free_port(), _free_port()
        proxy = FrameDropProxy("127.0.0.1", port_a)
        a = Gateway(
            "node-a", cluster_paths, tmp_path, regions=("default",),
            fed_port=port_a, peers=[f"node-b=127.0.0.1:{port_b}"],
        )
        b = Gateway(
            "node-b", cluster_paths, tmp_path, regions=("default",),
            fed_port=port_b, peers=[f"node-a=127.0.0.1:{proxy.port}"],
        )
        try:
            a.await_address()
            b.await_address()
            client_a, client_b = a.client(), b.client()
            _await(lambda: _peers_up(client_a), message="links up on node-a")
            _await(lambda: _peers_up(client_b), message="links up on node-b")

            sample = tiny_dataset.test[2]
            points = list(sample.cellular.points)
            half = len(points) // 2
            session = client_a.create_session(lag=3, region="default")
            sid = session.session_id
            for seq, point in enumerate(points[:half]):
                client_a.feed_points(sid, [point], seq=seq)

            # Partition one direction only: node-b stops hearing node-a.
            proxy.blackhole()
            _await(
                lambda: client_b.health()["federation"]["partitioned"]
                == ["node-a"],
                timeout_s=15.0,
                message="node-b declaring node-a partitioned",
            )
            # ... while node-a still believes the federation is whole.
            assert client_a.health()["federation"]["partitioned"] == []

            # Clients that can only reach node-b drive the adoption.
            for seq, point in enumerate(points[half:], start=half):
                _feed_failover(client_b, sid, point, seq)
            assert client_b.metrics()["counters"]["fed_adoptions_total"] >= 1

            # The superseded owner tries to commit over its (still-live)
            # link to node-b: the fence rejects it — no double commit.
            with pytest.raises(ServeClientError) as fenced:
                client_a.close_session(sid)
            assert fenced.value.status == 409
            assert fenced.value.payload["code"] == "session_fenced"

            closed = client_b.close_session(sid)
            expected = OnlineLHMM(trained_lhmm, lag=3).match_stream(sample.cellular)
            assert closed["path"] == expected

            # Heal the link: the survivors re-converge, nothing re-commits.
            proxy.heal()
            _await(
                lambda: client_b.health()["federation"]["partitioned"] == [],
                message="partition healing after proxy restore",
            )
            with pytest.raises(ServeClientError) as gone:
                client_b.close_session(sid)
            assert gone.value.status == 404  # committed and gone — exactly once
        finally:
            proxy.close()
            b.cleanup()
            a.cleanup()
