"""Tests for repro.datasets.io (dataset persistence)."""

import pytest

from repro.datasets import (
    dataset_from_dict,
    dataset_to_dict,
    load_dataset,
    save_dataset,
)


class TestDatasetRoundTrip:
    def test_file_round_trip(self, tiny_dataset, tmp_path):
        path = tmp_path / "city.json.gz"
        save_dataset(tiny_dataset, path)
        loaded = load_dataset(path)
        assert loaded.name == tiny_dataset.name
        assert len(loaded) == len(tiny_dataset)
        assert loaded.network.num_segments == tiny_dataset.network.num_segments
        assert len(loaded.towers) == len(tiny_dataset.towers)

    def test_round_trip_preserves_samples(self, tiny_dataset, tmp_path):
        path = tmp_path / "city.json.gz"
        save_dataset(tiny_dataset, path)
        loaded = load_dataset(path)
        for original, restored in zip(tiny_dataset.samples, loaded.samples):
            assert restored.sample_id == original.sample_id
            assert restored.truth_path == original.truth_path
            assert restored.sim_path == original.sim_path
            assert len(restored.cellular) == len(original.cellular)
            assert restored.cellular.tower_ids() == original.cellular.tower_ids()
            assert [p.timestamp for p in restored.gps] == [
                p.timestamp for p in original.gps
            ]

    def test_round_trip_preserves_splits(self, tiny_dataset, tmp_path):
        path = tmp_path / "city.json.gz"
        save_dataset(tiny_dataset, path)
        loaded = load_dataset(path)
        assert [s.sample_id for s in loaded.train] == [
            s.sample_id for s in tiny_dataset.train
        ]
        assert [s.sample_id for s in loaded.test] == [
            s.sample_id for s in tiny_dataset.test
        ]

    def test_loaded_dataset_supports_matching(self, tiny_dataset, trained_lhmm, tmp_path):
        """A persisted+reloaded dataset must feed the matcher unchanged."""
        path = tmp_path / "city.json.gz"
        save_dataset(tiny_dataset, path)
        loaded = load_dataset(path)
        sample = loaded.test[0]
        result = trained_lhmm.match(sample.cellular)
        assert result.path

    def test_version_check(self, tiny_dataset):
        data = dataset_to_dict(tiny_dataset)
        data["version"] = 99
        with pytest.raises(ValueError):
            dataset_from_dict(data)
