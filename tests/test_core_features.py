"""Tests for repro.core.features."""

import numpy as np
import pytest

from repro.core import RelationGraph
from repro.core.features import (
    NUM_OBSERVATION_FEATURES,
    NUM_TRANSITION_FEATURES,
    observation_feature_matrix,
    observation_features,
    route_turn_sum_deg,
    transition_features,
)


@pytest.fixture(scope="module")
def graph(tiny_dataset):
    return RelationGraph(tiny_dataset.network, tiny_dataset.towers).build(
        tiny_dataset.train
    )


class TestObservationFeatures:
    def test_matrix_shape(self, graph, tiny_dataset):
        sample = tiny_dataset.train[0]
        point = sample.cellular.points[0]
        segs = sorted(tiny_dataset.network.segments)[:7]
        matrix = observation_feature_matrix(graph, point, segs)
        assert matrix.shape == (7, NUM_OBSERVATION_FEATURES)

    def test_base_features_consistent(self, graph, tiny_dataset):
        sample = tiny_dataset.train[0]
        point = sample.cellular.points[0]
        segs = sorted(tiny_dataset.network.segments)[:5]
        matrix = observation_feature_matrix(graph, point, segs)
        for row, seg in zip(matrix, segs):
            base = observation_features(graph, point, seg)
            assert row[0] == pytest.approx(base[0])
            assert row[1] == pytest.approx(base[1])

    def test_rank_features_in_unit_interval(self, graph, tiny_dataset):
        sample = tiny_dataset.train[0]
        point = sample.cellular.points[0]
        segs = sorted(tiny_dataset.network.segments)[:9]
        matrix = observation_feature_matrix(graph, point, segs)
        assert np.all(matrix[:, 2] >= 0) and np.all(matrix[:, 2] < 1)
        assert np.all(matrix[:, 3] >= 0) and np.all(matrix[:, 3] < 1)

    def test_rank_columns_can_be_disabled(self, graph, tiny_dataset):
        sample = tiny_dataset.train[0]
        point = sample.cellular.points[0]
        segs = sorted(tiny_dataset.network.segments)[:6]
        base = observation_feature_matrix(graph, point, segs, include_ranks=False)
        full = observation_feature_matrix(graph, point, segs, include_ranks=True)
        assert base.shape == (6, 2)
        assert full.shape == (6, 4)
        assert (base == full[:, :2]).all()

    def test_nearest_segment_gets_rank_zero(self, graph, tiny_dataset):
        sample = tiny_dataset.train[0]
        point = sample.cellular.points[0]
        segs = sorted(tiny_dataset.network.segments)[:9]
        matrix = observation_feature_matrix(graph, point, segs)
        nearest_row = int(np.argmin(matrix[:, 0]))
        assert matrix[nearest_row, 2] == 0.0


class TestTransitionFeatures:
    def test_shape_and_ranges(self, tiny_dataset):
        engine = tiny_dataset.engine
        sample = tiny_dataset.train[0]
        truth = sample.truth_path
        route = engine.route(truth[0], truth[min(3, len(truth) - 1)])
        assert route is not None
        features = transition_features(
            tiny_dataset.network, route, sample.cellular[0], sample.cellular[1]
        )
        assert features.shape == (NUM_TRANSITION_FEATURES,)
        assert features[0] >= 0.0
        assert 0.0 <= features[1] <= 5.0
        assert 0.0 <= features[2] <= 3.0

    def test_straight_route_has_low_turning(self, tiny_dataset):
        engine = tiny_dataset.engine
        net = tiny_dataset.network
        seg = sorted(net.segments)[0]
        route = engine.route(seg, seg)
        assert route_turn_sum_deg(net, route) < 60.0

    def test_turn_sum_nonnegative(self, tiny_dataset):
        engine = tiny_dataset.engine
        net = tiny_dataset.network
        segs = sorted(net.segments)
        route = engine.route(segs[0], segs[40])
        if route is not None:
            assert route_turn_sum_deg(net, route) >= 0.0
