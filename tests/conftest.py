"""Shared test fixtures: small, deterministic substrates.

Session-scoped fixtures keep the suite fast: the tiny city, dataset, and a
trained LHMM are each built once.  Tests that mutate state must build their
own instances.
"""

from __future__ import annotations

import pytest

from repro.cellular import (
    SimulationConfig,
    TowerPlacementConfig,
    VehicleSimulator,
    place_towers,
)
from repro.core import LHMM, LHMMConfig
from repro.datasets import DatasetConfig, make_city_dataset
from repro.network import CityConfig, ShortestPathEngine, generate_city_network


TINY_CITY = CityConfig(
    grid_rows=10,
    grid_cols=10,
    block_size_m=250.0,
    density_gradient=0.5,
    removal_prob=0.08,
    one_way_prob=0.05,
)

TINY_SIMULATION = SimulationConfig(
    min_trip_m=900.0,
    max_trip_m=2200.0,
    cellular_interval_mean_s=35.0,
    cellular_interval_sigma_s=10.0,
    cellular_interval_max_s=90.0,
    gps_interval_s=12.0,
)

TINY_TOWERS = TowerPlacementConfig(base_spacing_m=350.0, spacing_gradient=1.0)


def tiny_lhmm_config() -> LHMMConfig:
    """A configuration small enough to train inside a unit test."""
    return LHMMConfig(
        embedding_dim=12,
        het_layers=1,
        mlp_hidden=12,
        candidate_k=10,
        candidate_pool=50,
        candidate_radius_m=1600.0,
        epochs=2,
        batch_size=4,
        negatives_per_positive=3,
    )


@pytest.fixture(scope="session")
def tiny_network():
    """A ~200-node synthetic city network."""
    return generate_city_network(TINY_CITY, rng=7)


@pytest.fixture(scope="session")
def tiny_towers(tiny_network):
    """Towers deployed over the tiny network."""
    return place_towers(tiny_network, TINY_TOWERS, rng=7)


@pytest.fixture(scope="session")
def tiny_engine(tiny_network):
    """A routing engine over the tiny network."""
    return ShortestPathEngine(tiny_network)


@pytest.fixture(scope="session")
def tiny_simulator(tiny_network, tiny_towers):
    """A vehicle simulator over the tiny city."""
    return VehicleSimulator(tiny_network, tiny_towers, TINY_SIMULATION, rng=7)


@pytest.fixture(scope="session")
def tiny_dataset():
    """A complete small dataset with oracle ground truth (fast)."""
    config = DatasetConfig(
        name="tiny",
        city=TINY_CITY,
        towers=TINY_TOWERS,
        simulation=TINY_SIMULATION,
        num_trajectories=40,
        groundtruth="oracle",
    )
    return make_city_dataset(config, rng=7)


@pytest.fixture(scope="session")
def gps_dataset():
    """A small dataset with the paper's GPS-HMM ground-truth pipeline."""
    config = DatasetConfig(
        name="tiny-gps",
        city=TINY_CITY,
        towers=TINY_TOWERS,
        simulation=TINY_SIMULATION,
        num_trajectories=15,
        groundtruth="gps_hmm",
    )
    return make_city_dataset(config, rng=9)


@pytest.fixture(scope="session")
def trained_lhmm(tiny_dataset):
    """An LHMM fitted on the tiny dataset (shared, read-only)."""
    return LHMM(tiny_lhmm_config(), rng=3).fit(tiny_dataset)
