"""Property test: fixed-lag streaming equals batch decoding when the lag
covers the whole trajectory.

This pins down the *only* intended difference between :class:`OnlineLHMM`
and :class:`LHMM.match` — the fixed-lag commitment horizon — and guards
against lattice drift (scoring, routing, tie-breaking, or backtracking
diverging between the two implementations).

The matcher under test ablates the implicit (attention-based) probability
components and the shortcut pass, because those are *documented*
online/batch differences, not drift:

* the batch context/relevance attention sees the whole trajectory
  (including future points), while the streaming decoder can only attend
  over the points received so far — with implicit components on, exact
  parity is impossible by construction;
* shortcut optimisation (Alg. 2) is a whole-path pass the streaming
  decoder deliberately skips.

With those off, the two decoders walk mathematically identical lattices,
so ``lag >= len(trajectory)`` must reproduce ``LHMM.match`` exactly, on
every trajectory — under *both* trellis backends (the streaming decoder
has a vectorized layer update mirroring :class:`VectorizedTrellis`, and
parity must survive it).  Conversely a small lag may legitimately commit
early and diverge — that trade-off is asserted as "documented" by the
bounded CMF test in ``test_core_online.py``.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import LHMM, LHMMConfig, OnlineLHMM
from repro.core.trellis import TRELLIS_IMPLS


@pytest.fixture(scope="module")
def parity_lhmm(tiny_dataset):
    """An LHMM whose online/batch lattices are exactly comparable."""
    config = LHMMConfig(
        embedding_dim=12,
        het_layers=1,
        mlp_hidden=12,
        candidate_k=10,
        candidate_pool=50,
        candidate_radius_m=1600.0,
        epochs=2,
        batch_size=4,
        negatives_per_positive=3,
        use_implicit_observation=False,
        use_implicit_transition=False,
        shortcut_k=1,  # requested but inert: use_shortcuts=False gates it
        use_shortcuts=False,
    )
    return LHMM(config, rng=5).fit(tiny_dataset)


@pytest.mark.parametrize("impl", TRELLIS_IMPLS)
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(data=st.data())
def test_full_lag_streaming_equals_batch(data, impl, parity_lhmm, tiny_dataset):
    """For random trajectory slices, lag >= n commits == batch segments."""
    samples = tiny_dataset.samples
    sample = samples[data.draw(st.integers(0, len(samples) - 1), label="sample")]
    points = sample.cellular.points
    start = data.draw(st.integers(0, len(points) - 2), label="start")
    length = data.draw(st.integers(2, len(points) - start), label="length")
    keep_every = data.draw(st.integers(1, 3), label="keep_every")

    from repro.cellular.trajectory import Trajectory

    trajectory = Trajectory(
        points=points[start : start + length], trajectory_id=sample.sample_id
    ).subsampled(keep_every)

    saved_impl = parity_lhmm.config.trellis_impl
    parity_lhmm.config.trellis_impl = impl
    try:
        batch = parity_lhmm.match(trajectory)
        online = OnlineLHMM(
            parity_lhmm, lag=len(trajectory), context_window=len(trajectory)
        )
        for point in trajectory.points:
            online.add_point(point)
        # With lag >= n nothing may commit before finish: the whole
        # trajectory is still pending (the latency cost of full-batch
        # accuracy).
        assert online.pending_points() == len(trajectory)
        assert online.committed_path == []

        assert online.finish() == batch.path
    finally:
        parity_lhmm.config.trellis_impl = saved_impl


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(sample_index=st.integers(0, 39), lag=st.integers(1, 3))
def test_small_lag_commits_are_prefix_stable(sample_index, lag, parity_lhmm, tiny_dataset):
    """Fixed-lag commits never retract: each commit extends the previous.

    (The documented trade-off: a small lag can diverge from batch output,
    but what is committed stays committed.)
    """
    sample = tiny_dataset.samples[sample_index % len(tiny_dataset.samples)]
    online = OnlineLHMM(parity_lhmm, lag=lag)
    previous: list[int] = []
    for point in sample.cellular.points:
        online.add_point(point)
        committed = online.committed_path
        assert committed[: len(previous)] == previous
        previous = committed
    final = online.finish()
    assert final[: len(previous)] == previous
