"""Tests for repro.network.ubodt (precomputed routing table)."""

import math

import numpy as np
import pytest

from repro.network import ShortestPathEngine, Ubodt, UbodtRouter
from tests.test_network_shortest_path import line_network


class TestBuild:
    def test_rejects_bad_delta(self):
        with pytest.raises(ValueError):
            Ubodt(0.0)

    def test_rows_within_bound(self):
        net = line_network(6)
        table = Ubodt.build(net, delta_m=250.0)
        assert len(table) > 0
        for (source, target), (distance, _) in table.rows():
            assert distance <= 250.0
            assert source != target

    def test_lookup_self_is_zero(self):
        net = line_network(4)
        table = Ubodt.build(net, delta_m=500.0)
        assert table.lookup(2, 2) == (0.0, -1)

    def test_lookup_out_of_range(self):
        net = line_network(10)
        table = Ubodt.build(net, delta_m=150.0)
        assert table.lookup(0, 9) is None

    def test_distances_match_dijkstra(self, tiny_network):
        table = Ubodt.build(tiny_network, delta_m=1200.0)
        engine = ShortestPathEngine(tiny_network)
        nodes = sorted(tiny_network.nodes)[:15]
        checked = 0
        for u in nodes:
            for v in nodes:
                row = table.lookup(u, v)
                if row is None or u == v:
                    continue
                assert row[0] == pytest.approx(engine.node_distance(u, v))
                checked += 1
        assert checked > 10


class TestLookupMany:
    def test_matches_scalar_lookup(self, tiny_network):
        table = Ubodt.build(tiny_network, delta_m=900.0)
        nodes = sorted(tiny_network.nodes)[:20]
        sources = np.repeat(nodes, len(nodes))
        targets = np.tile(nodes, len(nodes))
        distances, firsts = table.lookup_many(sources, targets)
        for s, t, d, f in zip(sources, targets, distances, firsts):
            scalar = table.lookup(int(s), int(t))
            if scalar is None:
                assert math.isinf(d) and f == -2
            else:
                assert d == pytest.approx(scalar[0])
                assert f == scalar[1]

    def test_self_pairs_are_zero(self):
        table = Ubodt.build(line_network(4), delta_m=500.0)
        distances, firsts = table.lookup_many(np.array([2, 0]), np.array([2, 0]))
        assert distances.tolist() == [0.0, 0.0]
        assert firsts.tolist() == [-1, -1]

    def test_out_of_range_ids_miss(self):
        table = Ubodt.build(line_network(4), delta_m=500.0)
        distances, firsts = table.lookup_many(
            np.array([0, 10_000]), np.array([10_000, 1])
        )
        assert np.isinf(distances).all()
        assert firsts.tolist() == [-2, -2]

    def test_empty_table(self):
        table = Ubodt(100.0)
        distances, _ = table.lookup_many(np.array([1]), np.array([2]))
        assert math.isinf(distances[0])


class TestPersistence:
    def test_round_trip(self, tiny_network, tmp_path):
        table = Ubodt.build(tiny_network, delta_m=800.0)
        path = tmp_path / "table.npz"
        table.save(path)
        loaded = Ubodt.load(path)
        assert loaded.delta_m == table.delta_m
        assert len(loaded) == len(table)
        sample_key = next(iter(table.rows()))[0]
        assert loaded.lookup(*sample_key) == pytest.approx(table.lookup(*sample_key))

    def test_empty_table_round_trip(self, tmp_path):
        table = Ubodt(100.0)
        path = tmp_path / "empty.npz"
        table.save(path)
        assert len(Ubodt.load(path)) == 0


class TestRouter:
    def test_routes_match_engine(self, tiny_network):
        table = Ubodt.build(tiny_network, delta_m=2500.0)
        engine = ShortestPathEngine(tiny_network)
        router = UbodtRouter(tiny_network, table, fallback=engine)
        segs = sorted(tiny_network.segments)[:12]
        for a in segs:
            for b in segs:
                via_table = router.route_length(a, b)
                via_engine = engine.route_length(a, b)
                if math.isinf(via_engine):
                    assert math.isinf(via_table)
                else:
                    assert via_table == pytest.approx(via_engine)

    def test_route_segments_are_consecutive(self, tiny_network):
        table = Ubodt.build(tiny_network, delta_m=2500.0)
        router = UbodtRouter(tiny_network, table)
        segs = sorted(tiny_network.segments)
        route = router.route(segs[0], segs[25])
        if route is not None:
            for a, b in zip(route.segments, route.segments[1:]):
                assert (
                    tiny_network.segments[b].start_node
                    == tiny_network.segments[a].end_node
                )

    def test_fallback_used_beyond_delta(self, tiny_network):
        table = Ubodt.build(tiny_network, delta_m=300.0)
        router = UbodtRouter(tiny_network, table)
        segs = sorted(tiny_network.segments)
        far_a, far_b = segs[0], segs[-1]
        router.route(far_a, far_b)
        assert router.fallback_hits >= 1

    def test_table_used_within_delta(self, tiny_network):
        table = Ubodt.build(tiny_network, delta_m=2500.0)
        router = UbodtRouter(tiny_network, table)
        net = tiny_network
        # a pair one hop apart but not directly adjacent
        for seg_id in sorted(net.segments)[:50]:
            for mid in net.successors(seg_id):
                for nxt in net.successors(mid):
                    if (
                        nxt != seg_id
                        and net.segments[nxt].start_node
                        != net.segments[seg_id].end_node
                    ):
                        router.route(seg_id, nxt)
                        if router.table_hits:
                            assert router.table_hits >= 1
                            return
        pytest.skip("no suitable pair found")
