"""End-to-end integration tests across the full pipeline."""

import numpy as np
import pytest

from repro import LHMM, evaluate_matcher
from repro.baselines import STMatching
from repro.eval.metrics import hitting_ratio
from tests.conftest import tiny_lhmm_config


class TestEndToEnd:
    def test_full_pipeline_metrics_are_sane(self, trained_lhmm, tiny_dataset):
        result = evaluate_matcher(
            trained_lhmm, tiny_dataset, tiny_dataset.test[:5], "LHMM"
        )
        row = result.row()
        assert 0.0 <= row["precision"] <= 1.0
        assert 0.0 <= row["recall"] <= 1.0
        assert row["rmf"] >= 0.0
        assert 0.0 <= row["cmf50"] <= 1.0
        assert 0.0 <= row["hr"] <= 1.0
        assert row["avg_time"] > 0.0

    def test_lhmm_better_than_untrained_observation(self, trained_lhmm, tiny_dataset):
        """The learned candidates must hit the truth path most of the time."""
        hits = []
        for sample in tiny_dataset.test[:5]:
            result = trained_lhmm.match(sample.cellular)
            hits.append(hitting_ratio(result.candidate_sets, sample.truth_path))
        assert np.mean(hits) > 0.5

    def test_lhmm_and_baseline_share_substrate(self, trained_lhmm, tiny_dataset):
        baseline = STMatching(tiny_dataset)
        baseline.config.candidate_k = 6
        sample = tiny_dataset.test[0]
        lhmm_result = trained_lhmm.match(sample.cellular)
        stm_result = baseline.match(sample.cellular)
        all_segments = set(tiny_dataset.network.segments)
        assert set(lhmm_result.path) <= all_segments
        assert set(stm_result.path) <= all_segments

    def test_shortcuts_never_hurt_score(self, tiny_dataset):
        """Matching with shortcuts must score at least as high (Eq. 21)."""
        config_s = tiny_lhmm_config()
        config_s.use_shortcuts = True
        matcher = LHMM(config_s, rng=3).fit(tiny_dataset)
        for sample in tiny_dataset.test[:3]:
            with_s = matcher.match(sample.cellular)
            matcher.config.use_shortcuts = False
            without_s = matcher.match(sample.cellular)
            matcher.config.use_shortcuts = True
            assert with_s.score >= without_s.score - 1e-9

    def test_sampling_rate_resample_pipeline(self, trained_lhmm, tiny_dataset):
        """The Fig. 7(b) protocol: thin, re-filter, match."""
        from repro.cellular import apply_standard_filters

        sample = tiny_dataset.test[0]
        thinned = sample.raw_cellular.resampled_to_rate(1.0)
        filtered = apply_standard_filters(thinned)
        if len(filtered) >= 2:
            assert trained_lhmm.match(filtered).path

    def test_model_state_roundtrip(self, trained_lhmm, tmp_path):
        """Learner weights survive a save/load cycle."""
        from repro.nn import load_state, save_state

        path = tmp_path / "obs.npz"
        save_state(trained_lhmm.observation_learner, path)
        before = trained_lhmm.observation_learner.state_dict()
        load_state(trained_lhmm.observation_learner, path)
        after = trained_lhmm.observation_learner.state_dict()
        for key in before:
            assert np.allclose(before[key], after[key])
