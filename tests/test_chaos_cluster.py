"""Cluster chaos tests: the self-healing control plane under real fire.

Every scenario here drives a live gateway + forked worker fleet through
the failures ``docs/robustness.md`` promises to absorb — the gateway
SIGKILLed mid-load, a zero-downtime rollout racing an open-loop client
swarm, a poisoned candidate artifact failing its canary, Poisson load
pushing the autoscaler up and back down, and an alive-but-unresponsive
worker caught by the stall detector.  The invariants never change:
no request is dropped, every served path stays bit-identical to a
direct ``LHMM`` / ``OnlineLHMM`` call, and no shared-memory segment
outlives its owner.

Excluded from the default suite; run with ``pytest -m chaos -k cluster``
(CI does, as a blocking step, uploading the control journal on failure).
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path
from queue import Empty, Queue

import pytest

from benchmarks.bench_serve_throughput import make_trace, open_loop
from repro.core import OnlineLHMM
from repro.datasets import save_dataset
from repro.errors import ModelReloadFailed
from repro.serve import (
    ClusterConfig,
    ClusterServer,
    MatchingClient,
    ServeClientError,
    ShardRegistry,
    ShardSpec,
)
from repro.serve.shm import leaked_segments
from repro.testing import faults

pytestmark = pytest.mark.chaos


@pytest.fixture(scope="module")
def cluster_paths(tmp_path_factory, trained_lhmm, tiny_dataset):
    root = tmp_path_factory.mktemp("cluster-chaos")
    model_path = root / "model.npz"
    dataset_path = root / "tiny.json.gz"
    trained_lhmm.save(model_path)
    save_dataset(tiny_dataset, dataset_path)
    return str(dataset_path), str(model_path)


def _publish(cluster_paths):
    dataset_path, model_path = cluster_paths
    return ShardRegistry.publish(
        [ShardSpec(region="default", dataset=dataset_path, model=model_path)]
    )


def _feed_with_retry(session, point, attempts: int = 40):
    """Feed one point, riding out 503s while a swap/respawn settles."""
    for attempt in range(attempts):
        try:
            return session.feed(point)
        except (ServeClientError, ConnectionError) as error:
            if isinstance(error, ServeClientError) and error.status != 503:
                raise
            if attempt == attempts - 1:
                raise
            time.sleep(0.25)


def _await_metric(client, predicate, timeout_s: float = 60.0, use_health: bool = False):
    """Poll /metrics (or /healthz) until ``predicate(snapshot)`` holds."""
    deadline = time.monotonic() + timeout_s
    while True:
        snapshot = client.health() if use_health else client.metrics()
        if predicate(snapshot):
            return snapshot
        assert time.monotonic() < deadline, f"condition never held: {snapshot}"
        time.sleep(0.1)


class TestGatewayKill:
    def test_gateway_sigkill_unlinks_every_published_segment(
        self, cluster_paths, tiny_dataset
    ):
        """SIGKILL -9 the whole gateway process mid-load: the janitor
        process (watching the gateway over a pipe) must unlink every
        shared segment the deployment published — /dev/shm is not a
        leak site, even for a death no atexit hook survives."""
        dataset_path, model_path = cluster_paths
        baseline = set(leaked_segments())
        src = Path(__file__).resolve().parents[1] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(src)] + [p for p in [env.get("PYTHONPATH")] if p]
        )
        env.pop(faults.ENV_VAR, None)
        proc = subprocess.Popen(
            [
                sys.executable, "-u", "-m", "repro", "serve",
                "--cluster", "--workers", "2", "--port", "0", "--cache-size", "0",
                "--dataset", dataset_path, "--model", model_path,
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        lines: Queue = Queue()
        threading.Thread(
            target=lambda: [lines.put(l) for l in proc.stdout], daemon=True
        ).start()
        try:
            address = None
            deadline = time.monotonic() + 120.0
            while address is None:
                assert proc.poll() is None, "gateway died during startup"
                try:
                    line = lines.get(timeout=max(0.1, deadline - time.monotonic()))
                except Empty:
                    pytest.fail("gateway never announced its address")
                matched = re.search(r"cluster gateway at http://([\d.]+):(\d+)", line)
                if matched:
                    address = (matched.group(1), int(matched.group(2)))

            published = set(leaked_segments()) - baseline
            assert published, "the deployment published no segments?"

            # Real traffic is in flight when the axe falls.
            client = MatchingClient(*address, timeout=60.0)
            sample = tiny_dataset.test[0]
            results = client.match_with_retry([sample.cellular], max_attempts=6)
            assert results[0]["path"]
            session = client.create_session(lag=3)
            session.feed(sample.cellular.points[0])

            os.kill(proc.pid, signal.SIGKILL)
            assert proc.wait(timeout=30) == -signal.SIGKILL

            # The janitor sees the pipe close and unlinks everything.
            deadline = time.monotonic() + 30.0
            while published & set(leaked_segments()):
                assert time.monotonic() < deadline, (
                    f"segments leaked after gateway SIGKILL: "
                    f"{published & set(leaked_segments())}"
                )
                time.sleep(0.1)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)


class TestZeroDowntimeRollout:
    def test_rollout_under_open_loop_load_drops_nothing(
        self, cluster_paths, trained_lhmm, tiny_dataset
    ):
        """``POST /v1/admin/rollout`` while a seeded open-loop swarm is
        firing: zero failed requests, every path bit-identical on both
        generations, and a streaming session opened on generation 1
        finishes on generation 2 exactly like an uninterrupted decode."""
        registry = _publish(cluster_paths)
        server = ClusterServer(
            registry, ClusterConfig(port=0, num_workers=2, cache_size=0)
        ).start()
        try:
            client = MatchingClient(server.host, server.port, timeout=60.0)
            samples = tiny_dataset.test[:6]
            expected = {
                s.sample_id: trained_lhmm.match(s.cellular).path for s in samples
            }
            stream_sample = tiny_dataset.test[7]
            points = list(stream_sample.cellular.points)

            session = client.create_session(lag=3)
            for point in points[: len(points) // 2]:
                session.feed(point)

            rollout_result: dict = {}

            def fire_rollout():
                try:
                    rollout_result["summary"] = server.rollout()
                except BaseException as error:  # noqa: BLE001
                    rollout_result["error"] = error

            timer = threading.Timer(1.0, fire_rollout)
            timer.start()
            trace = make_trace(samples, rate_per_s=25.0, count=60, seed=20260808)
            results, _wall = open_loop(
                server.host, server.port, trace,
                client_threads=6, max_attempts=6, deadline_s=60.0,
            )
            timer.join(timeout=120)

            assert "error" not in rollout_result, rollout_result.get("error")
            summary = rollout_result["summary"]
            assert summary["generation"] == 2
            assert summary["workers_swapped"] == 2
            assert summary["workers_failed"] == 0

            # Zero downtime, literally: every request in the swarm was
            # answered, and answered with the exact direct-matcher path.
            assert len(results) == 60
            failed = [r for r in results if not r[1]]
            assert failed == []
            for _latency, _ok, sample, path in results:
                assert path == expected[sample.sample_id]

            # The generation-1 session replays onto generation 2 and
            # finishes bit-identical to an uninterrupted decoder.
            for point in points[len(points) // 2 :]:
                _feed_with_retry(session, point)
            assert session.close() == OnlineLHMM(
                trained_lhmm, lag=3
            ).match_stream(stream_sample.cellular)

            health = client.health()
            assert health["generations"]["default"] == 2
            assert health["workers_alive"] == 2
            metrics = client.metrics()
            assert metrics["counters"]["rollouts_total"] == 1
            assert metrics["counters"]["rollout_failures_total"] == 0
        finally:
            server.shutdown()
        assert leaked_segments() == []

    def test_failed_canary_rolls_back_and_old_generation_serves(
        self, cluster_paths, trained_lhmm, tiny_dataset, monkeypatch
    ):
        """A candidate that fails its canary never reaches the fleet: the
        staged segments are unlinked, generation 1 keeps serving, and the
        journal records the rollback.  Clearing the fault, the *same*
        deployment rolls out successfully."""
        registry = _publish(cluster_paths)
        server = ClusterServer(
            registry, ClusterConfig(port=0, num_workers=2, cache_size=0)
        ).start()
        try:
            client = MatchingClient(server.host, server.port, timeout=60.0)
            sample = tiny_dataset.test[2]
            baseline = set(leaked_segments())

            # The probe worker forks during the rollout and inherits this
            # env; the already-running serving workers predate it and are
            # untouched.
            monkeypatch.setenv(faults.ENV_VAR, "cluster.op:raise:op=canary")
            with pytest.raises(ModelReloadFailed):
                server.rollout()
            monkeypatch.delenv(faults.ENV_VAR)

            # Rolled back completely: same generation, same segments,
            # same (bit-identical) answers.
            assert registry.generations()["default"] == 1
            assert set(leaked_segments()) == baseline
            result = client.match_with_retry([sample.cellular], max_attempts=6)
            assert result[0]["path"] == trained_lhmm.match(sample.cellular).path
            metrics = client.metrics()
            assert metrics["counters"]["rollout_failures_total"] == 1
            assert metrics["counters"]["rollouts_total"] == 0
            events = [e["event"] for e in metrics["control"]["journal_tail"]]
            assert "rollout_rolled_back" in events

            # The deployment is not wedged: the next rollout lands.
            summary = server.rollout()
            assert summary["generation"] == 2
            assert summary["workers_swapped"] == 2
            assert client.health()["generations"]["default"] == 2
        finally:
            server.shutdown()
        assert leaked_segments() == []


class TestAutoscaler:
    def test_scales_up_under_poisson_load_and_drains_back(
        self, cluster_paths, trained_lhmm, tiny_dataset
    ):
        """Open-loop Poisson load over a deliberately tight admission gate
        builds queue depth; the autoscaler forks workers up toward
        ``max_workers``, then drains back to ``min_workers`` once the
        burst passes — with a streaming session surviving both directions
        and every request answered bit-identically."""
        registry = _publish(cluster_paths)
        server = ClusterServer(
            registry,
            ClusterConfig(
                port=0,
                num_workers=1,
                min_workers=1,
                max_workers=3,
                cache_size=0,
                max_inflight=1,
                queue_limit=64,
                control_interval_s=0.05,
                scale_up_depth=2,
                scale_up_wait_s=0.3,
                scale_up_cooldown_s=0.3,
                scale_down_cooldown_s=0.5,
                scale_down_idle_ticks=4,
            ),
        )
        # Shrink the wait window so post-burst idleness is visible fast
        # (the default 30s window would stall scale-down for the test).
        server._gate.wait_window.window_s = 2.0
        server.start()
        try:
            client = MatchingClient(server.host, server.port, timeout=60.0)
            samples = tiny_dataset.test[:5]
            expected = {
                s.sample_id: trained_lhmm.match(s.cellular).path for s in samples
            }
            stream_sample = tiny_dataset.test[6]
            points = list(stream_sample.cellular.points)

            session = client.create_session(lag=3)
            for point in points[: len(points) // 2]:
                session.feed(point)

            trace = make_trace(samples, rate_per_s=80.0, count=120, seed=20260809)
            results, _wall = open_loop(
                server.host, server.port, trace,
                client_threads=8, max_attempts=6, deadline_s=60.0,
            )

            assert len(results) == 120
            assert [r for r in results if not r[1]] == []
            for _latency, _ok, sample, path in results:
                assert path == expected[sample.sample_id]

            metrics = client.metrics()
            assert metrics["counters"]["scale_ups_total"] >= 1
            events = [e["event"] for e in metrics["control"]["journal_tail"]]
            assert "scale_up" in events

            # The burst is over: the fleet drains back to the floor.
            health = _await_metric(
                client,
                lambda h: h["workers_total"] == 1 and h["workers_alive"] == 1,
                timeout_s=60.0,
                use_health=True,
            )
            assert health["min_workers"] == 1 and health["max_workers"] == 3
            metrics = client.metrics()
            assert metrics["counters"]["scale_downs_total"] >= 1
            assert metrics["autoscaler"]["target"] == 1

            # The session rode out the whole cycle (its points may have
            # replayed onto whichever worker owns its ring slot now).
            for point in points[len(points) // 2 :]:
                _feed_with_retry(session, point)
            assert session.close() == OnlineLHMM(
                trained_lhmm, lag=3
            ).match_stream(stream_sample.cellular)
        finally:
            server.shutdown()
        assert leaked_segments() == []


class TestStallDetection:
    def test_stalled_worker_is_killed_and_respawned(
        self, cluster_paths, trained_lhmm, tiny_dataset, monkeypatch, tmp_path
    ):
        """A worker that is alive but wedged (60s hang inside its IPC
        handler) burns through the probe miss budget, is SIGKILLed by the
        supervisor, and its respawn serves bit-identical answers."""
        token = tmp_path / "stall-once"
        monkeypatch.setenv(
            faults.ENV_VAR,
            f"cluster.op:hang:op=ping:seconds=60:once={token}",
        )
        registry = _publish(cluster_paths)
        server = ClusterServer(
            registry,
            ClusterConfig(
                port=0,
                num_workers=1,
                cache_size=0,
                control_interval_s=0.1,
                probe_interval_s=0.2,
                probe_timeout_s=0.4,
                probe_miss_budget=2,
            ),
        ).start()
        try:
            client = MatchingClient(server.host, server.port, timeout=60.0)
            # The first health probe wedges the worker; the supervisor
            # must notice (miss budget) and replace it.
            _await_metric(
                client,
                lambda h: h["respawns_used"] >= 1 and h["workers_alive"] >= 1,
                timeout_s=30.0,
                use_health=True,
            )
            assert token.exists()  # the hang really fired
            monkeypatch.delenv(faults.ENV_VAR)

            sample = tiny_dataset.test[3]
            results = client.match_with_retry(
                [sample.cellular], max_attempts=8, base_delay_s=0.1
            )
            assert results[0]["path"] == trained_lhmm.match(sample.cellular).path

            metrics = client.metrics()
            assert metrics["counters"]["worker_stalls_total"] >= 1
            assert metrics["counters"]["worker_deaths_total"] >= 1
            assert metrics["counters"]["worker_respawns_total"] >= 1
            events = [e["event"] for e in metrics["control"]["journal_tail"]]
            assert "worker_stall" in events
        finally:
            server.shutdown()
        assert leaked_segments() == []


class TestABSplitUnderFire:
    def test_ab_split_survives_worker_sigkill_exactly(
        self, cluster_paths, trained_lhmm, tiny_dataset
    ):
        """A 20% challenger split under open-loop Poisson load with a
        champion fleet worker SIGKILLed mid-stream: every response stays
        bit-identical to the generation its key hash assigned it, the
        per-generation request counters sum exactly to the admitted
        requests, and the observed split is the exact count predicted by
        the deterministic key hash over the trace — not a statistical
        estimate.  A streaming session rides through the kill and commits
        a path bit-identical to an uninterrupted decoder."""
        from repro.core import LHMM
        from repro.serve import canonical_key, routes_to_challenger
        from repro.serve import protocol

        dataset_path, model_path = cluster_paths
        ema_matcher = LHMM.load(model_path, tiny_dataset, weights="ema")
        registry = _publish(cluster_paths)
        server = ClusterServer(
            registry, ClusterConfig(port=0, num_workers=2, cache_size=0)
        ).start()
        try:
            client = MatchingClient(server.host, server.port, timeout=60.0)
            info = client.start_ab(split=0.2, weights="ema")
            assert info["challenger_generation"] == 2

            samples = tiny_dataset.test[:6]
            split = 0.2
            expected_path = {}
            assigned = {}
            for s in samples:
                key = canonical_key(protocol.encode_trajectory(s.cellular))
                hit = routes_to_challenger(key, split)
                assigned[s.sample_id] = hit
                expected_path[s.sample_id] = (
                    ema_matcher if hit else trained_lhmm
                ).match(s.cellular).path

            stream_sample = tiny_dataset.test[7]
            points = list(stream_sample.cellular.points)
            session = client.create_session(lag=3)
            for point in points[: len(points) // 2]:
                session.feed(point)

            # SIGKILL one champion fleet worker mid-stream (never the
            # dedicated challenger worker — that failover has its own
            # test); the supervisor must respawn it under fire.
            victim = next(iter(server._handles.values())).process
            killer = threading.Timer(1.0, os.kill, (victim.pid, signal.SIGKILL))
            killer.start()

            trace = make_trace(samples, rate_per_s=25.0, count=60, seed=20260808)
            expected_challenger = sum(
                1 for _, s in trace if assigned[s.sample_id]
            )
            assert 0 < expected_challenger < len(trace)  # both sides exercised
            results, _wall = open_loop(
                server.host, server.port, trace,
                client_threads=6, max_attempts=8, deadline_s=60.0,
            )
            killer.join(timeout=30)

            # Nothing dropped, and every response is bit-identical to the
            # generation the key hash deterministically assigned it.
            assert len(results) == 60
            assert [r for r in results if not r[1]] == []
            for _latency, _ok, sample, path in results:
                assert path == expected_path[sample.sample_id]

            # Exact split accounting: the counters across both
            # generations sum to the admitted requests, and the observed
            # split is the hash-predicted count exactly.
            metrics = client.metrics()
            generations = metrics["ab"]["default"]["generations"]
            by_role = {g["role"]: g for g in generations.values()}
            assert by_role["challenger"]["requests"] == expected_challenger
            assert by_role["champion"]["requests"] == 60 - expected_challenger
            assert by_role["champion"]["failed"] == 0
            assert by_role["challenger"]["failed"] == 0
            assert metrics["counters"]["ab_challenger_deaths_total"] == 0
            assert metrics["counters"]["worker_deaths_total"] >= 1
            assert metrics["counters"]["worker_respawns_total"] >= 1

            # The generation-1 streaming session commits bit-identically
            # through the kill (sessions always stay on the champion).
            for point in points[len(points) // 2 :]:
                _feed_with_retry(session, point)
            assert session.close() == OnlineLHMM(
                trained_lhmm, lag=3
            ).match_stream(stream_sample.cellular)

            client.abort_ab()
            assert client.health()["ab_live"] == []
        finally:
            server.shutdown()
        assert leaked_segments() == []
