"""Tests for repro.core.parallel (process-parallel batch matching)."""

import pytest

from repro.core import LHMM, ParallelMatcher
from repro.datasets import save_dataset


def assert_results_identical(serial, parallel) -> None:
    assert len(serial) == len(parallel)
    for expected, got in zip(serial, parallel):
        assert got.path == expected.path
        assert got.matched_sequence == expected.matched_sequence
        assert got.candidate_sets == expected.candidate_sets
        assert got.score == pytest.approx(expected.score, rel=1e-12)


class TestForkMatchMany:
    def test_parallel_equals_serial_trajectory_for_trajectory(
        self, trained_lhmm, tiny_dataset
    ):
        trajectories = [sample.cellular for sample in tiny_dataset.test]
        assert len(trajectories) >= 4
        serial = trained_lhmm.match_many(trajectories)
        parallel = trained_lhmm.match_many(trajectories, workers=2)
        assert_results_identical(serial, parallel)

    def test_parallel_reports_worker_cache_stats(self, trained_lhmm, tiny_dataset):
        trajectories = [sample.cellular for sample in tiny_dataset.test][:4]
        trained_lhmm.match_many(trajectories, workers=2)
        stats = trained_lhmm.last_parallel_stats
        assert stats is not None
        assert 1 <= stats["workers"] <= 2
        assert stats["chunks"] >= 1
        for counters in stats["per_worker"].values():
            assert counters["route_cache_hits"] + counters["route_cache_misses"] > 0

    def test_single_worker_stays_serial(self, trained_lhmm, tiny_dataset):
        trajectory = tiny_dataset.test[0].cellular
        results = trained_lhmm.match_many([trajectory], workers=1)
        assert len(results) == 1
        assert results[0].path == trained_lhmm.match(trajectory).path

    def test_explicit_chunk_size(self, trained_lhmm, tiny_dataset):
        trajectories = [sample.cellular for sample in tiny_dataset.test][:5]
        serial = trained_lhmm.match_many(trajectories)
        parallel = trained_lhmm.match_many(trajectories, workers=2, chunk_size=1)
        assert_results_identical(serial, parallel)
        assert trained_lhmm.last_parallel_stats["chunks"] == 5


class TestParallelMatcher:
    @pytest.fixture(scope="class")
    def saved_paths(self, tmp_path_factory, trained_lhmm, tiny_dataset):
        root = tmp_path_factory.mktemp("parallel")
        model_path = root / "model.npz"
        dataset_path = root / "tiny.json.gz"
        trained_lhmm.save(model_path)
        save_dataset(tiny_dataset, dataset_path)
        return model_path, dataset_path

    def test_file_backed_pool_matches_serial_load(self, saved_paths, tiny_dataset):
        from repro.datasets import load_dataset

        model_path, dataset_path = saved_paths
        reloaded = LHMM.load(model_path, load_dataset(dataset_path))
        trajectories = [sample.cellular for sample in tiny_dataset.test][:4]
        serial = reloaded.match_many(trajectories)
        with ParallelMatcher(model_path, dataset_path, workers=2, chunk_size=2) as pool:
            parallel = pool.match_many(trajectories)
            stats = pool.stats()
        assert_results_identical(serial, parallel)
        assert stats["chunks"] == 2
        assert stats["per_worker"]

    def test_empty_batch(self, saved_paths):
        model_path, dataset_path = saved_paths
        with ParallelMatcher(model_path, dataset_path, workers=2) as pool:
            assert pool.match_many([]) == []
