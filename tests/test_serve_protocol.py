"""Tests for the serving wire protocol (encode/decode round trips)."""

import pytest

from repro.cellular.trajectory import Trajectory, TrajectoryPoint
from repro.geometry import Point
from repro.serve import ProtocolError
from repro.serve import protocol


def _point(x=1.0, y=2.0, t=3.0, tower=7):
    return TrajectoryPoint(position=Point(x, y), timestamp=t, tower_id=tower)


class TestPointCodec:
    def test_round_trip(self):
        point = _point()
        again = protocol.decode_point(protocol.encode_point(point))
        assert again == point

    def test_gps_point_omits_tower(self):
        payload = protocol.encode_point(_point(tower=None))
        assert "tower_id" not in payload
        assert protocol.decode_point(payload).tower_id is None

    def test_rejects_non_object(self):
        with pytest.raises(ProtocolError, match="expected an object"):
            protocol.decode_point([1, 2, 3])

    def test_rejects_missing_coordinate(self):
        with pytest.raises(ProtocolError, match="'y'"):
            protocol.decode_point({"x": 1.0, "t": 0.0})

    def test_rejects_boolean_coordinate(self):
        with pytest.raises(ProtocolError):
            protocol.decode_point({"x": True, "y": 0.0, "t": 0.0})

    def test_rejects_non_integer_tower(self):
        with pytest.raises(ProtocolError, match="tower_id"):
            protocol.decode_point({"x": 0.0, "y": 0.0, "t": 0.0, "tower_id": "a"})


class TestTrajectoryCodec:
    def test_round_trip(self):
        trajectory = Trajectory(points=[_point(t=0.0), _point(x=5.0, t=9.0)])
        payload = protocol.encode_trajectory(trajectory)
        again = protocol.decode_trajectory(payload, trajectory_id=4)
        assert again.points == trajectory.points
        assert again.trajectory_id == 4

    def test_rejects_empty(self):
        with pytest.raises(ProtocolError, match="non-empty"):
            protocol.decode_trajectory([])

    def test_rejects_decreasing_timestamps(self):
        payload = [protocol.encode_point(_point(t=5.0)), protocol.encode_point(_point(t=1.0))]
        with pytest.raises(ProtocolError, match="non-decreasing"):
            protocol.decode_trajectory(payload)

    def test_error_names_offending_index(self):
        payload = [protocol.encode_point(_point()), {"x": 0.0}]
        with pytest.raises(ProtocolError, match=r"points\[1\]"):
            protocol.decode_points(payload)


class TestBodyCodec:
    def test_dumps_loads_round_trip(self):
        payload = {"a": [1, 2], "b": None}
        assert protocol.loads(protocol.dumps(payload)) == payload

    def test_empty_body_is_empty_object(self):
        assert protocol.loads(b"") == {}

    def test_bad_json_raises(self):
        with pytest.raises(ProtocolError, match="invalid JSON"):
            protocol.loads(b"{nope")

    def test_match_result_encoding(self, trained_lhmm, tiny_dataset):
        result = trained_lhmm.match(tiny_dataset.test[0].cellular)
        payload = protocol.encode_match_result(result)
        assert payload["path"] == result.path
        assert payload["matched_sequence"] == result.matched_sequence
        assert payload["score"] == pytest.approx(result.score)
