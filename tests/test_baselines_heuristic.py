"""Tests for the heuristic HMM baselines."""

import numpy as np
import pytest

from repro.baselines import (
    CLSTERS,
    IVMM,
    MCM,
    THMM,
    HeuristicHmmConfig,
    HeuristicHmmMatcher,
    IFMatching,
    STMatching,
    SnapNet,
    make_baseline,
)
from repro.core.trellis import UNREACHABLE_SCORE

HEURISTIC_CLASSES = [STMatching, IVMM, IFMatching, MCM, SnapNet, THMM, CLSTERS]


@pytest.fixture(scope="module")
def small_config():
    return HeuristicHmmConfig(candidate_k=6, candidate_radius_m=1200.0)


class TestGenericCore:
    def test_candidate_sets_sorted_by_distance(self, tiny_dataset, small_config):
        matcher = HeuristicHmmMatcher(tiny_dataset, small_config)
        sample = tiny_dataset.test[0]
        sets = matcher.candidate_sets(sample.cellular)
        for point, candidates in zip(sample.cellular.points, sets):
            dists = [
                tiny_dataset.network.segments[s].distance_to(point.position)
                for s in candidates
            ]
            assert dists == sorted(dists)

    def test_observation_decreases_with_distance(self, tiny_dataset, small_config):
        matcher = HeuristicHmmMatcher(tiny_dataset, small_config)
        sample = tiny_dataset.test[0]
        points = list(sample.cellular.points)
        sets = matcher.candidate_sets(sample.cellular)
        probs = [matcher.observation_probability(points, 0, s) for s in sets[0]]
        assert probs == sorted(probs, reverse=True)

    def test_transition_unreachable(self, tiny_dataset, small_config):
        matcher = HeuristicHmmMatcher(tiny_dataset, small_config)
        sample = tiny_dataset.test[0]
        points = list(sample.cellular.points)
        # a segment pair with absurd detour is pruned
        segs = sorted(tiny_dataset.network.segments)
        far_pairs = [(segs[0], segs[-1])]
        for a, b in far_pairs:
            value = matcher.transition_probability(points, 1, a, b)
            assert value <= 1.0  # either a probability or the penalty

    def test_match_returns_result(self, tiny_dataset, small_config):
        matcher = HeuristicHmmMatcher(tiny_dataset, small_config)
        result = matcher.match(tiny_dataset.test[0].cellular)
        assert result.path
        assert result.candidate_sets is not None
        assert len(result.matched_sequence) == len(tiny_dataset.test[0].cellular)


class TestAllHeuristics:
    @pytest.mark.parametrize("cls", HEURISTIC_CLASSES)
    def test_each_matcher_produces_path(self, tiny_dataset, cls):
        matcher = cls(tiny_dataset)
        matcher.config.candidate_k = 6
        matcher.config.candidate_radius_m = 1200.0
        result = matcher.match(tiny_dataset.test[0].cellular)
        assert result.path
        assert all(s in tiny_dataset.network.segments for s in result.path)

    @pytest.mark.parametrize("cls", HEURISTIC_CLASSES)
    def test_transition_probabilities_bounded(self, tiny_dataset, cls):
        matcher = cls(tiny_dataset)
        sample = tiny_dataset.test[1]
        points = list(matcher.preprocess(sample.cellular).points)
        if len(points) < 2:
            pytest.skip("preprocessing collapsed the trajectory")
        sets = matcher.candidate_sets(matcher.preprocess(sample.cellular))
        for a in sets[0][:3]:
            for b in sets[1][:3]:
                value = matcher.transition_probability(points, 1, a, b)
                assert value <= 1.5 or value == UNREACHABLE_SCORE

    def test_stm_shortcut_variant(self, tiny_dataset):
        plain = STMatching(tiny_dataset)
        with_s = STMatching(tiny_dataset, with_shortcuts=True)
        assert plain.config.shortcut_k == 0
        assert with_s.config.shortcut_k == 1
        assert with_s.name == "STM+S"
        result = with_s.match(tiny_dataset.test[0].cellular)
        assert result.path

    def test_snapnet_preprocess_filters(self, tiny_dataset):
        matcher = SnapNet(tiny_dataset)
        raw = tiny_dataset.test[0].raw_cellular
        processed = matcher.preprocess(raw)
        assert 1 <= len(processed) <= len(raw)

    def test_clsters_calibration_changes_positions(self, tiny_dataset):
        matcher = CLSTERS(tiny_dataset)
        raw = tiny_dataset.test[0].raw_cellular
        calibrated = matcher.preprocess(raw)
        if len(calibrated) >= 5:
            moved = any(
                a.position != b.position
                for a, b in zip(calibrated.points, raw.points)
            )
            assert moved


class TestRegistry:
    def test_unknown_name_rejected(self, tiny_dataset):
        with pytest.raises(ValueError):
            make_baseline("NoSuchMethod", tiny_dataset)

    def test_make_heuristic_by_name(self, tiny_dataset):
        matcher = make_baseline("THMM", tiny_dataset)
        assert matcher.name == "THMM"
