"""Tests for repro.eval.metrics."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.eval import (
    corridor_mismatch_fraction,
    hitting_ratio,
    path_length,
    precision_recall,
    route_mismatch_fraction,
)


class TestPathLength:
    def test_counts_distinct_segments(self, tiny_network):
        segs = sorted(tiny_network.segments)[:3]
        once = path_length(tiny_network, segs)
        doubled = path_length(tiny_network, segs + segs)
        assert once == pytest.approx(doubled)

    def test_empty(self, tiny_network):
        assert path_length(tiny_network, []) == 0.0


class TestPrecisionRecall:
    def test_perfect_match(self, tiny_dataset):
        truth = tiny_dataset.samples[0].truth_path
        p, r = precision_recall(tiny_dataset.network, truth, list(truth))
        assert p == pytest.approx(1.0)
        assert r == pytest.approx(1.0)

    def test_empty_match(self, tiny_dataset):
        truth = tiny_dataset.samples[0].truth_path
        p, r = precision_recall(tiny_dataset.network, truth, [])
        assert (p, r) == (0.0, 0.0)

    def test_disjoint_paths(self, tiny_dataset):
        truth = tiny_dataset.samples[0].truth_path
        other = [s for s in sorted(tiny_dataset.network.segments) if s not in set(truth)]
        p, r = precision_recall(tiny_dataset.network, truth, other[:5])
        assert (p, r) == (0.0, 0.0)

    def test_partial_overlap_bounds(self, tiny_dataset):
        truth = tiny_dataset.samples[0].truth_path
        half = truth[: len(truth) // 2]
        p, r = precision_recall(tiny_dataset.network, truth, half)
        assert p == pytest.approx(1.0)
        assert 0.0 < r < 1.0


class TestRmf:
    def test_zero_for_exact(self, tiny_dataset):
        truth = tiny_dataset.samples[0].truth_path
        assert route_mismatch_fraction(tiny_dataset.network, truth, list(truth)) == 0.0

    def test_missing_counts(self, tiny_dataset):
        truth = tiny_dataset.samples[0].truth_path
        rmf = route_mismatch_fraction(tiny_dataset.network, truth, [])
        assert rmf == pytest.approx(1.0)

    def test_redundant_counts(self, tiny_dataset):
        truth = tiny_dataset.samples[0].truth_path
        extra = [s for s in sorted(tiny_dataset.network.segments) if s not in set(truth)]
        rmf = route_mismatch_fraction(
            tiny_dataset.network, truth, list(truth) + extra[:5]
        )
        assert rmf > 0.0

    def test_can_exceed_one(self, tiny_dataset):
        truth = tiny_dataset.samples[0].truth_path[:2]
        extra = [s for s in sorted(tiny_dataset.network.segments) if s not in set(truth)]
        rmf = route_mismatch_fraction(tiny_dataset.network, truth, extra[:50])
        assert rmf > 1.0


class TestCmf:
    def test_zero_for_exact(self, tiny_dataset):
        truth = tiny_dataset.samples[0].truth_path
        assert corridor_mismatch_fraction(tiny_dataset.network, truth, list(truth)) == 0.0

    def test_one_for_empty_match(self, tiny_dataset):
        truth = tiny_dataset.samples[0].truth_path
        assert corridor_mismatch_fraction(tiny_dataset.network, truth, []) == 1.0

    def test_empty_truth_is_zero(self, tiny_dataset):
        assert corridor_mismatch_fraction(tiny_dataset.network, [], [1]) == 0.0

    def test_wider_corridor_never_worse(self, tiny_dataset):
        truth = tiny_dataset.samples[0].truth_path
        match = tiny_dataset.samples[1].truth_path
        narrow = corridor_mismatch_fraction(tiny_dataset.network, truth, match, radius_m=25)
        wide = corridor_mismatch_fraction(tiny_dataset.network, truth, match, radius_m=200)
        assert wide <= narrow

    def test_parallel_road_forgiven_at_coarse_radius(self, tiny_dataset):
        """CMF's purpose: a nearby-but-wrong road passes a wide corridor."""
        net = tiny_dataset.network
        truth = tiny_dataset.samples[0].truth_path
        # opposite-direction twins of the truth segments
        twins = []
        for seg_id in truth:
            seg = net.segments[seg_id]
            for cand in net.out_segments(seg.end_node):
                other = net.segments[cand]
                if other.end_node == seg.start_node:
                    twins.append(cand)
        if len(twins) < len(truth) * 0.8:
            pytest.skip("not enough two-way twins in this sample")
        strict = route_mismatch_fraction(net, truth, twins)
        coarse = corridor_mismatch_fraction(net, truth, twins, radius_m=60)
        assert strict > 0.5  # segment-level metric punishes the twin road
        assert coarse < 0.2  # corridor-level metric forgives it

    def test_bounded_unit_interval(self, tiny_dataset):
        truth = tiny_dataset.samples[2].truth_path
        match = tiny_dataset.samples[3].truth_path
        cmf = corridor_mismatch_fraction(tiny_dataset.network, truth, match)
        assert 0.0 <= cmf <= 1.0


class TestHittingRatio:
    def test_full_hit(self):
        assert hitting_ratio([[1, 2], [3]], [2, 3]) == 1.0

    def test_no_hit(self):
        assert hitting_ratio([[1], [2]], [9]) == 0.0

    def test_partial(self):
        assert hitting_ratio([[1], [9]], [1, 2]) == pytest.approx(0.5)

    def test_empty_sets(self):
        assert hitting_ratio([], [1]) == 0.0

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.lists(st.integers(0, 20), min_size=1, max_size=5), min_size=1, max_size=8),
        st.lists(st.integers(0, 20), min_size=1, max_size=10),
    )
    def test_always_unit_interval(self, candidate_sets, truth):
        assert 0.0 <= hitting_ratio(candidate_sets, truth) <= 1.0
