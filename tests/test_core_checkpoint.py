"""Durable training: checkpoint manager, resume parity, divergence rollback.

The headline property — *a resumed run is bit-identical to an
uninterrupted one* — is asserted with ``filecmp`` on the final model
artifact, which the byte-deterministic envelope makes meaningful.  The
manager-level tests cover retention, corruption skip, and the config
fingerprint guard in isolation.
"""

import filecmp
import shutil
import warnings

import numpy as np
import pytest

from repro.cellular import SimulationConfig, TowerPlacementConfig
from repro.core import LHMM, CheckpointManager, LHMMConfig
from repro.datasets import DatasetConfig, make_city_dataset
from repro.errors import ArtifactIncompatible, TrainingDiverged
from repro.network import CityConfig
from repro.testing import faults

from .conftest import tiny_lhmm_config


@pytest.fixture(scope="module")
def micro_dataset():
    """Smaller than ``tiny_dataset``: resume parity needs several full
    training runs, so the substrate has to be cheap."""
    config = DatasetConfig(
        name="micro",
        city=CityConfig(grid_rows=7, grid_cols=7, block_size_m=250.0),
        towers=TowerPlacementConfig(base_spacing_m=400.0),
        simulation=SimulationConfig(min_trip_m=800.0, max_trip_m=2000.0),
        num_trajectories=40,
        groundtruth="oracle",
    )
    return make_city_dataset(config, rng=7)


def _fit_and_save(dataset, model_path, checkpoint_dir=None, **fit_kwargs):
    matcher = LHMM(tiny_lhmm_config(), rng=3)
    matcher.fit(
        dataset,
        checkpoint_dir=None if checkpoint_dir is None else str(checkpoint_dir),
        **fit_kwargs,
    )
    matcher.save(model_path)
    return matcher


class TestCheckpointManager:
    def _arrays(self, value=0.0):
        return {"w": np.full((2, 2), value), "step": np.asarray(7)}

    def test_save_load_round_trip_with_meta(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save(self._arrays(1.5), {"stage": 2, "epoch": 4})
        arrays, meta = manager.load_latest()
        np.testing.assert_array_equal(arrays["w"], np.full((2, 2), 1.5))
        assert arrays["step"].shape == ()
        assert meta["stage"] == 2 and meta["epoch"] == 4

    def test_empty_directory_loads_none(self, tmp_path):
        assert CheckpointManager(tmp_path).load_latest() is None

    def test_retention_prunes_oldest(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep=2)
        for i in range(5):
            manager.save(self._arrays(float(i)), {"i": i})
        names = [p.name for p in manager.checkpoints()]
        assert names == ["ckpt-00000003.npz", "ckpt-00000004.npz"]
        _, meta = manager.load_latest()
        assert meta["i"] == 4

    def test_numbering_continues_across_instances(self, tmp_path):
        CheckpointManager(tmp_path).save(self._arrays(), {"i": 0})
        reopened = CheckpointManager(tmp_path)
        path = reopened.save(self._arrays(), {"i": 1})
        assert path.name == "ckpt-00000001.npz"

    def test_corrupt_newest_is_skipped_with_warning(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save(self._arrays(1.0), {"i": 0})
        newest = manager.save(self._arrays(2.0), {"i": 1})
        blob = bytearray(newest.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        newest.write_bytes(bytes(blob))
        with pytest.warns(UserWarning, match="corrupt checkpoint"):
            arrays, meta = manager.load_latest()
        assert meta["i"] == 0
        np.testing.assert_array_equal(arrays["w"], np.full((2, 2), 1.0))

    def test_all_corrupt_loads_none(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        path = manager.save(self._arrays(), {"i": 0})
        path.write_bytes(b"garbage")
        with pytest.warns(UserWarning, match="corrupt checkpoint"):
            assert manager.load_latest() is None

    def test_fingerprint_mismatch_is_incompatible_not_skipped(self, tmp_path):
        CheckpointManager(tmp_path, config_fingerprint="aaaa").save(
            self._arrays(), {"i": 0}
        )
        other = CheckpointManager(tmp_path, config_fingerprint="bbbb")
        with pytest.raises(ArtifactIncompatible, match="fingerprint"):
            other.load_latest()

    def test_keep_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="keep"):
            CheckpointManager(tmp_path, keep=0)


class TestResumeParity:
    @pytest.fixture(scope="class")
    def reference(self, micro_dataset, tmp_path_factory):
        """One checkpointed training run retained in full: the baseline
        model plus every per-epoch checkpoint file."""
        root = tmp_path_factory.mktemp("reference")
        ckpt_dir = root / "ckpts"
        model = root / "model.npz"
        _fit_and_save(
            micro_dataset, model, checkpoint_dir=ckpt_dir, keep_checkpoints=100
        )
        files = sorted(ckpt_dir.iterdir())
        assert len(files) > 4  # anchor + one per epoch across the stages
        return model, files

    def test_checkpointing_does_not_perturb_training(
        self, micro_dataset, reference, tmp_path
    ):
        model, _ = reference
        plain = tmp_path / "plain.npz"
        _fit_and_save(micro_dataset, plain)  # no checkpointing at all
        assert filecmp.cmp(model, plain, shallow=False)

    @pytest.mark.parametrize("fraction", [0.25, 0.75])
    def test_resume_mid_training_is_bit_identical(
        self, micro_dataset, reference, tmp_path, fraction
    ):
        """Keep only the first ``fraction`` of the checkpoints — as if the
        process died there — and resume: the final artifact must equal the
        uninterrupted run byte for byte."""
        model, files = reference
        truncated = tmp_path / "ckpts"
        truncated.mkdir()
        cut = max(1, int(len(files) * fraction))
        for path in files[:cut]:
            shutil.copy2(path, truncated / path.name)
        resumed = tmp_path / "resumed.npz"
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # no silent corrupt-skip allowed
            _fit_and_save(micro_dataset, resumed, checkpoint_dir=truncated)
        assert filecmp.cmp(model, resumed, shallow=False)

    def test_corrupt_newest_checkpoint_resumes_from_previous_good(
        self, micro_dataset, reference, tmp_path
    ):
        model, files = reference
        damaged = tmp_path / "ckpts"
        damaged.mkdir()
        cut = max(2, len(files) // 2)
        for path in files[:cut]:
            shutil.copy2(path, damaged / path.name)
        newest = sorted(damaged.iterdir())[-1]
        blob = bytearray(newest.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        newest.write_bytes(bytes(blob))
        resumed = tmp_path / "resumed.npz"
        with pytest.warns(UserWarning, match="corrupt checkpoint"):
            _fit_and_save(micro_dataset, resumed, checkpoint_dir=damaged)
        assert filecmp.cmp(model, resumed, shallow=False)

    def test_mismatched_config_refuses_to_resume(
        self, micro_dataset, reference, tmp_path
    ):
        _, files = reference
        ckpt_dir = tmp_path / "ckpts"
        ckpt_dir.mkdir()
        shutil.copy2(files[0], ckpt_dir / files[0].name)
        other = tiny_lhmm_config()
        other.embedding_dim += 4
        with pytest.raises(ArtifactIncompatible, match="fingerprint"):
            LHMM(other, rng=3).fit(micro_dataset, checkpoint_dir=str(ckpt_dir))


class TestDivergenceHandling:
    def test_single_divergence_rolls_back_and_completes(
        self, micro_dataset, tmp_path
    ):
        """A one-shot injected divergence mid-stage: training rolls back
        to the last good epoch with a reduced LR and still finishes."""
        token = tmp_path / "fault.token"
        matcher = LHMM(tiny_lhmm_config(), rng=3)
        with faults.armed(
            "train.step",
            "raise",
            error="diverged",
            stage="transition_pretrain",
            epoch=1,
            step=0,
            once_path=str(token),
        ):
            matcher.fit(micro_dataset, checkpoint_dir=str(tmp_path / "ckpts"))
        assert token.exists()  # the fault really fired
        report = matcher.report
        assert report is not None
        assert len(report.transition_pretrain) > 0
        # The recovered model is usable end to end.
        result = matcher.match(micro_dataset.test[0].cellular)
        assert result.path

    def test_divergence_without_checkpoints_raises(self, micro_dataset):
        with faults.armed(
            "train.step",
            "raise",
            error="diverged",
            stage="observation_pretrain",
            epoch=0,
            step=0,
        ):
            with pytest.raises(TrainingDiverged, match="checkpoint"):
                LHMM(tiny_lhmm_config(), rng=3).fit(micro_dataset)

    def test_exhausted_rollback_budget_raises(self, micro_dataset, tmp_path):
        config = tiny_lhmm_config()
        config.max_rollbacks = 0
        with faults.armed(
            "train.step",
            "raise",
            error="diverged",
            stage="observation_pretrain",
            epoch=1,
            step=0,
        ):
            with pytest.raises(TrainingDiverged, match="budget exhausted"):
                LHMM(config, rng=3).fit(
                    micro_dataset, checkpoint_dir=str(tmp_path / "ckpts")
                )


class TestDivergenceConfigGuards:
    def test_new_fields_validate(self):
        for field, bad in [
            ("max_rollbacks", -1),
            ("rollback_lr_factor", 0.0),
            ("rollback_lr_factor", 1.5),
            ("divergence_grad_norm", -1.0),
        ]:
            config = LHMMConfig()
            setattr(config, field, bad)
            with pytest.raises(ValueError, match=field):
                config.validate()

    def test_defaults_validate(self):
        config = LHMMConfig()
        config.validate()
        assert config.max_rollbacks == 2
        assert 0.0 < config.rollback_lr_factor <= 1.0


class TestEMAResumeParity:
    """The EMA shadow set must survive crash/resume *byte-identically* —
    reusing :class:`TestResumeParity`'s substrate, but asserting on the
    ``ema.*`` arrays specifically so an accidentally-dropped shadow set
    cannot hide behind a filecmp pass of two EMA-less artifacts."""

    def _run(self, dataset, model_path, checkpoint_dir=None, **kwargs):
        return _fit_and_save(dataset, model_path, checkpoint_dir, **kwargs)

    def test_every_checkpoint_carries_the_shadow_set(self, micro_dataset, tmp_path):
        from repro.nn.serialization import read_artifact

        ckpt_dir = tmp_path / "ckpts"
        self._run(micro_dataset, tmp_path / "m.npz", ckpt_dir, keep_checkpoints=100)
        files = sorted(ckpt_dir.iterdir())
        assert files
        for path in files:
            arrays = read_artifact(path, kind="lhmm-checkpoint").arrays
            ema_keys = {k for k in arrays if k.startswith("ema.")}
            assert ema_keys, f"{path.name} lost the EMA shadow set"
            # One shadow per tracked parameter, same shapes as the raw side.
            for key in ema_keys:
                raw_key = key[len("ema."):]
                if raw_key in arrays:  # obs.* / trans.* (encoder is ema-only)
                    assert arrays[key].shape == arrays[raw_key].shape

    def test_sigkill_resume_reproduces_ema_arrays_byte_identically(
        self, micro_dataset, tmp_path
    ):
        """Keep only half the checkpoints — the SIGKILL-mid-epoch shape —
        and resume: every ``ema.*`` array in the final artifact must equal
        the uninterrupted run's, byte for byte."""
        from repro.nn.serialization import read_artifact

        ckpt_dir = tmp_path / "ckpts"
        reference = tmp_path / "reference.npz"
        self._run(micro_dataset, reference, ckpt_dir, keep_checkpoints=100)
        files = sorted(ckpt_dir.iterdir())
        truncated = tmp_path / "truncated"
        truncated.mkdir()
        for path in files[: max(1, len(files) // 2)]:
            shutil.copy2(path, truncated / path.name)
        resumed = tmp_path / "resumed.npz"
        self._run(micro_dataset, resumed, truncated)

        ref = read_artifact(reference, kind=LHMM.MODEL_KIND)
        res = read_artifact(resumed, kind=LHMM.MODEL_KIND)
        ref_ema = {k: v for k, v in ref.arrays.items() if k.startswith("ema.")}
        res_ema = {k: v for k, v in res.arrays.items() if k.startswith("ema.")}
        assert set(ref_ema) == set(res_ema) and ref_ema
        for key, value in ref_ema.items():
            assert value.tobytes() == res_ema[key].tobytes(), key
        assert ref.meta["weights"] == res.meta["weights"] == ["raw", "ema"]

    def test_ema_survives_the_retention_sweep(self, micro_dataset, tmp_path):
        """With ``keep_checkpoints=1`` the sweep prunes aggressively; the
        surviving checkpoint must still hold the shadow set, and a resume
        from it must stay bit-identical end to end."""
        from repro.nn.serialization import read_artifact

        ckpt_dir = tmp_path / "ckpts"
        reference = tmp_path / "reference.npz"
        self._run(micro_dataset, reference, ckpt_dir, keep_checkpoints=1)
        files = sorted(ckpt_dir.iterdir())
        assert len(files) == 1  # the sweep really ran
        arrays = read_artifact(files[0], kind="lhmm-checkpoint").arrays
        assert any(k.startswith("ema.") for k in arrays)
        # Resuming from the single survivor (training is already complete,
        # so this replays the final state) reproduces the artifact exactly.
        resumed = tmp_path / "resumed.npz"
        self._run(micro_dataset, resumed, ckpt_dir, keep_checkpoints=1)
        assert filecmp.cmp(reference, resumed, shallow=False)
