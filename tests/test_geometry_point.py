"""Tests for repro.geometry.point."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geometry import Point, bearing_deg, euclidean, heading_difference_deg

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


class TestPoint:
    def test_distance_to_known_value(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_distance_is_symmetric(self):
        a, b = Point(1.5, -2.0), Point(-4.0, 7.25)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    def test_midpoint(self):
        mid = Point(0, 0).midpoint(Point(10, 4))
        assert (mid.x, mid.y) == (5.0, 2.0)

    def test_translated(self):
        p = Point(1, 1).translated(2, -3)
        assert (p.x, p.y) == (3.0, -2.0)

    def test_as_tuple(self):
        assert Point(2.5, -1.0).as_tuple() == (2.5, -1.0)

    def test_points_are_hashable_and_frozen(self):
        p = Point(1, 2)
        assert {p: "ok"}[Point(1, 2)] == "ok"
        with pytest.raises(AttributeError):
            p.x = 5  # type: ignore[misc]

    @given(finite, finite, finite, finite)
    def test_triangle_inequality(self, x1, y1, x2, y2):
        a, b, origin = Point(x1, y1), Point(x2, y2), Point(0, 0)
        assert a.distance_to(b) <= a.distance_to(origin) + origin.distance_to(b) + 1e-6


class TestBearing:
    def test_north_is_zero(self):
        assert bearing_deg(Point(0, 0), Point(0, 10)) == pytest.approx(0.0)

    def test_east_is_ninety(self):
        assert bearing_deg(Point(0, 0), Point(10, 0)) == pytest.approx(90.0)

    def test_south_is_one_eighty(self):
        assert bearing_deg(Point(0, 0), Point(0, -10)) == pytest.approx(180.0)

    def test_west_is_two_seventy(self):
        assert bearing_deg(Point(0, 0), Point(-10, 0)) == pytest.approx(270.0)

    def test_identical_points_yield_zero(self):
        assert bearing_deg(Point(3, 3), Point(3, 3)) == 0.0

    @given(finite, finite, finite, finite)
    def test_bearing_in_range(self, x1, y1, x2, y2):
        bearing = bearing_deg(Point(x1, y1), Point(x2, y2))
        assert 0.0 <= bearing < 360.0


class TestHeadingDifference:
    def test_zero_for_equal_headings(self):
        assert heading_difference_deg(42.0, 42.0) == 0.0

    def test_wraps_around(self):
        assert heading_difference_deg(350.0, 10.0) == pytest.approx(20.0)

    def test_maximum_is_180(self):
        assert heading_difference_deg(0.0, 180.0) == pytest.approx(180.0)

    @given(st.floats(0, 360, allow_nan=False), st.floats(0, 360, allow_nan=False))
    def test_range_and_symmetry(self, h1, h2):
        diff = heading_difference_deg(h1, h2)
        assert 0.0 <= diff <= 180.0
        assert diff == pytest.approx(heading_difference_deg(h2, h1))
