"""Tests for repro.eval.stats (paired bootstrap)."""

import numpy as np
import pytest

from repro.eval import EvaluationResult, paired_bootstrap
from repro.eval.harness import SampleEvaluation


def make_result(name, cmf_values, ids=None):
    result = EvaluationResult(method=name, dataset="d")
    ids = ids or list(range(len(cmf_values)))
    for sample_id, value in zip(ids, cmf_values):
        result.samples.append(
            SampleEvaluation(
                sample_id=sample_id, precision=1 - value, recall=1 - value,
                rmf=value, cmf50=value, hitting=None, seconds=0.01,
            )
        )
    return result


class TestPairedBootstrap:
    def test_clear_difference_is_significant(self):
        rng = np.random.default_rng(0)
        a = make_result("A", list(rng.uniform(0.1, 0.2, 40)))
        b = make_result("B", list(rng.uniform(0.5, 0.6, 40)))
        comparison = paired_bootstrap(a, b, metric="cmf50", rng=1)
        assert comparison.mean_difference < 0
        assert comparison.significant
        assert comparison.p_better > 0.99  # lower cmf is better

    def test_identical_methods_not_significant(self):
        values = list(np.random.default_rng(2).uniform(0.2, 0.8, 30))
        a = make_result("A", values)
        b = make_result("B", values)
        comparison = paired_bootstrap(a, b, rng=1)
        assert comparison.mean_difference == pytest.approx(0.0)
        assert not comparison.significant

    def test_precision_direction(self):
        rng = np.random.default_rng(3)
        a = make_result("A", list(rng.uniform(0.1, 0.2, 40)))  # precision ~0.85
        b = make_result("B", list(rng.uniform(0.5, 0.6, 40)))  # precision ~0.45
        comparison = paired_bootstrap(a, b, metric="precision", rng=1)
        assert comparison.mean_difference > 0
        assert comparison.p_better > 0.99  # higher precision is better

    def test_mismatched_samples_rejected(self):
        a = make_result("A", [0.1, 0.2], ids=[1, 2])
        b = make_result("B", [0.1, 0.2], ids=[2, 3])
        with pytest.raises(ValueError):
            paired_bootstrap(a, b)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            paired_bootstrap(make_result("A", []), make_result("B", []))

    def test_bad_confidence_rejected(self):
        a = make_result("A", [0.1])
        b = make_result("B", [0.2])
        with pytest.raises(ValueError):
            paired_bootstrap(a, b, confidence=1.5)

    def test_describe_mentions_methods(self):
        a = make_result("LHMM", [0.1, 0.15, 0.12])
        b = make_result("STM", [0.3, 0.35, 0.32])
        text = paired_bootstrap(a, b, rng=1).describe()
        assert "LHMM" in text and "STM" in text
        assert "cmf50" in text

    def test_deterministic_given_seed(self):
        rng = np.random.default_rng(4)
        a = make_result("A", list(rng.uniform(0, 1, 20)))
        b = make_result("B", list(rng.uniform(0, 1, 20)))
        first = paired_bootstrap(a, b, rng=7)
        second = paired_bootstrap(a, b, rng=7)
        assert first.ci_low == second.ci_low
        assert first.ci_high == second.ci_high
