"""Tests for repro.cellular.simulator."""

import numpy as np
import pytest

from repro.cellular import SimulationConfig


class TestConfig:
    def test_defaults_validate(self):
        SimulationConfig().validate()

    def test_trip_range_checked(self):
        with pytest.raises(ValueError):
            SimulationConfig(min_trip_m=5000, max_trip_m=4000).validate()

    def test_intervals_checked(self):
        with pytest.raises(ValueError):
            SimulationConfig(gps_interval_s=0).validate()
        with pytest.raises(ValueError):
            SimulationConfig(
                cellular_interval_mean_s=100, cellular_interval_max_s=50
            ).validate()


class TestTrips:
    @pytest.fixture(scope="class")
    def trips(self, tiny_simulator):
        return tiny_simulator.simulate_many(8)

    def test_path_is_consecutive(self, trips, tiny_network):
        for trip in trips:
            for a, b in zip(trip.path, trip.path[1:]):
                assert (
                    tiny_network.segments[b].start_node
                    == tiny_network.segments[a].end_node
                )

    def test_gps_denser_than_cellular(self, trips):
        total_gps = sum(len(t.gps) for t in trips)
        total_cell = sum(len(t.cellular) for t in trips)
        assert total_gps > total_cell

    def test_gps_points_near_path(self, trips, tiny_network):
        for trip in trips:
            for point in trip.gps.points:
                dists = tiny_network.distances_to_segments(point.position, trip.path)
                assert dists.min() < 100.0  # gps noise is ~12 m

    def test_cellular_positions_are_tower_locations(self, trips, tiny_towers):
        for trip in trips:
            for point in trip.cellular.points:
                assert point.tower_id is not None
                assert point.position == tiny_towers.location(point.tower_id)

    def test_true_positions_aligned(self, trips):
        for trip in trips:
            assert len(trip.true_positions) == len(trip.cellular)

    def test_positioning_errors_realistic(self, trips):
        errors = np.concatenate([t.positioning_errors() for t in trips])
        assert errors.max() < 6000.0
        assert np.median(errors) > 30.0

    def test_timestamps_increase(self, trips):
        for trip in trips:
            for traj in (trip.gps, trip.cellular):
                times = [p.timestamp for p in traj.points]
                assert times == sorted(times)

    def test_cellular_gaps_capped(self, trips, tiny_simulator):
        cap = tiny_simulator.config.cellular_interval_max_s
        for trip in trips:
            for gap in trip.cellular.sampling_intervals():
                assert gap <= cap + 1e-9

    def test_deterministic_given_seed(self, tiny_network, tiny_towers):
        from repro.cellular import VehicleSimulator
        from tests.conftest import TINY_SIMULATION

        a = VehicleSimulator(tiny_network, tiny_towers, TINY_SIMULATION, rng=11)
        b = VehicleSimulator(tiny_network, tiny_towers, TINY_SIMULATION, rng=11)
        ta, tb = a.simulate_trip(0), b.simulate_trip(0)
        assert ta.path == tb.path
        assert [p.tower_id for p in ta.cellular] == [p.tower_id for p in tb.cellular]

    def test_trip_distance_in_configured_range(self, trips, tiny_network, tiny_simulator):
        cfg = tiny_simulator.config
        for trip in trips:
            start = tiny_network.segments[trip.path[0]].polyline.start
            end = tiny_network.segments[trip.path[-1]].polyline.end
            gap = start.distance_to(end)
            # Straight-line OD distance was sampled in range; small slack for
            # the node-vs-segment endpoints.
            assert gap <= cfg.max_trip_m * 1.3
