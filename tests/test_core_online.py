"""Tests for the online (streaming) matcher."""

import pytest

from repro.core import OnlineLHMM


class TestOnlineLHMM:
    def test_requires_fitted_matcher(self, tiny_dataset):
        from repro.core import LHMM
        from tests.conftest import tiny_lhmm_config

        with pytest.raises(RuntimeError):
            OnlineLHMM(LHMM(tiny_lhmm_config()))

    def test_rejects_bad_lag(self, trained_lhmm):
        with pytest.raises(ValueError):
            OnlineLHMM(trained_lhmm, lag=0)

    def test_empty_stream(self, trained_lhmm):
        online = OnlineLHMM(trained_lhmm)
        assert online.finish() == []

    def test_streaming_produces_connected_path(self, trained_lhmm, tiny_dataset):
        online = OnlineLHMM(trained_lhmm, lag=3)
        sample = tiny_dataset.test[0]
        path = online.match_stream(sample.cellular)
        assert path
        net = tiny_dataset.network
        breaks = sum(
            1
            for a, b in zip(path, path[1:])
            if net.segments[b].start_node != net.segments[a].end_node
        )
        assert breaks <= 1

    def test_commitment_keeps_pending_bounded(self, trained_lhmm, tiny_dataset):
        online = OnlineLHMM(trained_lhmm, lag=2)
        sample = tiny_dataset.test[1]
        for point in sample.cellular.points:
            online.add_point(point)
            assert online.pending_points() <= 2 + 1

    def test_committed_path_grows_monotonically(self, trained_lhmm, tiny_dataset):
        online = OnlineLHMM(trained_lhmm, lag=2)
        sample = tiny_dataset.test[0]
        committed_lengths = []
        for point in sample.cellular.points:
            online.add_point(point)
            committed_lengths.append(len(online.committed_path))
        assert committed_lengths == sorted(committed_lengths)

    def test_reset_then_replay_matches_fresh_instance(self, trained_lhmm, tiny_dataset):
        """A reset decoder is indistinguishable from a newly built one."""
        first, second = tiny_dataset.test[0], tiny_dataset.test[1]
        recycled = OnlineLHMM(trained_lhmm, lag=3)
        recycled.match_stream(first.cellular)  # dirty it with a full stream
        recycled.reset()
        assert recycled.pending_points() == 0
        assert recycled.committed_path == []

        fresh = OnlineLHMM(trained_lhmm, lag=3)
        commits_recycled, commits_fresh = [], []
        for point in second.cellular.points:
            recycled.add_point(point)
            fresh.add_point(point)
            commits_recycled.append(list(recycled.committed_path))
            commits_fresh.append(list(fresh.committed_path))
        assert commits_recycled == commits_fresh
        assert recycled.finish() == fresh.finish()

    def test_reset_empty_decoder_is_harmless(self, trained_lhmm):
        online = OnlineLHMM(trained_lhmm, lag=2)
        online.reset()
        assert online.finish() == []

    def test_online_close_to_batch(self, trained_lhmm, tiny_dataset):
        """With a generous lag the streamed path should resemble batch output."""
        from repro.eval.metrics import corridor_mismatch_fraction

        sample = tiny_dataset.test[0]
        batch = trained_lhmm.match(sample.cellular)
        online = OnlineLHMM(trained_lhmm, lag=8).match_stream(sample.cellular)
        batch_cmf = corridor_mismatch_fraction(
            tiny_dataset.network, sample.truth_path, batch.path
        )
        online_cmf = corridor_mismatch_fraction(
            tiny_dataset.network, sample.truth_path, online
        )
        # online has no shortcuts and lagged decisions: allow a margin
        assert online_cmf <= batch_cmf + 0.35
