"""Tests for LHMM save/load persistence."""

import numpy as np
import pytest

from repro.core import LHMM


class TestPersistence:
    def test_unfitted_matcher_cannot_save(self, tmp_path):
        from tests.conftest import tiny_lhmm_config

        matcher = LHMM(tiny_lhmm_config())
        with pytest.raises(RuntimeError):
            matcher.save(tmp_path / "m.npz")

    def test_round_trip_reproduces_matches(self, trained_lhmm, tiny_dataset, tmp_path):
        path = tmp_path / "lhmm.npz"
        trained_lhmm.save(path)
        restored = LHMM.load(path, tiny_dataset)
        for sample in tiny_dataset.test[:3]:
            original = trained_lhmm.match(sample.cellular)
            loaded = restored.match(sample.cellular)
            assert original.path == loaded.path
            assert original.matched_sequence == loaded.matched_sequence
            assert original.score == pytest.approx(loaded.score)

    def test_round_trip_preserves_config(self, trained_lhmm, tiny_dataset, tmp_path):
        path = tmp_path / "lhmm.npz"
        trained_lhmm.save(path)
        restored = LHMM.load(path, tiny_dataset)
        assert restored.config == trained_lhmm.config

    def test_round_trip_preserves_embeddings(self, trained_lhmm, tiny_dataset, tmp_path):
        path = tmp_path / "lhmm.npz"
        trained_lhmm.save(path)
        restored = LHMM.load(path, tiny_dataset)
        assert np.allclose(restored.node_embeddings, trained_lhmm.node_embeddings)

    def test_round_trip_preserves_cooccurrence(self, trained_lhmm, tiny_dataset, tmp_path):
        path = tmp_path / "lhmm.npz"
        trained_lhmm.save(path)
        restored = LHMM.load(path, tiny_dataset)
        tower = next(iter(tiny_dataset.towers.towers))
        for seg in list(trained_lhmm.graph.roads_seen_with(tower))[:5]:
            assert restored.graph.co_occurrence_frequency(
                tower, seg
            ) == pytest.approx(trained_lhmm.graph.co_occurrence_frequency(tower, seg))
