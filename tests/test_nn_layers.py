"""Tests for repro.nn.layers and repro.nn.module."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn import MLP, Dropout, Embedding, LayerNorm, Linear, Module, Tensor


class TestLinear:
    def test_shapes(self):
        layer = Linear(4, 3, rng=0)
        out = layer(Tensor(np.ones((5, 4))))
        assert out.shape == (5, 3)

    def test_no_bias(self):
        layer = Linear(4, 3, bias=False, rng=0)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_zero_input_gives_bias(self):
        layer = Linear(2, 2, rng=0)
        layer.bias.data[:] = [1.0, 2.0]
        out = layer(Tensor(np.zeros((1, 2)))).numpy()
        assert np.allclose(out, [[1.0, 2.0]])


class TestMLP:
    def test_requires_two_dims(self):
        with pytest.raises(ValueError):
            MLP([4])

    def test_unknown_activation(self):
        with pytest.raises(ValueError):
            MLP([4, 2], activation="swish")

    def test_output_shape(self):
        mlp = MLP([4, 8, 2], rng=0)
        assert mlp(Tensor(np.ones((3, 4)))).shape == (3, 2)

    def test_identity_output_activation_emits_logits(self):
        mlp = MLP([2, 4, 1], rng=0)
        out = mlp(Tensor(np.random.default_rng(0).normal(size=(50, 2)))).numpy()
        assert out.min() < 0 or out.max() > 1  # not squashed

    def test_sigmoid_output_activation(self):
        mlp = MLP([2, 4, 1], out_activation="sigmoid", rng=0)
        out = mlp(Tensor(np.random.default_rng(0).normal(size=(20, 2)))).numpy()
        assert np.all((out > 0) & (out < 1))


class TestEmbedding:
    def test_lookup_shape(self):
        emb = Embedding(10, 4, rng=0)
        assert emb(np.array([1, 5, 5])).shape == (3, 4)

    def test_out_of_range_rejected(self):
        emb = Embedding(10, 4, rng=0)
        with pytest.raises(IndexError):
            emb(np.array([10]))

    def test_all_returns_full_table(self):
        emb = Embedding(6, 3, rng=0)
        assert emb.all().shape == (6, 3)


class TestLayerNorm:
    def test_normalises_rows(self):
        norm = LayerNorm(8)
        x = Tensor(np.random.default_rng(0).normal(5.0, 3.0, size=(4, 8)))
        out = norm(x).numpy()
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-6)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-2)


class TestDropoutLayer:
    def test_validation(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_train_vs_eval(self):
        layer = Dropout(0.5, rng=0)
        x = Tensor(np.ones(1000))
        train_out = layer(x).numpy()
        layer.eval()
        eval_out = layer(x).numpy()
        assert (train_out == 0).any()
        assert not (eval_out == 0).any()


class TestModule:
    def test_parameter_discovery_nested(self):
        class Model(Module):
            def __init__(self):
                super().__init__()
                self.layers = [Linear(2, 2, rng=0), Linear(2, 2, rng=0)]
                self.head = Linear(2, 1, rng=0)

        model = Model()
        names = [name for name, _ in model.named_parameters()]
        assert len(names) == 6
        assert "layers.0.weight" in names
        assert "head.bias" in names

    def test_num_parameters(self):
        model = Linear(3, 2, rng=0)
        assert model.num_parameters() == 3 * 2 + 2

    def test_state_dict_round_trip(self):
        a = MLP([3, 4, 2], rng=0)
        b = MLP([3, 4, 2], rng=1)
        b.load_state_dict(a.state_dict())
        x = Tensor(np.ones((2, 3)))
        assert np.allclose(a(x).numpy(), b(x).numpy())

    def test_state_dict_mismatch_rejected(self):
        a = MLP([3, 4, 2], rng=0)
        b = MLP([3, 5, 2], rng=0)
        with pytest.raises((KeyError, ValueError)):
            b.load_state_dict(a.state_dict())

    def test_train_eval_propagates(self):
        class Model(Module):
            def __init__(self):
                super().__init__()
                self.drop = Dropout(0.5, rng=0)

        model = Model()
        model.eval()
        assert not model.drop.training
        model.train()
        assert model.drop.training

    def test_zero_grad(self):
        model = Linear(2, 2, rng=0)
        model(Tensor(np.ones((1, 2)))).sum().backward()
        assert model.weight.grad is not None
        model.zero_grad()
        assert model.weight.grad is None


class TestLinearProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        hnp.arrays(np.float64, (3, 4), elements=st.floats(-5, 5, allow_nan=False)),
        hnp.arrays(np.float64, (3, 4), elements=st.floats(-5, 5, allow_nan=False)),
        st.floats(-3, 3, allow_nan=False),
    )
    def test_linearity(self, a, b, alpha):
        layer = Linear(4, 2, bias=False, rng=0)
        lhs = layer(Tensor(a + alpha * b)).numpy()
        rhs = layer(Tensor(a)).numpy() + alpha * layer(Tensor(b)).numpy()
        assert np.allclose(lhs, rhs, atol=1e-9)

    @settings(max_examples=20, deadline=None)
    @given(hnp.arrays(np.float64, (5, 3), elements=st.floats(-10, 10, allow_nan=False)))
    def test_bias_shift(self, x):
        layer = Linear(3, 3, rng=1)
        no_bias = (Tensor(x) @ layer.weight).numpy()
        with_bias = layer(Tensor(x)).numpy()
        assert np.allclose(with_bias - no_bias, layer.bias.data)
