"""Generation parity through the architecture registry.

An artifact's manifest ``meta`` (``arch`` name + ``config`` dict +
``weights`` list) must be the *only* reconstruction recipe: for every
registered architecture, ``make_model(name, **meta)`` followed by
``attach_dataset`` + ``load_state_dict`` has to rebuild a matcher whose
outputs are bit-identical to :meth:`LHMM.load` — and both must agree
with the matcher that wrote the artifact.  The default architecture is
additionally pinned against the committed golden corpus.
"""

from __future__ import annotations

from dataclasses import asdict, replace

import pytest

from repro.core import LHMM, LHMMConfig, arch_name, make_model, registered_models
from repro.core.matcher import LHMM as MatcherLHMM
from repro.errors import ArtifactIncompatible
from repro.nn.serialization import read_artifact
from repro.serve import protocol
from repro.testing import golden

from .conftest import tiny_lhmm_config

#: Ablation switch per Table III variant — ``arch_name`` must map each
#: config onto its registry name and the registry must round-trip it.
VARIANT_FLAGS = {
    "lhmm": {},
    "lhmm-e": {"use_graph_encoder": False},
    "lhmm-h": {"heterogeneous": False},
    "lhmm-o": {"use_implicit_observation": False},
    "lhmm-t": {"use_implicit_transition": False},
    "lhmm-s": {"use_shortcuts": False},
}


def _variant_config(name: str) -> LHMMConfig:
    # epochs=0 keeps the per-variant fit cheap: parity only needs the
    # initialised weights to survive the round-trip, not a good model.
    return replace(tiny_lhmm_config(), epochs=0, **VARIANT_FLAGS[name])


def _served_bytes(matcher: LHMM, samples) -> list[dict]:
    return [
        protocol.encode_match_result(matcher.match(s.cellular)) for s in samples
    ]


class TestRegistry:
    def test_builtin_family_is_registered(self):
        assert set(VARIANT_FLAGS) <= set(registered_models())

    def test_unknown_name_lists_registered_names(self):
        with pytest.raises(ArtifactIncompatible) as excinfo:
            make_model("lhmm-zz", config={})
        message = str(excinfo.value)
        assert "lhmm-zz" in message
        for name in registered_models():
            assert name in message

    def test_arch_name_covers_every_variant(self):
        for name in VARIANT_FLAGS:
            assert arch_name(_variant_config(name)) == name

    def test_factory_honours_the_config_dict(self):
        config = _variant_config("lhmm-s")
        matcher = make_model("lhmm-s", config=asdict(config))
        assert isinstance(matcher, MatcherLHMM)
        assert matcher.config.use_shortcuts is False
        assert matcher.config.embedding_dim == config.embedding_dim

    def test_factory_tolerates_extra_manifest_keys(self):
        """Manifests grow fields over time; builders must not choke."""
        matcher = make_model(
            "lhmm",
            config=asdict(tiny_lhmm_config()),
            arch="lhmm",
            weights=["raw", "ema"],
            future_field={"nested": True},
        )
        assert isinstance(matcher, MatcherLHMM)


class TestManifestOnlyReconstruction:
    @pytest.mark.parametrize("name", sorted(VARIANT_FLAGS))
    def test_every_variant_rebuilds_bit_identical(
        self, name, tiny_dataset, tmp_path
    ):
        fitted = LHMM(_variant_config(name), rng=5).fit(tiny_dataset)
        path = tmp_path / f"{name}.npz"
        fitted.save(path)

        artifact = read_artifact(path, kind=LHMM.MODEL_KIND)
        meta = artifact.meta
        assert meta["arch"] == name
        assert meta["weights"] == ["raw", "ema"]

        # Reconstruction recipe A: the raw registry path.
        rebuilt = make_model(meta["arch"], **meta)
        rebuilt.attach_dataset(tiny_dataset)
        rebuilt.load_state_dict(artifact.arrays, origin=str(path))
        # Recipe B: the public loader (dispatches through the same registry).
        loaded = LHMM.load(path, tiny_dataset)

        samples = tiny_dataset.test[:3]
        reference = _served_bytes(fitted, samples)
        assert _served_bytes(rebuilt, samples) == reference
        assert _served_bytes(loaded, samples) == reference

    def test_ema_weights_rebuild_bit_identical(self, tiny_dataset, tmp_path):
        fitted = LHMM(tiny_lhmm_config(), rng=5).fit(tiny_dataset)
        path = tmp_path / "model.npz"
        fitted.save(path)

        artifact = read_artifact(path, kind=LHMM.MODEL_KIND)
        rebuilt = make_model(artifact.meta["arch"], **artifact.meta)
        rebuilt.attach_dataset(tiny_dataset)
        rebuilt.load_state_dict(artifact.arrays, origin=str(path), weights="ema")
        loaded = LHMM.load(path, tiny_dataset, weights="ema")

        samples = tiny_dataset.test[:3]
        assert _served_bytes(rebuilt, samples) == _served_bytes(loaded, samples)
        assert rebuilt.weights_variant == "ema"

    def test_unknown_arch_in_manifest_fails_actionably(
        self, tiny_dataset, tmp_path
    ):
        from repro.nn.serialization import write_artifact

        fitted = LHMM(_variant_config("lhmm"), rng=5).fit(tiny_dataset)
        path = tmp_path / "model.npz"
        fitted.save(path)
        artifact = read_artifact(path, kind=LHMM.MODEL_KIND)
        meta = artifact.meta
        meta["arch"] = "lhmm-from-the-future"
        forged = tmp_path / "future.npz"
        write_artifact(forged, artifact.arrays, kind=LHMM.MODEL_KIND, meta=meta)

        with pytest.raises(ArtifactIncompatible) as excinfo:
            LHMM.load(forged, tiny_dataset)
        assert "lhmm-from-the-future" in str(excinfo.value)
        assert "lhmm-s" in str(excinfo.value)  # lists the registered names


class TestGoldenCorpusParity:
    def test_registry_reconstruction_matches_committed_corpus(self, tmp_path):
        """The registry path reproduces the pinned golden matches exactly."""
        corpus_path = golden.default_corpus_path()
        assert corpus_path.exists(), (
            f"missing {corpus_path}; generate with `python -m repro golden --regen`"
        )
        corpus = golden.load_corpus(corpus_path)

        dataset = golden.build_golden_dataset()
        matcher = golden.build_golden_matcher(dataset)
        path = tmp_path / "golden.npz"
        matcher.save(path)

        artifact = read_artifact(path, kind=LHMM.MODEL_KIND)
        rebuilt = make_model(artifact.meta["arch"], **artifact.meta)
        rebuilt.attach_dataset(dataset)
        rebuilt.load_state_dict(artifact.arrays, origin=str(path))

        records = golden.compute_golden_records(rebuilt, dataset)
        assert golden.diff_records(records, corpus["records"]) == []
