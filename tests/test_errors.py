"""Unit tests for the error taxonomy and the fault-injection harness."""

import pytest

from repro.errors import (
    DegradedResult,
    InvalidTrajectoryInput,
    MatchError,
    MatchFailure,
    PoolBroken,
    ReproError,
    RoutingFailure,
    WorkerCrash,
)
from repro.testing import faults


class TestTaxonomy:
    def test_every_class_descends_from_repro_error(self):
        for klass in (
            InvalidTrajectoryInput,
            MatchFailure,
            RoutingFailure,
            WorkerCrash,
            PoolBroken,
            DegradedResult,
        ):
            assert issubclass(klass, ReproError)

    def test_backward_compatible_builtin_bases(self):
        # Pre-taxonomy callers catch ValueError / RuntimeError; both must
        # keep working.
        assert issubclass(InvalidTrajectoryInput, ValueError)
        assert issubclass(MatchFailure, RuntimeError)
        assert issubclass(RoutingFailure, RuntimeError)
        assert issubclass(WorkerCrash, RuntimeError)
        assert issubclass(PoolBroken, RuntimeError)

    def test_codes_are_unique_and_stable(self):
        codes = {
            klass.code
            for klass in (
                ReproError,
                InvalidTrajectoryInput,
                MatchFailure,
                RoutingFailure,
                WorkerCrash,
                PoolBroken,
                DegradedResult,
            )
        }
        assert len(codes) == 7
        assert InvalidTrajectoryInput.code == "invalid_trajectory"
        assert WorkerCrash.code == "worker_crash"

    def test_http_status_split(self):
        assert InvalidTrajectoryInput.http_status == 422
        assert MatchFailure.http_status == 500
        assert PoolBroken.http_status == 500

    def test_to_payload(self):
        payload = RoutingFailure("ubodt table corrupt").to_payload()
        assert payload == {"code": "routing_failure", "message": "ubodt table corrupt"}


class TestMatchErrorSlot:
    def test_from_exception_carries_code_and_index(self):
        slot = MatchError.from_exception(InvalidTrajectoryInput("empty"), index=3)
        assert slot.code == "invalid_trajectory"
        assert slot.message == "empty"
        assert slot.index == 3
        assert slot.http_status == 422

    def test_from_foreign_exception_defaults_to_match_failure(self):
        slot = MatchError.from_exception(KeyError("segment 9"), index=0)
        assert slot.code == "match_failure"
        assert slot.http_status == 500

    def test_raise_round_trips_the_taxonomy_class(self):
        for klass in (InvalidTrajectoryInput, RoutingFailure, WorkerCrash, PoolBroken):
            slot = MatchError.from_exception(klass("boom"))
            with pytest.raises(klass, match="boom"):
                slot.raise_()

    def test_is_picklable(self):
        import pickle

        slot = MatchError(code="worker_crash", message="died", index=7)
        clone = pickle.loads(pickle.dumps(slot))
        assert clone == slot


class TestFaultSpecs:
    def test_parse_grammar(self):
        specs = faults.parse_specs(
            "worker.chunk:kill:chunk=1:once=/tmp/tok,"
            "match.learned:raise:error=routing,"
            "worker.chunk:hang:seconds=2.5"
        )
        assert [s.point for s in specs] == ["worker.chunk", "match.learned", "worker.chunk"]
        assert specs[0].action == "kill"
        assert specs[0].match == {"chunk": "1"}
        assert specs[0].once_path == "/tmp/tok"
        assert specs[1].error == "routing"
        assert specs[2].seconds == 2.5

    def test_parse_rejects_bare_point(self):
        with pytest.raises(ValueError):
            faults.parse_specs("worker.chunk")

    def test_applies_requires_matching_context(self):
        spec = faults.parse_specs("worker.chunk:raise:chunk=1")[0]
        assert spec.applies("worker.chunk", {"chunk": 1})
        assert not spec.applies("worker.chunk", {"chunk": 2})
        assert not spec.applies("match", {"chunk": 1})

    def test_once_token_claims_exactly_once(self, tmp_path):
        token = tmp_path / "tok"
        spec = faults.FaultSpec(point="p", action="raise", once_path=str(token))
        assert spec.claim()
        assert not spec.claim()
        assert token.exists()

    def test_armed_context_manager_raises_then_disarms(self):
        with faults.armed("match.learned", "raise", error="routing"):
            with pytest.raises(RoutingFailure):
                faults.fire("match.learned", trajectory_id=0)
        faults.fire("match.learned", trajectory_id=0)  # disarmed: no-op

    def test_fire_matches_context_keys(self):
        with faults.armed("match", "raise", trajectory_id=4):
            faults.fire("match", trajectory_id=3)  # wrong id: no-op
            with pytest.raises(MatchFailure):
                faults.fire("match", trajectory_id=4)

    def test_arm_rejects_unknown_action(self):
        with pytest.raises(ValueError):
            faults.arm("match", "explode")
