"""Tests for the cluster tier's plumbing: IPC framing, shared-memory
artifact packs, and the zero-copy attach constructors.

The contract under test is byte-fidelity end to end: what goes into a
frame or a shared segment must come out bitwise-equal, and a matcher
built over attached arrays must answer exactly like one loaded from the
artifact file directly.
"""

from __future__ import annotations

import asyncio
import socket
import struct
import threading

import numpy as np
import pytest

from repro.core import LHMM
from repro.datasets import save_dataset
from repro.network.ubodt import Ubodt
from repro.serve import ipc
from repro.serve.shards import ShardRegistry, ShardSpec
from repro.serve.shm import ALIGNMENT, SharedArrayPack, leaked_segments


# =====================================================================
# IPC framing
# =====================================================================
class TestIpcBlocking:
    def test_round_trip_over_socketpair(self):
        a, b = socket.socketpair()
        try:
            message = {"id": 7, "op": "match", "values": [1.5, -0.25, 1e-17]}
            ipc.send_message(a, message)
            received = ipc.recv_message(b)
            assert received == message
            # Floats survive exactly: JSON repr round-trips doubles.
            assert received["values"] == message["values"]
        finally:
            a.close()
            b.close()

    def test_many_messages_in_order(self):
        a, b = socket.socketpair()
        try:
            for i in range(50):
                ipc.send_message(a, {"id": i, "op": "ping"})
            for i in range(50):
                assert ipc.recv_message(b)["id"] == i
        finally:
            a.close()
            b.close()

    def test_clean_eof_returns_none(self):
        a, b = socket.socketpair()
        a.close()
        try:
            assert ipc.recv_message(b) is None
        finally:
            b.close()

    def test_eof_mid_frame_raises(self):
        a, b = socket.socketpair()
        try:
            # A header announcing 100 bytes, then only 3 arrive before EOF.
            a.sendall(struct.pack("!I", 100) + b"abc")
            a.close()
            with pytest.raises(ipc.IpcError, match="mid-frame"):
                ipc.recv_message(b)
        finally:
            b.close()

    def test_oversized_announced_frame_rejected(self):
        a, b = socket.socketpair()
        try:
            a.sendall(struct.pack("!I", ipc.MAX_FRAME_BYTES + 1))
            with pytest.raises(ipc.IpcError, match="cap"):
                ipc.recv_message(b)
        finally:
            a.close()
            b.close()

    def test_oversized_outgoing_frame_rejected(self):
        with pytest.raises(ipc.IpcError, match="exceeds"):
            ipc.frame(b"x" * (ipc.MAX_FRAME_BYTES + 1))

    def test_non_object_frame_rejected(self):
        a, b = socket.socketpair()
        try:
            a.sendall(ipc.frame(b"[1,2,3]"))
            with pytest.raises(ipc.IpcError, match="JSON object"):
                ipc.recv_message(b)
        finally:
            a.close()
            b.close()

    def test_message_payload_strips_envelope(self):
        assert ipc.message_payload({"id": 1, "op": "x", "a": 2}) == {"a": 2}


class TestIpcAsyncio:
    def test_async_and_blocking_sides_interoperate(self):
        """The gateway (asyncio) and worker (blocking) framing agree."""
        gateway_side, worker_side = socket.socketpair()
        replies = []

        def worker():
            # The worker loop: blocking recv, blocking reply, exit on EOF.
            while True:
                message = ipc.recv_message(worker_side)
                if message is None:
                    break
                ipc.send_message(
                    worker_side, {"id": message["id"], "ok": True, "echo": message}
                )
            worker_side.close()

        thread = threading.Thread(target=worker)
        thread.start()

        async def gateway():
            reader, writer = await asyncio.open_connection(sock=gateway_side)
            for i in range(10):
                await ipc.write_message(reader and writer, {"id": i, "op": "ping"})
            for _ in range(10):
                replies.append(await ipc.read_message(reader))
            writer.close()

        asyncio.run(gateway())
        thread.join(timeout=5)
        assert [r["id"] for r in replies] == list(range(10))
        assert all(r["ok"] for r in replies)

    def test_async_eof_returns_none(self):
        a, b = socket.socketpair()
        a.close()

        async def read():
            reader, writer = await asyncio.open_connection(sock=b)
            result = await ipc.read_message(reader)
            writer.close()
            return result

        assert asyncio.run(read()) is None


# =====================================================================
# shared-memory packs
# =====================================================================
class TestSharedArrayPack:
    def _arrays(self):
        rng = np.random.default_rng(5)
        return {
            "f64": rng.standard_normal((7, 3)),
            "i32": np.arange(11, dtype=np.int32),
            "i64": np.arange(5, dtype=np.int64) * 10,
            "empty": np.zeros((0, 4), dtype=np.float64),
        }

    def test_publish_attach_bitwise_equal(self):
        source = self._arrays()
        pack = SharedArrayPack.publish(source)
        try:
            attached = SharedArrayPack.attach(pack.meta)
            try:
                for name, original in source.items():
                    view = attached[name]
                    assert view.dtype == original.dtype
                    assert view.shape == original.shape
                    assert view.tobytes() == original.tobytes()
            finally:
                attached.close()
        finally:
            pack.unlink()
            pack.close()

    def test_views_are_read_only_on_both_sides(self):
        pack = SharedArrayPack.publish({"a": np.arange(4.0)})
        try:
            attached = SharedArrayPack.attach(pack.meta)
            for side in (pack, attached):
                with pytest.raises(ValueError):
                    side["a"][0] = 99.0
            attached.close()
        finally:
            pack.unlink()
            pack.close()

    def test_offsets_are_aligned(self):
        pack = SharedArrayPack.publish(
            {"a": np.zeros(3, dtype=np.int8), "b": np.zeros(5, dtype=np.float64)}
        )
        try:
            for spec in pack.meta["arrays"].values():
                assert spec["offset"] % ALIGNMENT == 0
        finally:
            pack.unlink()
            pack.close()

    def test_unlink_removes_segment(self):
        pack = SharedArrayPack.publish({"a": np.arange(3.0)})
        name = pack.segment_name
        assert name in leaked_segments()
        pack.unlink()
        pack.close()
        assert name not in leaked_segments()

    def test_attacher_refuses_to_unlink(self):
        pack = SharedArrayPack.publish({"a": np.arange(3.0)})
        try:
            attached = SharedArrayPack.attach(pack.meta)
            with pytest.raises(RuntimeError, match="does not own"):
                attached.unlink()
            attached.close()
        finally:
            pack.unlink()
            pack.close()

    def test_native_dtypes_preserved(self):
        """scipy CSR index arrays may be int32 — no silent upcasting."""
        pack = SharedArrayPack.publish({"idx": np.arange(9, dtype=np.int32)})
        try:
            attached = SharedArrayPack.attach(pack.meta)
            assert attached["idx"].dtype == np.int32
            attached.close()
        finally:
            pack.unlink()
            pack.close()


# =====================================================================
# zero-copy attach constructors
# =====================================================================
class TestAdoptConstructors:
    def test_network_adopt_preserves_routing(self, tiny_dataset):
        network = tiny_dataset.network
        engine = tiny_dataset.engine
        pairs = [
            (a, b)
            for a in list(network.segments)[:4]
            for b in list(network.segments)[-4:]
        ]
        before = [engine.route_length(a, b) for a, b in pairs]
        # Keep references to the original (plain-memory) arrays so the
        # session-scoped network can be restored afterwards: an adopted
        # network must never outlive its segment (workers hold their pack
        # for life for exactly this reason).
        original = network.shared_state_arrays()
        pack = SharedArrayPack.publish(original)
        attached = SharedArrayPack.attach(pack.meta)
        try:
            network.adopt_shared_state(dict(attached.arrays))
            engine.clear_cache()
            after = [engine.route_length(a, b) for a, b in pairs]
            assert after == before
        finally:
            network.adopt_shared_state(original)
            engine.clear_cache()
            attached.close()
            pack.unlink()
            pack.close()

    def test_ubodt_attach_sorted_lookups_identical(self, tiny_dataset):
        table = Ubodt.build(tiny_dataset.network, 1500.0)
        attached = Ubodt.attach_sorted(table.delta_m, table.sorted_arrays())
        segments = list(tiny_dataset.network.segments)[:12]
        for a in segments:
            for b in segments:
                assert attached.lookup(a, b) == table.lookup(a, b)

    def test_registry_attach_matches_direct_load(
        self, tmp_path, tiny_dataset, trained_lhmm
    ):
        """The full publish→attach path answers like LHMM.load."""
        dataset_path = tmp_path / "tiny.json.gz"
        model_path = tmp_path / "model.npz"
        save_dataset(tiny_dataset, dataset_path)
        trained_lhmm.save(model_path)

        registry = ShardRegistry.publish(
            [ShardSpec(region="default", dataset=str(dataset_path),
                       model=str(model_path))]
        )
        try:
            attached_matcher, pack = registry.attach_matcher("default")
            direct = LHMM.load(model_path, tiny_dataset)
            for sample in tiny_dataset.samples[:5]:
                got = attached_matcher.match(sample.cellular)
                expected = direct.match(sample.cellular)
                assert got.path == expected.path
                assert got.matched_sequence == expected.matched_sequence
                assert got.score == expected.score
            # The attached model arrays are views over the shared
            # segment, bitwise-equal to the published contents.
            for key in pack.arrays:
                if key.startswith("model."):
                    assert pack[key].flags.writeable is False
            pack.close()
        finally:
            registry.close(unlink=True)
        assert leaked_segments() == []
