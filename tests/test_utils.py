"""Tests for repro.utils."""

import time

import numpy as np
import pytest

from repro.utils import Timer, derive_rng, ensure_rng


class TestRng:
    def test_ensure_from_int_is_deterministic(self):
        assert ensure_rng(5).integers(0, 100) == ensure_rng(5).integers(0, 100)

    def test_ensure_passthrough(self):
        rng = np.random.default_rng(0)
        assert ensure_rng(rng) is rng

    def test_ensure_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_derive_deterministic(self):
        a = derive_rng(7, "city").integers(0, 1000)
        b = derive_rng(7, "city").integers(0, 1000)
        assert a == b

    def test_derive_keys_independent(self):
        a = derive_rng(7, "city").integers(0, 10**9)
        b = derive_rng(7, "towers").integers(0, 10**9)
        assert a != b


class TestTimer:
    def test_context_manager(self):
        timer = Timer()
        with timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.01
        assert timer.count == 1

    def test_accumulates(self):
        timer = Timer()
        for _ in range(3):
            with timer:
                pass
        assert timer.count == 3
        assert timer.mean == pytest.approx(timer.elapsed / 3)

    def test_double_start_rejected(self):
        timer = Timer()
        timer.start()
        with pytest.raises(RuntimeError):
            timer.start()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_mean_before_any_interval(self):
        assert Timer().mean == 0.0
