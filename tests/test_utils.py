"""Tests for repro.utils."""

import time

import numpy as np
import pytest

from repro.utils import LatencyHistogram, Timer, derive_rng, ensure_rng


class TestRng:
    def test_ensure_from_int_is_deterministic(self):
        assert ensure_rng(5).integers(0, 100) == ensure_rng(5).integers(0, 100)

    def test_ensure_passthrough(self):
        rng = np.random.default_rng(0)
        assert ensure_rng(rng) is rng

    def test_ensure_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_derive_deterministic(self):
        a = derive_rng(7, "city").integers(0, 1000)
        b = derive_rng(7, "city").integers(0, 1000)
        assert a == b

    def test_derive_keys_independent(self):
        a = derive_rng(7, "city").integers(0, 10**9)
        b = derive_rng(7, "towers").integers(0, 10**9)
        assert a != b


class TestTimer:
    def test_context_manager(self):
        timer = Timer()
        with timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.01
        assert timer.count == 1

    def test_accumulates(self):
        timer = Timer()
        for _ in range(3):
            with timer:
                pass
        assert timer.count == 3
        assert timer.mean == pytest.approx(timer.elapsed / 3)

    def test_double_start_rejected(self):
        timer = Timer()
        timer.start()
        with pytest.raises(RuntimeError):
            timer.start()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_mean_before_any_interval(self):
        assert Timer().mean == 0.0


class TestLatencyHistogram:
    def test_empty_snapshot_is_zero(self):
        snap = LatencyHistogram().snapshot()
        assert snap["count"] == 0
        assert snap["p50_s"] == 0.0
        assert snap["p99_s"] == 0.0

    def test_tracks_count_mean_and_extremes(self):
        histogram = LatencyHistogram()
        for value in (0.01, 0.02, 0.03):
            histogram.record(value)
        snap = histogram.snapshot()
        assert snap["count"] == 3
        assert snap["mean_s"] == pytest.approx(0.02)
        assert snap["min_s"] == 0.01
        assert snap["max_s"] == 0.03

    def test_percentiles_are_order_of_magnitude_accurate(self):
        histogram = LatencyHistogram()
        values = [i / 1000.0 for i in range(1, 1001)]  # 1ms .. 1s uniform
        for value in values:
            histogram.record(value)
        # Geometric buckets with growth 1.25: estimates within ~25%.
        assert histogram.percentile(50) == pytest.approx(0.5, rel=0.25)
        assert histogram.percentile(99) == pytest.approx(0.99, rel=0.25)

    def test_percentiles_clamped_to_observed_range(self):
        histogram = LatencyHistogram()
        histogram.record(0.05)
        assert histogram.percentile(0) == 0.05
        assert histogram.percentile(100) == 0.05

    def test_out_of_range_values_are_counted(self):
        histogram = LatencyHistogram(least=1e-3, most=1.0)
        histogram.record(1e-9)  # underflow bucket
        histogram.record(50.0)  # overflow bucket
        snap = histogram.snapshot()
        assert snap["count"] == 2
        assert snap["min_s"] == 1e-9
        assert snap["max_s"] == 50.0

    def test_rejects_bad_quantile(self):
        with pytest.raises(ValueError):
            LatencyHistogram().percentile(150)

    def test_thread_safety_smoke(self):
        import threading

        histogram = LatencyHistogram()

        def hammer():
            for _ in range(500):
                histogram.record(0.01)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert histogram.snapshot()["count"] == 2000
