"""Tests for repro.core.het_encoder."""

import numpy as np
import pytest

from repro.core import HetGraphEncoder, MlpNodeEncoder, RelationGraph


@pytest.fixture(scope="module")
def graph(tiny_dataset):
    return RelationGraph(tiny_dataset.network, tiny_dataset.towers).build(
        tiny_dataset.train
    )


class TestHetGraphEncoder:
    def test_requires_built_graph(self, tiny_dataset):
        empty = RelationGraph(tiny_dataset.network, tiny_dataset.towers)
        with pytest.raises(ValueError):
            HetGraphEncoder(empty, dim=8)

    def test_output_shape(self, graph):
        encoder = HetGraphEncoder(graph, dim=8, num_layers=2, rng=0)
        out = encoder()
        assert out.shape == (graph.num_nodes, 8)

    def test_heterogeneous_has_per_relation_weights(self, graph):
        het = HetGraphEncoder(graph, dim=8, num_layers=1, heterogeneous=True, rng=0)
        homo = HetGraphEncoder(graph, dim=8, num_layers=1, heterogeneous=False, rng=0)
        assert het.num_parameters() > homo.num_parameters()

    def test_messages_propagate_between_node_types(self, graph):
        """Perturbing a tower embedding must move its co-occurring roads."""
        encoder = HetGraphEncoder(graph, dim=8, num_layers=2, rng=0)
        co = graph.edges["CO"]
        tower_node = int(co.sources[0])
        road_node = int(co.targets[0])
        base = encoder().numpy()[road_node].copy()
        encoder.embedding.weight.data[tower_node] += 10.0
        moved = encoder().numpy()[road_node]
        assert not np.allclose(base, moved)

    def test_gradients_reach_embeddings(self, graph):
        encoder = HetGraphEncoder(graph, dim=8, num_layers=1, rng=0)
        encoder().sum().backward()
        assert encoder.embedding.weight.grad is not None
        assert np.abs(encoder.embedding.weight.grad).sum() > 0

    def test_deterministic_given_seed(self, graph):
        a = HetGraphEncoder(graph, dim=8, rng=5)().numpy()
        b = HetGraphEncoder(graph, dim=8, rng=5)().numpy()
        assert np.allclose(a, b)

    def test_outputs_finite_and_nonnegative(self, graph):
        out = HetGraphEncoder(graph, dim=8, rng=0)().numpy()
        assert np.isfinite(out).all()
        assert (out >= 0).all()  # final ReLU


class TestMlpNodeEncoder:
    def test_output_shape(self, graph):
        encoder = MlpNodeEncoder(graph, dim=8, rng=0)
        assert encoder().shape == (graph.num_nodes, 8)

    def test_ignores_graph_structure(self, graph):
        """Perturbing a tower must NOT move other nodes (no propagation)."""
        encoder = MlpNodeEncoder(graph, dim=8, rng=0)
        co = graph.edges["CO"]
        tower_node = int(co.sources[0])
        road_node = int(co.targets[0])
        base = encoder().numpy()[road_node].copy()
        encoder.embedding.weight.data[tower_node] += 10.0
        moved = encoder().numpy()[road_node]
        assert np.allclose(base, moved)
