"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.datasets import save_dataset


@pytest.fixture(scope="module")
def dataset_file(tiny_dataset, tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "city.json.gz"
    save_dataset(tiny_dataset, path)
    return path


@pytest.fixture(scope="module")
def model_file(trained_lhmm, tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "model.npz"
    trained_lhmm.save(path)
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out


class TestGenerate:
    def test_generates_and_reports(self, tmp_path, capsys):
        out = tmp_path / "mini.json.gz"
        code = main(
            [
                "generate",
                "--preset",
                "xiamen",
                "--trajectories",
                "5",
                "--scale",
                "0.4",
                "--seed",
                "3",
                "-o",
                str(out),
            ]
        )
        assert code == 0
        assert out.exists()
        assert "5 samples" in capsys.readouterr().out or "samples" in ""

    def test_stats_prints_table(self, dataset_file, capsys):
        assert main(["stats", "--dataset", str(dataset_file)]) == 0
        out = capsys.readouterr().out
        assert "road segments" in out
        assert "average cellular sampling interval (s)" in out


class TestTrain:
    def test_train_writes_model(self, dataset_file, tmp_path, capsys):
        out = tmp_path / "trained.npz"
        code = main(
            [
                "train",
                "--dataset",
                str(dataset_file),
                "-o",
                str(out),
                "--epochs",
                "1",
                "--dim",
                "8",
                "--candidates",
                "4",
                "--seed",
                "1",
            ]
        )
        assert code == 0
        assert out.exists()
        assert "trained LHMM" in capsys.readouterr().out

    def test_train_ablated_variant(self, dataset_file, tmp_path):
        out = tmp_path / "ablated.npz"
        code = main(
            [
                "train",
                "--dataset",
                str(dataset_file),
                "-o",
                str(out),
                "--epochs",
                "1",
                "--dim",
                "8",
                "--variant",
                "LHMM-S",
            ]
        )
        assert code == 0
        from repro.core import LHMM
        from repro.datasets import load_dataset

        restored = LHMM.load(out, load_dataset(dataset_file))
        assert restored.config.use_shortcuts is False

    def test_resume_requires_checkpoint_dir(self, dataset_file, tmp_path, capsys):
        code = main(
            [
                "train",
                "--dataset",
                str(dataset_file),
                "-o",
                str(tmp_path / "m.npz"),
                "--resume",
            ]
        )
        assert code == 2
        assert "--resume requires --checkpoint-dir" in capsys.readouterr().err

    def test_train_writes_checkpoints(self, dataset_file, tmp_path, capsys):
        out = tmp_path / "trained.npz"
        ckpts = tmp_path / "ckpts"
        code = main(
            [
                "train",
                "--dataset", str(dataset_file),
                "-o", str(out),
                "--epochs", "1",
                "--dim", "8",
                "--candidates", "4",
                "--seed", "1",
                "--checkpoint-dir", str(ckpts),
            ]
        )
        assert code == 0
        assert any(p.name.startswith("ckpt-") for p in ckpts.iterdir())


class TestStructuredErrorExits:
    """Operator mistakes exit 2 with `error [<code>]` + hint, no traceback."""

    def test_missing_model_file(self, dataset_file, tmp_path, capsys):
        code = main(
            [
                "match",
                "--dataset", str(dataset_file),
                "--model", str(tmp_path / "nope.npz"),
            ]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "error [not_found]" in err
        assert "nope.npz" in err
        assert "hint:" in err

    def test_missing_dataset_file(self, tmp_path, capsys):
        code = main(["stats", "--dataset", str(tmp_path / "nope.json.gz")])
        assert code == 2
        assert "error [not_found]" in capsys.readouterr().err

    def test_corrupt_model_file(self, dataset_file, model_file, tmp_path, capsys):
        blob = bytearray(model_file.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        corrupt = tmp_path / "corrupt.npz"
        corrupt.write_bytes(bytes(blob))
        code = main(
            [
                "evaluate",
                "--dataset", str(dataset_file),
                "--model", str(corrupt),
                "--limit", "1",
            ]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "error [artifact_corrupt]" in err
        assert "hint:" in err
        assert "Traceback" not in err

    def test_incompatible_model_file(self, dataset_file, tmp_path, capsys):
        import numpy as np

        from repro.nn.serialization import write_artifact

        wrong = tmp_path / "wrong.npz"
        write_artifact(wrong, {"w": np.zeros(3)}, kind="module-state")
        code = main(
            [
                "match",
                "--dataset", str(dataset_file),
                "--model", str(wrong),
            ]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "error [artifact_incompatible]" in err
        assert "hint:" in err


class TestEvaluate:
    def test_evaluate_baseline(self, dataset_file, capsys):
        code = main(
            [
                "evaluate",
                "--dataset",
                str(dataset_file),
                "--baseline",
                "STM",
                "--limit",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "precision=" in out
        assert "CMF50=" in out

    def test_evaluate_exports(self, dataset_file, tmp_path, capsys):
        json_out = tmp_path / "r.json"
        csv_out = tmp_path / "r.csv"
        code = main(
            [
                "evaluate",
                "--dataset",
                str(dataset_file),
                "--baseline",
                "STM",
                "--limit",
                "2",
                "--json",
                str(json_out),
                "--csv",
                str(csv_out),
            ]
        )
        assert code == 0
        assert json_out.exists() and csv_out.exists()

    def test_evaluate_model(self, dataset_file, model_file, capsys):
        code = main(
            [
                "evaluate",
                "--dataset",
                str(dataset_file),
                "--model",
                str(model_file),
                "--limit",
                "2",
            ]
        )
        assert code == 0
        assert "precision=" in capsys.readouterr().out


class TestMatch:
    def test_match_with_renders(self, dataset_file, model_file, tmp_path, capsys):
        svg_out = tmp_path / "match.svg"
        code = main(
            [
                "match",
                "--dataset",
                str(dataset_file),
                "--model",
                str(model_file),
                "--ascii",
                "--svg",
                str(svg_out),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "segments" in out
        assert "legend" in out
        assert svg_out.exists()

    def test_match_unknown_sample(self, dataset_file, model_file, capsys):
        code = main(
            [
                "match",
                "--dataset",
                str(dataset_file),
                "--model",
                str(model_file),
                "--sample-id",
                "999999",
            ]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "no sample with id 999999" in err
        assert "valid ids:" in err  # the error is actionable, not a traceback


class TestServeParser:
    def test_serve_requires_model_and_dataset(self):
        with pytest.raises(SystemExit):
            main(["serve", "--dataset", "city.json.gz"])  # missing --model

    def test_serve_accepts_tuning_flags(self):
        # Parses without touching the filesystem: unknown files only fail
        # once the command body runs, so a bad flag is a parse error here.
        parser_error = None
        try:
            from repro.cli import _build_parser

            args = _build_parser().parse_args(
                [
                    "serve",
                    "--dataset", "city.json.gz",
                    "--model", "model.npz",
                    "--port", "0",
                    "--workers", "2",
                    "--batch-window-ms", "10",
                    "--batch-max", "8",
                    "--queue-limit", "32",
                    "--max-sessions", "16",
                    "--session-ttl", "60",
                    "--lag", "3",
                ]
            )
        except SystemExit as error:  # pragma: no cover - parse failure
            parser_error = error
        assert parser_error is None
        assert args.command == "serve"
        assert args.queue_limit == 32
        assert args.lag == 3


class TestProfile:
    def test_profiles_dataset_and_writes_json(self, dataset_file, tmp_path, capsys):
        out_json = tmp_path / "profile.json"
        code = main(
            [
                "profile",
                "--dataset", str(dataset_file),
                "--trajectories", "3",
                "--epochs", "1",
                "--top", "5",
                "--json", str(out_json),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "per-stage wall-clock" in out
        assert "cProfile hotspots" in out
        assert "'batched' pipeline" in out

        import json

        payload = json.loads(out_json.read_text())
        assert payload["pipeline"] == "batched"
        assert payload["trajectories"] == 3
        assert payload["total_s"] > 0
        assert "trellis.run" in payload["stages_s"]
        assert "transitions" in payload["stages_s"]

    def test_scalar_pipeline_uses_reference_trellis(self, dataset_file, capsys):
        code = main(
            [
                "profile",
                "--dataset", str(dataset_file),
                "--trajectories", "2",
                "--epochs", "1",
                "--top", "3",
                "--pipeline", "scalar",
            ]
        )
        assert code == 0
        assert "'scalar' pipeline" in capsys.readouterr().out
