"""Differential suite: the vectorized trellis must equal the reference.

The reference dict-based :class:`~repro.core.trellis.Trellis` is the oracle;
:class:`~repro.core.trellis.VectorizedTrellis` must decode the *same*
sequence with the same tie-breaking, the same forward tables, the same
shortcut insertions, and the same disconnected-lattice restart behaviour —
on randomized lattices, on router-backed heuristic matchers (both the
Dijkstra engine and the UBODT table router), and through the full LHMM.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.baselines.hmm_heuristic import HeuristicHmmConfig, HeuristicHmmMatcher
from repro.core.trellis import (
    TRELLIS_IMPLS,
    UNREACHABLE_SCORE,
    Trellis,
    VectorizedTrellis,
    make_trellis,
)
from repro.network import ShortestPathEngine, Ubodt, UbodtRouter
from tests.test_core_trellis import TableScorer, chain_network, points

N_SEGMENTS = 8
SHORTCUT_KS = (0, 1, 2)


class BatchTableScorer(TableScorer):
    """Table scorer that also implements the batched protocol.

    The batch methods return exactly the scalar floats, which is the
    contract :class:`~repro.core.trellis.BatchTrellisScorer` demands.
    """

    def observation_batch(self, index, segment_ids):
        return np.array(
            [self.observation(index, seg) for seg in segment_ids], dtype=np.float64
        )

    def transition_batch(self, index, prev_segment_ids, segment_ids):
        return np.array(
            [
                [self.transition(index, prev, seg) for seg in segment_ids]
                for prev in prev_segment_ids
            ],
            dtype=np.float64,
        )


def random_lattice(seed: int):
    """A randomized trellis instance over the chain network.

    Scores come from a small discrete set so ties are common; some cases
    sever a whole layer (every transition unreachable) to exercise the
    restart path; candidate-set sizes vary from 1 up, and trajectories may
    be a single point.
    """
    rng = np.random.default_rng(seed)
    n_points = int(rng.integers(1, 7))
    candidate_sets = [
        sorted(
            rng.choice(N_SEGMENTS, size=int(rng.integers(1, 5)), replace=False).tolist()
        )
        for _ in range(n_points)
    ]
    levels = np.array([0.1, 0.25, 0.25, 0.5, 0.5, 0.5, 0.9])
    obs = {
        (i, s): float(rng.choice(levels))
        for i in range(n_points)
        for s in range(N_SEGMENTS)
    }
    trans = {
        (i, a, b): float(rng.choice(levels))
        for i in range(1, n_points)
        for a in range(N_SEGMENTS)
        for b in range(N_SEGMENTS)
    }
    if n_points >= 2 and rng.random() < 0.4:
        # Sever one layer entirely: the forward pass then rides on the
        # UNREACHABLE penalty and both backends must degrade identically.
        cut = int(rng.integers(1, n_points))
        for a in range(N_SEGMENTS):
            for b in range(N_SEGMENTS):
                trans[(cut, a, b)] = UNREACHABLE_SCORE
    return n_points, candidate_sets, obs, trans


def run_impl(impl, candidate_sets, scorer, shortcut_k, net, engine, pts):
    trellis = make_trellis(
        [list(c) for c in candidate_sets], scorer, net, engine, pts, impl=impl
    )
    sequence = trellis.run(shortcut_k=shortcut_k)
    return trellis, sequence


def assert_trellis_equal(ref: Trellis, vec: Trellis, ref_seq, vec_seq):
    """Full-state equality: decode, scores, tables, candidate sets."""
    assert vec_seq == ref_seq
    assert vec.best_score == ref.best_score
    assert vec.candidate_sets == ref.candidate_sets
    assert vec._f == ref._f
    assert vec._pre == ref._pre


class TestRandomizedParity:
    @pytest.mark.parametrize("shortcut_k", SHORTCUT_KS)
    @pytest.mark.parametrize("seed", range(25))
    def test_random_lattices(self, seed, shortcut_k):
        net = chain_network(N_SEGMENTS)
        engine = ShortestPathEngine(net)
        n_points, candidate_sets, obs, trans = random_lattice(seed)
        pts = points(n_points)
        ref, ref_seq = run_impl(
            "reference", candidate_sets, TableScorer(obs, trans), shortcut_k,
            net, engine, pts,
        )
        vec, vec_seq = run_impl(
            "vectorized", candidate_sets, TableScorer(obs, trans), shortcut_k,
            net, engine, pts,
        )
        assert_trellis_equal(ref, vec, ref_seq, vec_seq)

    @pytest.mark.parametrize("shortcut_k", SHORTCUT_KS)
    @pytest.mark.parametrize("seed", range(10))
    def test_random_lattices_batched_scorer(self, seed, shortcut_k):
        """The batched-scorer fast path must also match the scalar oracle."""
        net = chain_network(N_SEGMENTS)
        engine = ShortestPathEngine(net)
        n_points, candidate_sets, obs, trans = random_lattice(seed)
        pts = points(n_points)
        ref, ref_seq = run_impl(
            "reference", candidate_sets, TableScorer(obs, trans), shortcut_k,
            net, engine, pts,
        )
        vec, vec_seq = run_impl(
            "vectorized", candidate_sets, BatchTableScorer(obs, trans), shortcut_k,
            net, engine, pts,
        )
        assert_trellis_equal(ref, vec, ref_seq, vec_seq)

    def test_all_tied_scores_pick_first_candidate(self):
        """Uniform scores: both backends must break every tie the same way
        (first candidate in set order wins)."""
        net = chain_network(N_SEGMENTS)
        engine = ShortestPathEngine(net)
        candidate_sets = [[3, 1, 5], [2, 6, 0], [4, 7, 1]]
        scorer = TableScorer(default_obs=0.5, default_trans=0.5)
        pts = points(3)
        for k in SHORTCUT_KS:
            ref, ref_seq = run_impl(
                "reference", candidate_sets, TableScorer(default_obs=0.5, default_trans=0.5),
                k, net, engine, pts,
            )
            vec, vec_seq = run_impl(
                "vectorized", candidate_sets, TableScorer(default_obs=0.5, default_trans=0.5),
                k, net, engine, pts,
            )
            assert_trellis_equal(ref, vec, ref_seq, vec_seq)
            assert ref_seq[0] == candidate_sets[0][0]

    def test_single_point_trajectory(self):
        net = chain_network(N_SEGMENTS)
        engine = ShortestPathEngine(net)
        obs = {(0, 2): 0.9, (0, 5): 0.4}
        for impl in TRELLIS_IMPLS:
            trellis, seq = run_impl(
                impl, [[5, 2]], TableScorer(obs), 1, net, engine, points(1)
            )
            assert seq == [2]

    def test_single_candidate_layers(self):
        net = chain_network(N_SEGMENTS)
        engine = ShortestPathEngine(net)
        candidate_sets = [[1], [3], [6]]
        pts = points(3)
        for k in SHORTCUT_KS:
            ref, ref_seq = run_impl(
                "reference", candidate_sets, TableScorer(), k, net, engine, pts
            )
            vec, vec_seq = run_impl(
                "vectorized", candidate_sets, TableScorer(), k, net, engine, pts
            )
            assert_trellis_equal(ref, vec, ref_seq, vec_seq)

    def test_make_trellis_selects_backend(self):
        net = chain_network(N_SEGMENTS)
        engine = ShortestPathEngine(net)
        ref = make_trellis([[0]], TableScorer(), net, engine, points(1), impl="reference")
        vec = make_trellis([[0]], TableScorer(), net, engine, points(1), impl="vectorized")
        assert type(ref) is Trellis
        assert type(vec) is VectorizedTrellis
        with pytest.raises(ValueError):
            make_trellis([[0]], TableScorer(), net, engine, points(1), impl="numpy")


class TestRouterBackedParity:
    """Heuristic-HMM matching: both backends, both routers, k in {0, 1, 2}."""

    @pytest.fixture(scope="class")
    def ubodt_router(self, tiny_dataset):
        network = tiny_dataset.network
        table = Ubodt.build(network, delta_m=2000.0)
        return UbodtRouter(network, table, fallback=ShortestPathEngine(network))

    def _match_all(self, dataset, router, impl, shortcut_k, trajectories):
        config = HeuristicHmmConfig(shortcut_k=shortcut_k, trellis_impl=impl)
        matcher = HeuristicHmmMatcher(dataset, config, router=router)
        return [matcher.match(t) for t in trajectories]

    @pytest.mark.parametrize("shortcut_k", SHORTCUT_KS)
    def test_dijkstra_router_parity(self, tiny_dataset, shortcut_k):
        trajectories = [s.cellular for s in tiny_dataset.samples[:8]]
        router = ShortestPathEngine(tiny_dataset.network)
        ref = self._match_all(tiny_dataset, router, "reference", shortcut_k, trajectories)
        vec = self._match_all(tiny_dataset, router, "vectorized", shortcut_k, trajectories)
        for a, b in zip(ref, vec):
            assert b.matched_sequence == a.matched_sequence
            assert b.path == a.path
            assert b.candidate_sets == a.candidate_sets

    @pytest.mark.parametrize("shortcut_k", SHORTCUT_KS)
    def test_ubodt_router_parity(self, tiny_dataset, ubodt_router, shortcut_k):
        trajectories = [s.cellular for s in tiny_dataset.samples[:8]]
        ref = self._match_all(
            tiny_dataset, ubodt_router, "reference", shortcut_k, trajectories
        )
        vec = self._match_all(
            tiny_dataset, ubodt_router, "vectorized", shortcut_k, trajectories
        )
        for a, b in zip(ref, vec):
            assert b.matched_sequence == a.matched_sequence
            assert b.path == a.path
            assert b.candidate_sets == a.candidate_sets


class TestLHMMParity:
    """Full-matcher differential test on the fitted session LHMM."""

    def test_match_identical_across_backends(self, trained_lhmm, tiny_dataset):
        matcher = trained_lhmm
        trajectories = [s.cellular for s in tiny_dataset.test[:6]]
        saved_impl = matcher.config.trellis_impl
        saved_degradation = matcher.degradation_enabled
        results: dict[str, list] = {}
        try:
            matcher.degradation_enabled = False
            for impl in TRELLIS_IMPLS:
                matcher.config.trellis_impl = impl
                results[impl] = [matcher.match(t) for t in trajectories]
        finally:
            matcher.config.trellis_impl = saved_impl
            matcher.degradation_enabled = saved_degradation
        for ref, vec in zip(results["reference"], results["vectorized"]):
            assert vec.matched_sequence == ref.matched_sequence
            assert vec.path == ref.path
            assert vec.score == ref.score
            assert vec.candidate_sets == ref.candidate_sets
