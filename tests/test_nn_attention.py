"""Tests for repro.nn.attention, rnn, and transformer modules."""

import numpy as np
import pytest

from repro.nn import (
    GRU,
    AdditiveAttention,
    GRUCell,
    ScaledDotProductSelfAttention,
    Tensor,
    TransformerEncoderLayer,
)
from repro.nn.transformer import sinusoidal_positions


class TestAdditiveAttention:
    def test_context_shape(self):
        att = AdditiveAttention(8, rng=0)
        q = Tensor(np.random.default_rng(0).normal(size=(3, 8)))
        k = Tensor(np.random.default_rng(1).normal(size=(6, 8)))
        assert att(q, k).shape == (3, 8)

    def test_weights_normalised(self):
        att = AdditiveAttention(8, rng=0)
        q = Tensor(np.random.default_rng(0).normal(size=(2, 8)))
        k = Tensor(np.random.default_rng(1).normal(size=(5, 8)))
        weights = att.attention_weights(q, k)
        assert weights.shape == (2, 5)
        assert np.allclose(weights.sum(axis=1), 1.0)
        assert np.all(weights >= 0)

    def test_single_key_gives_that_value(self):
        att = AdditiveAttention(4, rng=0)
        q = Tensor(np.random.default_rng(0).normal(size=(2, 4)))
        value = np.random.default_rng(1).normal(size=(1, 4))
        out = att(q, Tensor(value)).numpy()
        assert np.allclose(out, np.repeat(value, 2, axis=0))

    def test_separate_values(self):
        att = AdditiveAttention(4, rng=0)
        q = Tensor(np.ones((1, 4)))
        k = Tensor(np.ones((3, 4)))
        v = Tensor(np.eye(3, 4))
        out = att(q, k, v).numpy()
        # identical keys -> uniform weights -> mean of values
        assert np.allclose(out, v.numpy().mean(axis=0, keepdims=True))

    def test_gradients_flow_to_parameters(self):
        att = AdditiveAttention(4, rng=0)
        q = Tensor(np.random.default_rng(0).normal(size=(2, 4)))
        att(q, q).sum().backward()
        for p in att.parameters():
            assert p.grad is not None


class TestDotProductAttention:
    def test_shape_preserved(self):
        att = ScaledDotProductSelfAttention(6, rng=0)
        x = Tensor(np.random.default_rng(0).normal(size=(5, 6)))
        assert att(x).shape == (5, 6)


class TestGRU:
    def test_cell_shape(self):
        cell = GRUCell(3, 7, rng=0)
        h = cell(Tensor(np.ones((2, 3))), Tensor(np.zeros((2, 7))))
        assert h.shape == (2, 7)

    def test_hidden_state_bounded(self):
        cell = GRUCell(3, 7, rng=0)
        h = Tensor(np.zeros((1, 7)))
        for _ in range(20):
            h = cell(Tensor(np.random.default_rng(0).normal(size=(1, 3))), h)
        assert np.all(np.abs(h.numpy()) <= 1.0 + 1e-9)

    def test_sequence_outputs(self):
        gru = GRU(3, 5, rng=0)
        outputs, final = gru(Tensor(np.random.default_rng(0).normal(size=(9, 3))))
        assert outputs.shape == (9, 5)
        assert final.shape == (1, 5)
        assert np.allclose(outputs.numpy()[-1], final.numpy()[0])

    def test_gradients_flow(self):
        gru = GRU(2, 4, rng=0)
        outputs, _ = gru(Tensor(np.random.default_rng(0).normal(size=(4, 2))))
        outputs.sum().backward()
        for p in gru.parameters():
            assert p.grad is not None


class TestTransformer:
    def test_shape_preserved(self):
        layer = TransformerEncoderLayer(8, rng=0)
        x = Tensor(np.random.default_rng(0).normal(size=(6, 8)))
        assert layer(x).shape == (6, 8)

    def test_gradients_flow(self):
        layer = TransformerEncoderLayer(8, rng=0)
        x = Tensor(np.random.default_rng(0).normal(size=(4, 8)), requires_grad=True)
        layer(x).sum().backward()
        assert x.grad is not None

    def test_positions_shape_and_range(self):
        table = sinusoidal_positions(12, 8)
        assert table.shape == (12, 8)
        assert np.all(np.abs(table) <= 1.0)

    def test_positions_distinct(self):
        table = sinusoidal_positions(10, 8)
        assert not np.allclose(table[0], table[5])
