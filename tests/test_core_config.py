"""Tests for repro.core.config."""

import pytest

from repro.core import LHMMConfig


class TestValidation:
    def test_defaults_validate(self):
        LHMMConfig().validate()

    @pytest.mark.parametrize(
        "field,value",
        [
            ("embedding_dim", 1),
            ("het_layers", 0),
            ("candidate_k", 0),
            ("candidate_pool", 5),  # < candidate_k default
            ("shortcut_k", -1),
            ("batch_size", 0),
            ("label_smoothing", 1.0),
        ],
    )
    def test_invalid_rejected(self, field, value):
        config = LHMMConfig()
        setattr(config, field, value)
        with pytest.raises(ValueError):
            config.validate()


class TestAblations:
    def test_identity_variant(self):
        config = LHMMConfig().ablated("LHMM")
        assert config == LHMMConfig()

    def test_each_variant_flips_one_switch(self):
        base = LHMMConfig()
        assert not base.ablated("LHMM-E").use_graph_encoder
        assert not base.ablated("LHMM-H").heterogeneous
        assert not base.ablated("LHMM-O").use_implicit_observation
        assert not base.ablated("LHMM-T").use_implicit_transition
        assert not base.ablated("LHMM-S").use_shortcuts

    def test_ablation_does_not_mutate_original(self):
        base = LHMMConfig()
        base.ablated("LHMM-S")
        assert base.use_shortcuts

    def test_unknown_variant(self):
        with pytest.raises(ValueError):
            LHMMConfig().ablated("LHMM-X")
