"""Tests for repro.cellular.filters."""

import pytest

from repro.cellular import (
    Trajectory,
    TrajectoryPoint,
    alpha_trimmed_mean_filter,
    apply_standard_filters,
    direction_filter,
    speed_filter,
)
from repro.geometry import Point


def traj(coords, gap=30.0):
    return Trajectory(
        points=[
            TrajectoryPoint(Point(x, y), i * gap, tower_id=i)
            for i, (x, y) in enumerate(coords)
        ]
    )


class TestSpeedFilter:
    def test_keeps_reasonable_speeds(self):
        t = traj([(0, 0), (300, 0), (600, 0)])  # 10 m/s
        assert len(speed_filter(t)) == 3

    def test_drops_teleporting_point(self):
        t = traj([(0, 0), (30000, 0), (600, 0)])  # 1 km/s spike
        filtered = speed_filter(t)
        assert len(filtered) == 2
        assert filtered[1].position == Point(600, 0)

    def test_short_trajectory_untouched(self):
        t = traj([(0, 0)])
        assert speed_filter(t) is t

    def test_keeps_first_point(self):
        t = traj([(0, 0), (99999, 0)])
        assert speed_filter(t)[0].position == Point(0, 0)


class TestAlphaTrimmedMean:
    def test_smooths_outlier(self):
        coords = [(0, 0), (100, 0), (5000, 0), (300, 0), (400, 0)]
        smoothed = alpha_trimmed_mean_filter(traj(coords), window=5, alpha=1)
        assert smoothed[2].position.x < 5000

    def test_preserves_length_and_metadata(self):
        t = traj([(i * 100, 0) for i in range(7)])
        smoothed = alpha_trimmed_mean_filter(t)
        assert len(smoothed) == len(t)
        assert [p.timestamp for p in smoothed] == [p.timestamp for p in t]
        assert [p.tower_id for p in smoothed] == [p.tower_id for p in t]

    def test_short_trajectory_untouched(self):
        t = traj([(0, 0), (1, 1)])
        assert alpha_trimmed_mean_filter(t) is t

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            alpha_trimmed_mean_filter(traj([(i, 0) for i in range(9)]), window=3, alpha=2)


class TestDirectionFilter:
    def test_removes_ping_pong(self):
        # out-and-back spike at index 1
        t = traj([(0, 0), (1000, 0), (50, 10), (100, 20)])
        filtered = direction_filter(t)
        assert len(filtered) < len(t)

    def test_keeps_straight_movement(self):
        t = traj([(i * 200, 0) for i in range(5)])
        assert len(direction_filter(t)) == 5

    def test_short_trajectory_untouched(self):
        t = traj([(0, 0), (10, 0)])
        assert direction_filter(t) is t

    def test_endpoints_always_kept(self):
        t = traj([(0, 0), (1000, 0), (50, 10), (100, 20)])
        filtered = direction_filter(t)
        assert filtered[0].position == t[0].position
        assert filtered[-1].position == t[-1].position


class TestPipeline:
    def test_pipeline_output_is_sane(self, tiny_simulator):
        trip = tiny_simulator.simulate_trip(99)
        filtered = apply_standard_filters(trip.cellular)
        assert 1 <= len(filtered) <= len(trip.cellular)
        times = [p.timestamp for p in filtered]
        assert times == sorted(times)

    def test_pipeline_preserves_tower_ids(self, tiny_simulator):
        trip = tiny_simulator.simulate_trip(100)
        filtered = apply_standard_filters(trip.cellular)
        assert all(p.tower_id is not None for p in filtered)
