"""Tests for repro.geometry.grid_index."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import GridIndex, Point


class TestGridIndex:
    def test_rejects_bad_cell_size(self):
        with pytest.raises(ValueError):
            GridIndex(cell_size=0)

    def test_insert_and_len(self):
        index: GridIndex[str] = GridIndex(100)
        index.insert("a", Point(0, 0))
        index.insert("b", Point(500, 500))
        assert len(index) == 2
        assert "a" in index
        assert "c" not in index

    def test_query_radius_finds_items(self):
        index: GridIndex[int] = GridIndex(100)
        index.insert(1, Point(0, 0))
        index.insert(2, Point(50, 0))
        index.insert(3, Point(1000, 0))
        assert index.query_radius(Point(0, 0), 60) == [1, 2]

    def test_query_radius_orders_by_distance(self):
        index: GridIndex[int] = GridIndex(100)
        index.insert(1, Point(90, 0))
        index.insert(2, Point(10, 0))
        assert index.query_radius(Point(0, 0), 200) == [2, 1]

    def test_query_radius_rejects_negative(self):
        index: GridIndex[int] = GridIndex(100)
        with pytest.raises(ValueError):
            index.query_radius(Point(0, 0), -1)

    def test_multi_point_items_deduplicated(self):
        index: GridIndex[str] = GridIndex(100)
        index.insert_many("road", [Point(0, 0), Point(50, 0), Point(100, 0)])
        assert index.query_radius(Point(50, 0), 200) == ["road"]

    def test_query_nearest_expands_rings(self):
        index: GridIndex[int] = GridIndex(50)
        index.insert(1, Point(1000, 1000))
        assert index.query_nearest(Point(0, 0), count=1) == [1]

    def test_query_nearest_zero_count(self):
        index: GridIndex[int] = GridIndex(50)
        index.insert(1, Point(0, 0))
        assert index.query_nearest(Point(0, 0), count=0) == []

    def test_query_nearest_empty_index(self):
        index: GridIndex[int] = GridIndex(50)
        assert index.query_nearest(Point(0, 0), count=3) == []

    def test_items_in_box_is_superset_of_radius(self):
        index: GridIndex[int] = GridIndex(100)
        for i in range(20):
            index.insert(i, Point(i * 37.0, i * 11.0))
        centre = Point(200, 60)
        exact = set(index.query_radius(centre, 150))
        box = index.items_in_box(centre, 150)
        assert exact <= box

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(-5000, 5000, allow_nan=False),
                st.floats(-5000, 5000, allow_nan=False),
            ),
            min_size=1,
            max_size=40,
        ),
        st.floats(10, 2000, allow_nan=False),
    )
    def test_query_radius_matches_bruteforce(self, coords, radius):
        index: GridIndex[int] = GridIndex(250)
        points = [Point(x, y) for x, y in coords]
        for i, p in enumerate(points):
            index.insert(i, p)
        centre = Point(0, 0)
        expected = {i for i, p in enumerate(points) if centre.distance_to(p) <= radius}
        assert set(index.query_radius(centre, radius)) == expected
