"""Tests for repro.cellular.trajectory."""

import pytest
from hypothesis import given, strategies as st

from repro.cellular import Trajectory, TrajectoryPoint
from repro.geometry import Point


def make_trajectory(n: int = 5, gap: float = 30.0) -> Trajectory:
    points = [
        TrajectoryPoint(position=Point(i * 100.0, 0.0), timestamp=i * gap, tower_id=i)
        for i in range(n)
    ]
    return Trajectory(points=points, trajectory_id=1)


class TestBasics:
    def test_rejects_unordered_timestamps(self):
        points = [
            TrajectoryPoint(Point(0, 0), 10.0),
            TrajectoryPoint(Point(1, 1), 5.0),
        ]
        with pytest.raises(ValueError):
            Trajectory(points=points)

    def test_len_iter_getitem(self):
        traj = make_trajectory(4)
        assert len(traj) == 4
        assert [p.timestamp for p in traj] == [0, 30, 60, 90]
        assert traj[2].tower_id == 2

    def test_duration(self):
        assert make_trajectory(4).duration == pytest.approx(90.0)

    def test_duration_single_point(self):
        assert make_trajectory(1).duration == 0.0

    def test_sampling_intervals(self):
        assert make_trajectory(3).sampling_intervals() == [30.0, 30.0]

    def test_sampling_distances(self):
        assert make_trajectory(3).sampling_distances() == [100.0, 100.0]

    def test_path_length(self):
        assert make_trajectory(4).path_length() == pytest.approx(300.0)

    def test_headings(self):
        headings = make_trajectory(3).headings_deg()
        assert headings == pytest.approx([90.0, 90.0])

    def test_positions_and_tower_ids(self):
        traj = make_trajectory(2)
        assert traj.positions() == [Point(0, 0), Point(100, 0)]
        assert traj.tower_ids() == [0, 1]

    def test_centroid(self):
        c = make_trajectory(3).centroid()
        assert (c.x, c.y) == pytest.approx((100.0, 0.0))

    def test_centroid_empty(self):
        with pytest.raises(ValueError):
            Trajectory(points=[], _validated=True).centroid()

    def test_with_position(self):
        p = TrajectoryPoint(Point(0, 0), 1.0, tower_id=7)
        q = p.with_position(Point(5, 5))
        assert q.position == Point(5, 5)
        assert q.tower_id == 7
        assert q.timestamp == 1.0


class TestResampling:
    def test_subsampled_keeps_last(self):
        traj = make_trajectory(5).subsampled(2)
        assert [p.timestamp for p in traj] == [0, 60, 120]

    def test_subsampled_identity(self):
        traj = make_trajectory(5)
        assert len(traj.subsampled(1)) == 5

    def test_subsampled_rejects_zero(self):
        with pytest.raises(ValueError):
            make_trajectory(3).subsampled(0)

    def test_resampled_to_rate(self):
        traj = make_trajectory(10, gap=30.0)  # 2 samples/minute native
        thinned = traj.resampled_to_rate(1.0)  # 1 per minute
        intervals = thinned.sampling_intervals()
        assert all(i >= 60.0 for i in intervals[:-1])

    def test_resampled_keeps_endpoints(self):
        traj = make_trajectory(10, gap=30.0)
        thinned = traj.resampled_to_rate(0.5)
        assert thinned[0].timestamp == traj[0].timestamp
        assert thinned[-1].timestamp == traj[-1].timestamp

    def test_resampled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            make_trajectory(3).resampled_to_rate(0.0)

    @given(st.integers(2, 30), st.floats(0.2, 4.0, allow_nan=False))
    def test_resampled_never_longer(self, n, rate):
        traj = make_trajectory(n)
        assert len(traj.resampled_to_rate(rate)) <= len(traj)
