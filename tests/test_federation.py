"""Federated multi-host serving: TCP transport, routing, replication, fencing.

Three layers under test:

* :mod:`repro.serve.transport` — frame dialing, fenced handshakes, and
  the heartbeat-guarded :class:`PeerLink` (pure asyncio, no cluster);
* the cluster's **TCP worker transport** — workers dial the gateway back
  over localhost TCP instead of inheriting a socketpair, with
  generation-fenced check-ins, and serve byte-identically;
* :mod:`repro.serve.federation` — two in-process gateways, each owning
  one region, proxying/redirecting misrouted requests, replicating
  session journals, and adopting sessions across a simulated partition
  with fencing (the adopted copy commits the bit-identical path; the
  superseded owner gets 409).

The real-kill versions of the failover scenarios (SIGKILL, SIGSTOP,
frame-dropping proxy) live in ``tests/test_chaos_federation.py``.
"""

from __future__ import annotations

import asyncio
import os
import socket
import threading
import time

import pytest

from repro.core import LHMM, OnlineLHMM
from repro.datasets import save_dataset
from repro.serve import (
    ClusterConfig,
    ClusterServer,
    FederationConfig,
    MatchingClient,
    PeerSpec,
    ServeClientError,
    ServeRedirect,
    ServerBusy,
    ShardRegistry,
    ShardSpec,
)
from repro.serve import ipc, protocol
from repro.serve.shm import SegmentJanitor, leaked_segments
from repro.serve.transport import (
    FenceRegistry,
    FrameListener,
    HandshakeRejected,
    PeerLink,
    TransportConfig,
    backoff_delays,
    dial_blocking,
)

FAST = TransportConfig(
    connect_timeout_s=2.0,
    handshake_timeout_s=2.0,
    heartbeat_interval_s=0.1,
    heartbeat_timeout_s=0.5,
    backoff_base_s=0.05,
    backoff_max_s=0.2,
)


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def _wait_for(predicate, timeout=15.0, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    raise AssertionError(f"timed out waiting for {message}")


def _submit(server: ClusterServer, coro):
    """Run a coroutine on a running cluster's event loop from the test."""
    return asyncio.run_coroutine_threadsafe(coro, server._loop).result(timeout=15)


# --------------------------------------------------------------------------
# Transport primitives
# --------------------------------------------------------------------------
class TestFenceRegistry:
    def test_monotonic_admission(self):
        fences = FenceRegistry()
        assert fences.admit("node", 5)
        assert fences.admit("node", 5)  # equal generations may reconnect
        assert not fences.admit("node", 4)
        assert fences.admit("node", 6)
        assert fences.current("node") == 6
        assert fences.current("unseen") is None

    def test_names_are_independent(self):
        fences = FenceRegistry()
        assert fences.admit("a", 9)
        assert fences.admit("b", 1)


class TestPeerSpec:
    def test_parse_roundtrip(self):
        spec = PeerSpec.parse("gw-east=10.0.0.7:9301")
        assert (spec.name, spec.host, spec.port) == ("gw-east", "10.0.0.7", 9301)

    @pytest.mark.parametrize(
        "bad", ["gw-east", "gw-east=10.0.0.7", "=host:1", "gw=:1", "gw=h:nope"]
    )
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            PeerSpec.parse(bad)


def test_backoff_delays_cap():
    gen = backoff_delays(0.2, 1.0)
    assert [next(gen) for _ in range(5)] == [0.2, 0.4, 0.8, 1.0, 1.0]


class TestDialBlocking:
    def _listener_thread(self, ack: dict):
        server = socket.socket()
        server.bind(("127.0.0.1", 0))
        server.listen(1)
        seen: dict = {}

        def run():
            conn, _ = server.accept()
            with conn:
                seen.update(ipc.recv_message(conn) or {})
                ipc.send_message(conn, ack)
            server.close()

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        return server.getsockname()[1], seen, thread

    def test_handshake_accepted(self):
        port, seen, thread = self._listener_thread({"ok": True, "node": "gw"})
        sock, ack = dial_blocking(
            "127.0.0.1", port, {"node": "w0", "generation": 3}, config=FAST
        )
        sock.close()
        thread.join(timeout=5)
        assert ack["node"] == "gw"
        assert seen["op"] == "hello" and seen["generation"] == 3

    def test_handshake_rejected_raises(self):
        port, _, thread = self._listener_thread(
            {"ok": False, "error": {"code": "stale_worker", "message": "fenced"}}
        )
        with pytest.raises(HandshakeRejected) as excinfo:
            dial_blocking("127.0.0.1", port, {"node": "w0"}, config=FAST)
        thread.join(timeout=5)
        assert excinfo.value.code == "stale_worker"

    def test_unreachable_times_out(self):
        port = _free_port()  # bound then released: nothing listens here
        with pytest.raises(Exception):
            dial_blocking(
                "127.0.0.1", port, {"node": "w0"}, deadline_s=0.3, config=FAST
            )


class TestPeerLink:
    def test_call_heartbeat_timeout_and_reconnect(self):
        """A peer that stops answering trips the heartbeat; recovery reconnects."""

        async def main():
            mute = False
            transitions: list[str] = []

            async def handler(message):
                if mute:
                    return None  # swallow everything: half-open simulation
                return {"id": message.get("id"), "ok": True, "echo": message.get("op")}

            async def on_hello(payload, reader, writer):
                return ("serve", {"ok": True, "node": "gw"}, handler)

            listener = FrameListener(on_hello, config=FAST)
            await listener.start()

            async def up(link, ack):
                transitions.append("up")

            async def down(link):
                transitions.append("down")

            link = PeerLink(
                "gw", listener.host, listener.port, lambda: {"node": "me"},
                config=FAST, on_up=up, on_down=down,
            )
            link.start()

            async def wait(predicate, what):
                deadline = asyncio.get_running_loop().time() + 10
                while not predicate():
                    if asyncio.get_running_loop().time() > deadline:
                        raise AssertionError(f"timed out waiting for {what}")
                    await asyncio.sleep(0.02)

            await wait(lambda: link.up, "link up")
            reply = await link.call({"op": "work"}, timeout=2)
            assert reply["echo"] == "work"

            mute = True  # heartbeats now go unanswered -> timeout -> down
            await wait(lambda: not link.up, "heartbeat-timeout detection")
            with pytest.raises(Exception):
                await link.call({"op": "work"}, timeout=0.2)

            mute = False  # and the backoff loop re-establishes the link
            await wait(lambda: link.up and link.connects >= 2, "reconnect")
            assert (await link.call({"op": "again"}, timeout=2))["echo"] == "again"
            assert transitions[:2] == ["up", "down"]

            await link.stop()
            await listener.stop()

        asyncio.run(main())

    def test_fenced_hello_stops_link_permanently(self):
        async def main():
            fences = FenceRegistry()
            fences.admit("me", 10)  # a newer incarnation already registered

            async def on_hello(payload, reader, writer):
                if not fences.admit(payload["node"], payload["epoch"]):
                    return ("reject", {
                        "ok": False,
                        "error": {"code": "stale_epoch", "message": "superseded"},
                    })
                return ("serve", {"ok": True}, None)

            listener = FrameListener(on_hello, config=FAST)
            await listener.start()
            link = PeerLink(
                "gw", listener.host, listener.port,
                lambda: {"node": "me", "epoch": 3}, config=FAST,
            )
            link.start()
            deadline = asyncio.get_running_loop().time() + 10
            while not link.rejected:
                assert asyncio.get_running_loop().time() < deadline
                await asyncio.sleep(0.02)
            assert not link.up
            await link.stop()
            await listener.stop()

        asyncio.run(main())


def test_segment_janitor_guard_fd_release():
    """A remote-transport worker can drop its inherited guard fd."""
    janitor = SegmentJanitor()
    assert isinstance(janitor.guard_fd, int)
    janitor.release_inherited()  # closes the write end -> child sees EOF
    assert janitor.guard_fd is None
    janitor.release_inherited()  # idempotent
    os.waitpid(janitor.pid, 0)  # child exits (no names registered, no unlink)


# --------------------------------------------------------------------------
# Cluster fixtures
# --------------------------------------------------------------------------
@pytest.fixture(scope="module")
def cluster_paths(tmp_path_factory, tiny_dataset, trained_lhmm):
    root = tmp_path_factory.mktemp("federation")
    dataset_path = root / "tiny.json.gz"
    model_path = root / "model.npz"
    save_dataset(tiny_dataset, dataset_path)
    trained_lhmm.save(model_path)
    return str(dataset_path), str(model_path)


def _specs(cluster_paths, regions):
    dataset_path, model_path = cluster_paths
    return [
        ShardSpec(region=region, dataset=dataset_path, model=model_path)
        for region in regions
    ]


# --------------------------------------------------------------------------
# TCP worker transport
# --------------------------------------------------------------------------
@pytest.fixture(scope="module")
def tcp_cluster(cluster_paths):
    before = set(leaked_segments())  # other module-scoped clusters may live
    registry = ShardRegistry.publish(_specs(cluster_paths, ("default",)))
    server = ClusterServer(
        registry,
        ClusterConfig(
            port=0, num_workers=2, cache_size=0, session_ttl_s=60.0,
            worker_transport="tcp",
        ),
    )
    with server:
        yield server
    assert set(leaked_segments()) == before


class TestTcpWorkerTransport:
    def test_match_byte_identical(self, tcp_cluster, trained_lhmm, tiny_dataset):
        client = MatchingClient(tcp_cluster.host, tcp_cluster.port, timeout=60.0)
        samples = tiny_dataset.samples[:4]
        served = client.match([s.cellular for s in samples])
        for sample, got in zip(samples, served):
            expected = protocol.encode_match_result(trained_lhmm.match(sample.cellular))
            assert got == expected

    def test_streaming_matches_online_decoder(
        self, tcp_cluster, trained_lhmm, tiny_dataset
    ):
        client = MatchingClient(tcp_cluster.host, tcp_cluster.port, timeout=60.0)
        sample = tiny_dataset.samples[5]
        session = client.create_session(lag=3)
        for point in sample.cellular.points:
            session.feed(point)
        assert session.close() == OnlineLHMM(trained_lhmm, lag=3).match_stream(
            sample.cellular
        )

    def test_healthz_reports_transport(self, tcp_cluster):
        client = MatchingClient(tcp_cluster.host, tcp_cluster.port, timeout=30.0)
        health = client.health()
        assert health["worker_transport"] == "tcp"
        assert health["workers_alive"] >= 1

    def test_stale_dialback_is_fenced(self, tcp_cluster):
        """A hello with the wrong (generation, token) pair is rejected."""
        before = _submit(tcp_cluster, tcp_cluster.handle_metrics({}, None))[1][
            "counters"
        ].get("workers_fenced_total", 0)
        decision = _submit(
            tcp_cluster,
            tcp_cluster._on_worker_hello(
                {"node": "w0", "generation": 999, "token": "bogus"}, None, None
            ),
        )
        assert decision[0] == "reject"
        assert decision[1]["error"]["code"] == "stale_worker"
        after = _submit(tcp_cluster, tcp_cluster.handle_metrics({}, None))[1][
            "counters"
        ]["workers_fenced_total"]
        assert after == before + 1

    def test_worker_survives_respawn_roundtrip(self, tcp_cluster, tiny_dataset):
        """Kill one TCP worker; the supervisor respawns it and serving resumes."""
        victim = next(iter(tcp_cluster._handles.values()))
        os.kill(victim.process.pid, 9)
        client = MatchingClient(tcp_cluster.host, tcp_cluster.port, timeout=60.0)
        result = client.match_with_retry(
            [tiny_dataset.samples[6].cellular], base_delay_s=0.2
        )
        assert result[0]["path"]
        _wait_for(
            lambda: sum(h.alive for h in tcp_cluster._handles.values()) >= 2,
            message="respawned TCP worker fleet",
        )

    def test_client_rotates_to_fallback_target(self, tcp_cluster, tiny_dataset):
        """A dead primary plus a live fallback still serves session traffic."""
        client = MatchingClient(
            "127.0.0.1", _free_port(),  # nothing listens on the primary
            timeout=30.0,
            fallbacks=[(tcp_cluster.host, tcp_cluster.port)],
            failover_deadline_s=15.0,
        )
        session = client.create_session(lag=3)
        session.feed(tiny_dataset.samples[0].cellular.points[0])
        assert isinstance(session.close(), list)


def test_parse_location_splits_host_port_path():
    host, port, path = MatchingClient._parse_location(
        "http://10.1.2.3:8443/v1/match?region=east", "/fallback"
    )
    assert (host, port, path) == ("10.1.2.3", 8443, "/v1/match?region=east")
    host, port, path = MatchingClient._parse_location("http://gw.example", "/x")
    assert (host, port, path) == ("gw.example", 80, "/x")


# --------------------------------------------------------------------------
# Two federated gateways (A proxies, B redirects)
# --------------------------------------------------------------------------
def _federation_config(node, port, peer_name, peer_port, route_mode):
    return FederationConfig(
        node=node,
        listen_port=port,
        peers=(PeerSpec(peer_name, "127.0.0.1", peer_port),),
        heartbeat_interval_s=0.2,
        heartbeat_timeout_s=1.0,
        connect_timeout_s=2.0,
        backoff_base_s=0.05,
        backoff_max_s=0.5,
        route_mode=route_mode,
        replication_timeout_s=5.0,
    )


def _boot_pair(cluster_paths, regions_a, regions_b, route_a="proxy", route_b="proxy"):
    port_a, port_b = _free_port(), _free_port()
    server_a = ClusterServer(
        ShardRegistry.publish(_specs(cluster_paths, regions_a)),
        ClusterConfig(
            port=0, num_workers=1, cache_size=0, session_ttl_s=60.0,
            federation=_federation_config("node-a", port_a, "node-b", port_b, route_a),
        ),
    )
    server_b = ClusterServer(
        ShardRegistry.publish(_specs(cluster_paths, regions_b)),
        ClusterConfig(
            port=0, num_workers=1, cache_size=0, session_ttl_s=60.0,
            federation=_federation_config("node-b", port_b, "node-a", port_a, route_b),
        ),
    )
    server_a.start()
    server_b.start()
    _wait_for(
        lambda: server_a._fed.peer_up(server_a._fed._peers["node-b"])
        and server_b._fed.peer_up(server_b._fed._peers["node-a"])
        and server_a._fed._peers["node-b"].regions
        and server_b._fed._peers["node-a"].regions,
        message="federation links up with adverts exchanged",
    )
    return server_a, server_b


@pytest.fixture(scope="module")
def federation_pair(cluster_paths):
    before = set(leaked_segments())  # other module-scoped clusters may live
    pair = _boot_pair(
        cluster_paths, ("default",), ("uptown",), route_a="proxy", route_b="redirect"
    )
    yield pair
    pair[1].shutdown()
    pair[0].shutdown()
    assert set(leaked_segments()) == before


class TestFederatedRouting:
    def test_proxied_match_is_byte_identical(
        self, federation_pair, trained_lhmm, tiny_dataset
    ):
        server_a, _ = federation_pair
        client = MatchingClient(server_a.host, server_a.port, timeout=60.0)
        sample = tiny_dataset.samples[2]
        # "uptown" lives on node-b; node-a proxies over the peer link.
        served = client.match([sample.cellular], region="uptown")
        expected = protocol.encode_match_result(trained_lhmm.match(sample.cellular))
        assert served[0] == expected
        counters = client.metrics()["counters"]
        assert counters["fed_proxied_matches_total"] >= 1

    def test_redirect_mode_sends_307_and_client_follows(
        self, federation_pair, trained_lhmm, tiny_dataset
    ):
        server_a, server_b = federation_pair
        sample = tiny_dataset.samples[3]
        client = MatchingClient(server_b.host, server_b.port, timeout=60.0)
        with pytest.raises(ServeRedirect) as excinfo:
            client.match([sample.cellular], region="default")
        assert f":{server_a.port}" in excinfo.value.location
        followed = client.match_with_retry([sample.cellular], region="default")
        expected = protocol.encode_match_result(trained_lhmm.match(sample.cellular))
        assert followed[0] == expected

    def test_session_on_wrong_gateway_redirects_and_client_follows(
        self, federation_pair, trained_lhmm, tiny_dataset
    ):
        server_a, server_b = federation_pair
        sample = tiny_dataset.samples[4]
        # Sessions always redirect to the owner (stickiness); the client's
        # failover path follows the 307 transparently.
        client = MatchingClient(server_b.host, server_b.port, timeout=60.0)
        session = client.create_session(lag=3, region="default")
        assert client.host == server_a.host and client.port == server_a.port
        for point in sample.cellular.points:
            session.feed(point)
        assert session.close() == OnlineLHMM(trained_lhmm, lag=3).match_stream(
            sample.cellular
        )

    def test_unknown_region_anywhere_is_404(self, federation_pair, tiny_dataset):
        server_a, _ = federation_pair
        client = MatchingClient(server_a.host, server_a.port, timeout=30.0)
        with pytest.raises(ServeClientError) as excinfo:
            client.match([tiny_dataset.samples[0].cellular], region="atlantis")
        assert excinfo.value.status == 404

    def test_healthz_and_metrics_surface_federation(self, federation_pair):
        server_a, _ = federation_pair
        client = MatchingClient(server_a.host, server_a.port, timeout=30.0)
        health = client.health()
        assert health["status"] == "ok"
        fed = health["federation"]
        assert fed["node"] == "node-a"
        assert fed["partitioned"] == []
        assert fed["peers"]["node-b"]["up"] is True
        assert fed["peers"]["node-b"]["regions"] == ["uptown"]
        snapshot = client.metrics()
        assert snapshot["federation"]["node"] == "node-a"
        assert "fed_replications_total" in snapshot["counters"]


class TestFederatedReplication:
    def test_session_journal_ships_to_replica_peer(
        self, federation_pair, tiny_dataset
    ):
        server_a, server_b = federation_pair
        client = MatchingClient(server_a.host, server_a.port, timeout=60.0)
        sample = tiny_dataset.samples[8]
        session = client.create_session(lag=3, region="default")
        sid = session.session_id
        for point in sample.cellular.points[:6]:
            session.feed(point)
        # Replication is semi-synchronous: by the time a feed's HTTP
        # response lands, the replica holds the same journal prefix.
        replica = server_b._fed._replicas[sid]
        assert replica.owner == "node-a"
        assert len(replica.journal) == 6
        assert replica.last_seq == server_a._records[sid].last_seq
        session.close()
        _wait_for(
            lambda: sid not in server_b._fed._replicas,
            message="replica dropped after commit",
        )

    def test_duplicate_seq_replays_committed_state(
        self, federation_pair, tiny_dataset
    ):
        server_a, _ = federation_pair
        client = MatchingClient(server_a.host, server_a.port, timeout=60.0)
        sample = tiny_dataset.samples[9]
        session = client.create_session(lag=3, region="default")
        sid = session.session_id
        first = client.feed_points(sid, [sample.cellular.points[0]], seq=0)
        before = client.metrics()["counters"].get("feed_duplicates_total", 0)
        again = client.feed_points(sid, [sample.cellular.points[0]], seq=0)
        assert again == first  # the retry did not feed the point twice
        assert client.metrics()["counters"]["feed_duplicates_total"] == before + 1
        assert len(server_a._records[sid].journal) == 1
        client.close_session(sid)


# --------------------------------------------------------------------------
# Partition, adoption, fencing (single-process simulation; chaos suite
# re-proves this with real SIGKILL/SIGSTOP in separate processes)
# --------------------------------------------------------------------------
@pytest.fixture()
def failover_pair(cluster_paths):
    # Both nodes serve "default" (so either can own a failed-over session);
    # only node-a serves "uptown" (so its loss partitions that region).
    before = set(leaked_segments())  # module-scoped clusters are still live
    pair = _boot_pair(cluster_paths, ("default", "uptown"), ("default",))
    yield pair
    pair[1].shutdown()
    pair[0].shutdown()
    assert set(leaked_segments()) == before


class TestPartitionFailover:
    def test_adoption_replays_bit_identically_and_fences_the_old_owner(
        self, failover_pair, trained_lhmm, tiny_dataset
    ):
        server_a, server_b = failover_pair
        client_a = MatchingClient(server_a.host, server_a.port, timeout=60.0)
        client_b = MatchingClient(server_b.host, server_b.port, timeout=60.0)
        sample = tiny_dataset.samples[10]
        points = sample.cellular.points
        half = len(points) // 2

        sid = client_a.create_session(lag=3, region="default").session_id
        for seq, point in enumerate(points[:half]):
            client_a.feed_points(sid, [point], seq=seq)
        assert len(server_b._fed._replicas[sid].journal) == half

        # Partition node-a away *from node-b's view only*: node-b's link
        # drops and stays down, while node-a can still reach node-b (the
        # asymmetric half-open case fencing exists for).
        _submit(server_b, server_b._fed._peers["node-a"].link.stop())
        _wait_for(
            lambda: not server_b._fed.peer_up(server_b._fed._peers["node-a"]),
            message="node-b marking node-a down",
        )

        # node-a's exclusive region degrades on node-b: 503 + Retry-After,
        # never a hang.
        with pytest.raises(ServerBusy) as excinfo:
            client_b.match([points], region="uptown")
        assert excinfo.value.payload["code"] == "region_partitioned"
        assert excinfo.value.retry_after_s > 0
        health = client_b.health()
        assert health["status"] == "degraded"
        assert health["federation"]["partitioned"] == ["node-a"]

        # The client fails over to node-b, which adopts from its replica
        # journal and continues the stream.
        for seq, point in enumerate(points[half:], start=half):
            client_b.feed_points(sid, [point], seq=seq)
        assert client_b.metrics()["counters"]["fed_adoptions_total"] == 1

        # The superseded owner must never commit: its close is fenced
        # through its (still-live) link to node-b.
        with pytest.raises(ServeClientError) as fenced:
            client_a.close_session(sid)
        assert fenced.value.status == 409
        assert fenced.value.payload["code"] == "session_fenced"
        assert sid not in server_a._records

        # Exactly one commit, bit-identical to the uninterrupted decode.
        closed = client_b.close_session(sid)
        expected = OnlineLHMM(trained_lhmm, lag=3).match_stream(sample.cellular)
        assert closed["path"] == expected
        assert client_a.metrics()["counters"]["fed_fenced_total"] >= 1
