"""Tests for the session manager (lifecycle, eviction, decoder recycling)."""

import pytest

from repro.core import OnlineLHMM
from repro.serve import SessionLimitError, SessionManager, UnknownSessionError


class FakeClock:
    """An injectable monotonic clock."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture()
def manager(trained_lhmm):
    return SessionManager(trained_lhmm, default_lag=3, max_sessions=4, ttl_s=60.0)


class TestLifecycle:
    def test_requires_fitted_matcher(self, tiny_dataset):
        from repro.core import LHMM
        from tests.conftest import tiny_lhmm_config

        with pytest.raises(RuntimeError):
            SessionManager(LHMM(tiny_lhmm_config()))

    def test_feed_matches_direct_decoder(self, manager, trained_lhmm, tiny_dataset):
        sample = tiny_dataset.test[0]
        reference = OnlineLHMM(trained_lhmm, lag=3)
        session = manager.create(lag=3)
        for point in sample.cellular.points:
            state = manager.feed(session.session_id, [point])
            reference.add_point(point)
            assert state["committed"] == reference.committed_path
            assert state["pending"] == reference.pending_points()
        final = manager.close(session.session_id)
        assert final["path"] == reference.finish()
        assert final["points"] == len(sample.cellular)

    def test_feed_reports_monotone_commits(self, manager, tiny_dataset):
        sample = tiny_dataset.test[1]
        session = manager.create()
        lengths = []
        for point in sample.cellular.points:
            state = manager.feed(session.session_id, [point])
            lengths.append(len(state["committed"]))
            assert state["pending"] <= manager.default_lag + 1
        assert lengths == sorted(lengths)
        manager.close(session.session_id)

    def test_unknown_session(self, manager, tiny_dataset):
        with pytest.raises(UnknownSessionError):
            manager.feed("nope", [tiny_dataset.test[0].cellular.points[0]])
        with pytest.raises(UnknownSessionError):
            manager.close("nope")

    def test_closed_session_is_gone(self, manager, tiny_dataset):
        session = manager.create()
        manager.close(session.session_id)
        with pytest.raises(UnknownSessionError):
            manager.close(session.session_id)


class TestAdmissionAndEviction:
    def test_session_limit(self, trained_lhmm):
        manager = SessionManager(trained_lhmm, max_sessions=2, ttl_s=60.0)
        manager.create()
        manager.create()
        with pytest.raises(SessionLimitError):
            manager.create()

    def test_idle_sessions_evicted_by_ttl(self, trained_lhmm, tiny_dataset):
        clock = FakeClock()
        manager = SessionManager(trained_lhmm, ttl_s=30.0, clock=clock)
        stale = manager.create()
        clock.advance(20.0)
        fresh = manager.create()
        manager.feed(fresh.session_id, [tiny_dataset.test[0].cellular.points[0]])
        clock.advance(15.0)  # stale idle 35s > ttl, fresh idle 15s
        evicted = manager.evict_idle()
        assert evicted == [stale.session_id]
        assert len(manager) == 1
        with pytest.raises(UnknownSessionError):
            manager.feed(stale.session_id, [tiny_dataset.test[0].cellular.points[0]])
        assert manager.stats()["evicted_total"] == 1

    def test_create_sweeps_idle_sessions(self, trained_lhmm):
        clock = FakeClock()
        manager = SessionManager(trained_lhmm, max_sessions=1, ttl_s=30.0, clock=clock)
        manager.create()
        clock.advance(31.0)
        # The idle session is evicted during create, freeing the slot.
        manager.create()
        assert manager.stats()["evicted_total"] == 1


class TestRecycling:
    def test_closed_decoder_is_recycled(self, trained_lhmm, tiny_dataset):
        manager = SessionManager(trained_lhmm, default_lag=3)
        first = manager.create()
        decoder = first.decoder
        sample = tiny_dataset.test[0]
        manager.feed(first.session_id, list(sample.cellular.points))
        manager.close(first.session_id)

        second = manager.create()  # same (lag, context_window)
        assert second.decoder is decoder
        assert manager.stats()["recycled_total"] == 1
        # The recycled decoder behaves exactly like a fresh one.
        state = manager.feed(second.session_id, list(sample.cellular.points))
        final = manager.close(second.session_id)
        assert final["path"] == OnlineLHMM(trained_lhmm, lag=3).match_stream(sample.cellular)
        assert state["points"] == len(sample.cellular)

    def test_different_shape_not_recycled(self, trained_lhmm):
        manager = SessionManager(trained_lhmm, default_lag=3)
        first = manager.create(lag=2)
        decoder = first.decoder
        manager.close(first.session_id)
        second = manager.create(lag=5)
        assert second.decoder is not decoder
