"""End-to-end tests for the sharded cluster serving tier.

One module-scoped cluster (gateway + 2 forked workers over shared-memory
artifacts, two regions served from the same tiny city) backs most tests;
lifecycle-sensitive tests (drain, session handoff plumbing) boot their
own short-lived cluster.  The central assertion everywhere: responses
through the gateway are byte-identical to direct ``LHMM`` /
``OnlineLHMM`` calls — the cluster is a deployment shape, not a
different matcher.
"""

from __future__ import annotations

import threading

import pytest

from repro.core import LHMM, OnlineLHMM
from repro.datasets import save_dataset
from repro.serve import (
    ClusterConfig,
    ClusterServer,
    MatchingClient,
    ServeClientError,
    ShardRegistry,
    ShardSpec,
)
from repro.serve import protocol
from repro.serve.shm import leaked_segments


@pytest.fixture(scope="module")
def cluster_paths(tmp_path_factory, tiny_dataset, trained_lhmm):
    root = tmp_path_factory.mktemp("cluster")
    dataset_path = root / "tiny.json.gz"
    model_path = root / "model.npz"
    save_dataset(tiny_dataset, dataset_path)
    trained_lhmm.save(model_path)
    return str(dataset_path), str(model_path)


def _specs(cluster_paths, regions=("default",)):
    dataset_path, model_path = cluster_paths
    return [
        ShardSpec(region=region, dataset=dataset_path, model=model_path)
        for region in regions
    ]


@pytest.fixture(scope="module")
def cluster(cluster_paths):
    registry = ShardRegistry.publish(
        _specs(cluster_paths, regions=("default", "uptown"))
    )
    server = ClusterServer(
        registry,
        ClusterConfig(port=0, num_workers=2, cache_size=64, session_ttl_s=60.0),
    )
    with server:
        yield server
    assert leaked_segments() == []


@pytest.fixture()
def client(cluster):
    return MatchingClient(cluster.host, cluster.port, timeout=60.0)


class TestBatchMatching:
    def test_results_byte_identical_to_direct_call(
        self, cluster, client, trained_lhmm, tiny_dataset
    ):
        samples = tiny_dataset.samples[:6]
        served = client.match([s.cellular for s in samples])
        for sample, got in zip(samples, served):
            expected = protocol.encode_match_result(trained_lhmm.match(sample.cellular))
            # Full structural equality — path, matched_sequence, score,
            # provenance — after one JSON round-trip, which is exact for
            # doubles.  This is the byte-identity claim.
            assert got == expected

    def test_single_points_form(self, client, trained_lhmm, tiny_dataset):
        sample = tiny_dataset.samples[7]
        results = client.match(sample.cellular)
        assert results[0]["path"] == trained_lhmm.match(sample.cellular).path

    def test_second_region_serves_identically(
        self, client, trained_lhmm, tiny_dataset
    ):
        sample = tiny_dataset.samples[3]
        default_result = client.match([sample.cellular])
        uptown_result = client.match([sample.cellular], region="uptown")
        assert uptown_result == default_result
        assert uptown_result[0]["path"] == trained_lhmm.match(sample.cellular).path

    def test_unknown_region_is_404(self, client, tiny_dataset):
        with pytest.raises(ServeClientError) as excinfo:
            client.match([tiny_dataset.samples[0].cellular], region="atlantis")
        assert excinfo.value.status == 404
        assert excinfo.value.payload.get("code") == "unknown_region"

    def test_cache_serves_repeats_identically(self, client, tiny_dataset):
        sample = tiny_dataset.samples[9]
        first = client.match([sample.cellular])
        before = client.metrics()["counters"].get("cache_hits_total", 0)
        again = client.match([sample.cellular])
        after = client.metrics()["counters"].get("cache_hits_total", 0)
        assert again == first
        assert after > before

    def test_malformed_body_is_400(self, client):
        with pytest.raises(ServeClientError) as excinfo:
            client.match([[{"x": "not-a-number", "y": 0, "t": 0}]])
        assert excinfo.value.status == 400

    def test_empty_trajectory_list_is_400(self, cluster):
        import http.client

        conn = http.client.HTTPConnection(cluster.host, cluster.port, timeout=30)
        conn.request(
            "POST", "/v1/match", body=b'{"trajectories": []}',
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        assert response.status == 400
        response.read()
        conn.close()

    def test_concurrent_clients_all_get_correct_paths(
        self, cluster, trained_lhmm, tiny_dataset
    ):
        samples = tiny_dataset.samples[:8]
        expected = {
            s.sample_id: trained_lhmm.match(s.cellular).path for s in samples
        }
        failures = []

        def worker(sample):
            local = MatchingClient(cluster.host, cluster.port, timeout=60.0)
            try:
                results = local.match([sample.cellular])
                if results[0]["path"] != expected[sample.sample_id]:
                    failures.append(sample.sample_id)
            except Exception as error:  # noqa: BLE001
                failures.append((sample.sample_id, repr(error)))

        threads = [threading.Thread(target=worker, args=(s,)) for s in samples]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert failures == []


class TestStreamingSessions:
    def test_stream_matches_online_decoder(
        self, client, trained_lhmm, tiny_dataset
    ):
        sample = tiny_dataset.samples[11]
        session = client.create_session(lag=3)
        for point in sample.cellular.points:
            session.feed(point)
        path = session.close()
        assert path == OnlineLHMM(trained_lhmm, lag=3).match_stream(sample.cellular)

    def test_sessions_on_both_regions(self, client, trained_lhmm, tiny_dataset):
        sample = tiny_dataset.samples[12]
        for region in ("default", "uptown"):
            session = client.create_session(lag=4, region=region)
            for point in sample.cellular.points:
                session.feed(point)
            assert session.close() == OnlineLHMM(
                trained_lhmm, lag=4
            ).match_stream(sample.cellular)

    def test_unknown_session_is_404(self, client, tiny_dataset):
        with pytest.raises(ServeClientError) as excinfo:
            client.feed_points("nope-1234", [tiny_dataset.samples[0].cellular.points[0]])
        assert excinfo.value.status == 404

    def test_sessions_are_sticky_across_feeds(self, client, cluster, tiny_dataset):
        """All feeds of one session land on the consistent-hash owner."""
        sample = tiny_dataset.samples[13]
        session = client.create_session(lag=3)
        record = cluster._records[session.session_id]
        owner = cluster._ring.route(session.session_id)
        assert record.worker_name == owner
        for point in sample.cellular.points[:5]:
            session.feed(point)
        assert cluster._records[session.session_id].worker_name == owner
        session.close()


class TestObservability:
    def test_healthz_shape(self, client):
        health = client.health()
        assert health["status"] in ("ok", "degraded")
        assert health["mode"] == "cluster"
        assert health["workers_alive"] >= 1
        assert set(health["regions"]) == {"default", "uptown"}

    def test_metrics_reports_workers_shards_cache(self, client):
        snapshot = client.metrics()
        assert len(snapshot["workers"]) == 2
        for worker in snapshot["workers"]:
            assert worker["name"].startswith("w")
            if worker["alive"]:
                assert worker["memory"]["rss_kb"] > 0
        assert set(snapshot["shards"]) == {"default", "uptown"}
        assert snapshot["shared_artifact_bytes"] > 0
        assert snapshot["cache"]["capacity"] == 64
        # Both regions publish their own segment; the segments differ.
        segments = {s["segment"] for s in snapshot["shards"].values()}
        assert len(segments) == 2


class TestLifecycle:
    def test_drain_commits_open_sessions_and_unlinks(
        self, cluster_paths, trained_lhmm, tiny_dataset
    ):
        registry = ShardRegistry.publish(_specs(cluster_paths))
        segments = {s["segment"] for s in registry.describe().values()}
        server = ClusterServer(
            registry, ClusterConfig(port=0, num_workers=1, cache_size=0)
        ).start()
        client = MatchingClient(server.host, server.port, timeout=60.0)
        sample = tiny_dataset.samples[2]
        session = client.create_session(lag=3)
        for point in sample.cellular.points[:4]:
            session.feed(point)
        summary = server.shutdown()
        # The drain finalised the open session deterministically: its
        # committed path equals a full offline fixed-lag decode of the
        # points fed so far.
        assert session.session_id in summary["sessions"]
        decoder = OnlineLHMM(trained_lhmm, lag=3)
        for point in sample.cellular.points[:4]:
            decoder.add_point(point)
        assert summary["sessions"][session.session_id] == decoder.finish()
        # This cluster's segments are gone (the module cluster's remain).
        assert segments.isdisjoint(leaked_segments())

    def test_shutdown_is_idempotent(self, cluster_paths):
        registry = ShardRegistry.publish(_specs(cluster_paths))
        segments = {s["segment"] for s in registry.describe().values()}
        server = ClusterServer(
            registry, ClusterConfig(port=0, num_workers=1)
        ).start()
        server.shutdown()
        server.shutdown()  # second call must not raise
        assert segments.isdisjoint(leaked_segments())

    def test_port_zero_resolves(self, cluster):
        assert cluster.port != 0
        assert cluster.address == f"http://{cluster.host}:{cluster.port}"


class TestRegistryValidation:
    def test_missing_model_fails_at_publish(self, cluster_paths, tmp_path):
        dataset_path, _ = cluster_paths
        with pytest.raises(FileNotFoundError):
            ShardRegistry.publish(
                [ShardSpec(region="default", dataset=dataset_path,
                           model=str(tmp_path / "missing.npz"))]
            )

    def test_duplicate_region_rejected(self, cluster_paths):
        with pytest.raises(ValueError, match="duplicate region"):
            ShardRegistry.publish(_specs(cluster_paths, regions=("a", "a")))

    def test_bad_region_name_rejected(self, cluster_paths):
        dataset_path, model_path = cluster_paths
        with pytest.raises(ValueError, match="invalid region"):
            ShardSpec(region="a/b", dataset=dataset_path, model=model_path)
