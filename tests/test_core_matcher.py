"""Tests for repro.core.matcher and repro.core.training (end-to-end LHMM)."""

import numpy as np
import pytest

from repro.core import LHMM
from tests.conftest import tiny_lhmm_config


class TestFit:
    def test_requires_fit_before_match(self, tiny_dataset):
        matcher = LHMM(tiny_lhmm_config(), rng=0)
        with pytest.raises(RuntimeError):
            matcher.match(tiny_dataset.test[0].cellular)

    def test_fit_produces_embeddings(self, trained_lhmm):
        assert trained_lhmm.node_embeddings is not None
        assert np.isfinite(trained_lhmm.node_embeddings).all()
        assert trained_lhmm.node_embeddings.shape == (
            trained_lhmm.graph.num_nodes,
            trained_lhmm.config.embedding_dim,
        )

    def test_training_report_has_losses(self, trained_lhmm):
        report = trained_lhmm.report
        assert report.observation_pretrain
        assert report.observation_finetune
        assert report.transition_pretrain
        assert report.transition_finetune
        for losses in (
            report.observation_pretrain,
            report.observation_finetune,
            report.transition_pretrain,
            report.transition_finetune,
        ):
            assert all(np.isfinite(x) for x in losses)

    def test_fit_rejects_empty(self, tiny_dataset):
        matcher = LHMM(tiny_lhmm_config(), rng=0)
        with pytest.raises(ValueError):
            matcher.fit(tiny_dataset, train_samples=[])


class TestCandidatePreparation:
    def test_topk_sets(self, trained_lhmm, tiny_dataset):
        sample = tiny_dataset.test[0]
        sets, po_maps, context = trained_lhmm.prepare_candidates(sample.cellular)
        assert len(sets) == len(sample.cellular)
        for candidates, po in zip(sets, po_maps):
            assert 1 <= len(candidates) <= trained_lhmm.config.candidate_k
            assert all(seg in po for seg in candidates)
        assert context.shape == (len(sample.cellular), trained_lhmm.config.embedding_dim)

    def test_candidates_sorted_by_learned_po(self, trained_lhmm, tiny_dataset):
        sample = tiny_dataset.test[0]
        sets, po_maps, _ = trained_lhmm.prepare_candidates(sample.cellular)
        for candidates, po in zip(sets, po_maps):
            scores = [po[c] for c in candidates]
            assert scores == sorted(scores, reverse=True)

    def test_probabilities_in_unit_interval(self, trained_lhmm, tiny_dataset):
        sample = tiny_dataset.test[0]
        _, po_maps, _ = trained_lhmm.prepare_candidates(sample.cellular)
        for po in po_maps:
            assert all(0.0 < v < 1.0 for v in po.values())


class TestMatch:
    def test_match_returns_consecutive_path(self, trained_lhmm, tiny_dataset):
        net = tiny_dataset.network
        for sample in tiny_dataset.test[:3]:
            result = trained_lhmm.match(sample.cellular)
            assert result.path
            breaks = sum(
                1
                for a, b in zip(result.path, result.path[1:])
                if net.segments[b].start_node != net.segments[a].end_node
            )
            assert breaks <= 1  # at most a rare unroutable break

    def test_match_sequence_aligned_with_points(self, trained_lhmm, tiny_dataset):
        sample = tiny_dataset.test[0]
        result = trained_lhmm.match(sample.cellular)
        assert len(result.matched_sequence) == len(sample.cellular)
        assert len(result.candidate_sets) == len(sample.cellular)

    def test_match_empty_rejected(self, trained_lhmm):
        from repro.cellular import Trajectory

        with pytest.raises(ValueError):
            trained_lhmm.match(Trajectory(points=[], _validated=True))

    def test_match_single_point(self, trained_lhmm, tiny_dataset):
        from repro.cellular import Trajectory

        single = Trajectory(points=[tiny_dataset.test[0].cellular[0]], _validated=True)
        result = trained_lhmm.match(single)
        assert len(result.path) == 1

    def test_match_many(self, trained_lhmm, tiny_dataset):
        trajectories = [s.cellular for s in tiny_dataset.test[:2]]
        results = trained_lhmm.match_many(trajectories)
        assert len(results) == 2

    def test_matching_is_deterministic(self, trained_lhmm, tiny_dataset):
        sample = tiny_dataset.test[0]
        a = trained_lhmm.match(sample.cellular)
        b = trained_lhmm.match(sample.cellular)
        assert a.path == b.path

    def test_match_beats_random_baseline(self, trained_lhmm, tiny_dataset):
        """LHMM must do far better than a random candidate walk."""
        from repro.eval.metrics import corridor_mismatch_fraction

        rng = np.random.default_rng(0)
        lhmm_cmf, random_cmf = [], []
        for sample in tiny_dataset.test[:4]:
            result = trained_lhmm.match(sample.cellular)
            lhmm_cmf.append(
                corridor_mismatch_fraction(tiny_dataset.network, sample.truth_path, result.path)
            )
            random_path = list(
                rng.choice(sorted(tiny_dataset.network.segments), size=10)
            )
            random_cmf.append(
                corridor_mismatch_fraction(
                    tiny_dataset.network, sample.truth_path, [int(s) for s in random_path]
                )
            )
        assert np.mean(lhmm_cmf) < np.mean(random_cmf)


class TestAblations:
    @pytest.mark.parametrize("variant", ["LHMM-E", "LHMM-O", "LHMM-T", "LHMM-S"])
    def test_ablated_variants_train_and_match(self, tiny_dataset, variant):
        config = tiny_lhmm_config().ablated(variant)
        matcher = LHMM(config, rng=1).fit(tiny_dataset)
        result = matcher.match(tiny_dataset.test[0].cellular)
        assert result.path

    def test_homogeneous_variant(self, tiny_dataset):
        config = tiny_lhmm_config().ablated("LHMM-H")
        matcher = LHMM(config, rng=1).fit(tiny_dataset)
        assert matcher.match(tiny_dataset.test[0].cellular).path
