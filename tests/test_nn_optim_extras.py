"""Tests for gradient clipping and related optimiser utilities."""

import numpy as np
import pytest

from repro.nn import clip_grad_norm
from repro.nn.module import Parameter


class TestClipGradNorm:
    def test_rejects_bad_norm(self):
        with pytest.raises(ValueError):
            clip_grad_norm([], 0.0)

    def test_no_clipping_below_threshold(self):
        p = Parameter(np.zeros(3))
        p.grad = np.array([0.3, 0.0, 0.4])  # norm 0.5
        returned = clip_grad_norm([p], max_norm=1.0)
        assert returned == pytest.approx(0.5)
        assert np.allclose(p.grad, [0.3, 0.0, 0.4])

    def test_clipping_scales_to_max_norm(self):
        p = Parameter(np.zeros(2))
        p.grad = np.array([3.0, 4.0])  # norm 5
        returned = clip_grad_norm([p], max_norm=1.0)
        assert returned == pytest.approx(5.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_global_norm_across_parameters(self):
        a = Parameter(np.zeros(1))
        b = Parameter(np.zeros(1))
        a.grad = np.array([3.0])
        b.grad = np.array([4.0])
        clip_grad_norm([a, b], max_norm=2.5)
        total = np.sqrt(a.grad[0] ** 2 + b.grad[0] ** 2)
        assert total == pytest.approx(2.5)

    def test_parameters_without_grad_skipped(self):
        a = Parameter(np.zeros(1))
        b = Parameter(np.zeros(1))
        a.grad = np.array([10.0])
        clip_grad_norm([a, b], max_norm=1.0)
        assert b.grad is None
        assert abs(a.grad[0]) == pytest.approx(1.0)
