"""Chaos tests: real worker kills, hangs, and pool self-healing.

Every test here injects faults via :mod:`repro.testing.faults` — SIGKILL
inside pool workers, wedged chunks, broken model files — and asserts the
guarantees ``docs/robustness.md`` promises: completed work is never
discarded, surviving trajectories stay bit-identical to serial matching,
failures come back as structured slots, and the same pool keeps serving.

Excluded from the default suite (they kill processes and sleep); run
with ``pytest -m chaos``.
"""

import filecmp
import os
import signal
import subprocess
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from repro.core import LHMM, OnlineLHMM, ParallelMatcher
from repro.datasets import load_dataset, save_dataset
from repro.errors import MatchError, PoolBroken
from repro.serve import (
    ClusterConfig,
    ClusterServer,
    MatchingClient,
    MatchingServer,
    ServeClientError,
    ServeConfig,
    ShardRegistry,
    ShardSpec,
)
from repro.serve.shm import leaked_segments
from repro.testing import faults

pytestmark = pytest.mark.chaos


def assert_results_identical(serial, parallel) -> None:
    assert len(serial) == len(parallel)
    for expected, got in zip(serial, parallel):
        assert got.path == expected.path
        assert got.matched_sequence == expected.matched_sequence
        assert got.candidate_sets == expected.candidate_sets
        assert got.score == pytest.approx(expected.score, rel=1e-12)


@pytest.fixture(scope="module")
def saved_paths(tmp_path_factory, trained_lhmm, tiny_dataset):
    root = tmp_path_factory.mktemp("chaos")
    model_path = root / "model.npz"
    dataset_path = root / "tiny.json.gz"
    trained_lhmm.save(model_path)
    save_dataset(tiny_dataset, dataset_path)
    return str(model_path), str(dataset_path)


@pytest.fixture(scope="module")
def serial_reference(saved_paths, tiny_dataset):
    """(trajectories, serial results) from a matcher reloaded off disk —
    the exact computation the pool workers perform."""
    model_path, dataset_path = saved_paths
    reloaded = LHMM.load(model_path, load_dataset(dataset_path))
    trajectories = [sample.cellular for sample in tiny_dataset.test][:8]
    return trajectories, reloaded.match_many(trajectories)


class TestPoolSelfHealing:
    def test_sigkill_mid_batch_recovers_bit_identical(
        self, saved_paths, serial_reference, monkeypatch, tmp_path
    ):
        """A worker SIGKILLed mid-batch (one-shot): the pool respawns,
        resubmits only the lost chunks, and the full batch comes back
        identical to serial — then the same pool serves another batch."""
        model_path, dataset_path = saved_paths
        trajectories, serial = serial_reference
        token = tmp_path / "kill.token"
        monkeypatch.setenv(
            faults.ENV_VAR, f"worker.chunk:kill:chunk=1:once={token}"
        )
        with ParallelMatcher(
            model_path, dataset_path, workers=2, chunk_size=2
        ) as pool:
            results = pool.match_many(trajectories, return_errors=True)
            assert pool.worker_respawns >= 1
            assert token.exists()  # the fault really fired
            monkeypatch.delenv(faults.ENV_VAR)
            again = pool.match_many(trajectories[:2])
        assert_results_identical(serial, results)
        assert_results_identical(serial[:2], again)
        assert pool.stats()["failed_items_total"] == 0

    def test_persistent_poison_chunk_is_surrendered_not_fatal(
        self, saved_paths, serial_reference, monkeypatch
    ):
        """A chunk that kills every worker it touches: after
        ``max_chunk_attempts`` it comes back as worker_crash slots while
        every other trajectory is answered bit-identical to serial."""
        model_path, dataset_path = saved_paths
        trajectories, serial = serial_reference
        monkeypatch.setenv(faults.ENV_VAR, "worker.chunk:kill:chunk=2")
        with ParallelMatcher(
            model_path,
            dataset_path,
            workers=1,
            chunk_size=1,
            respawn_limit=3,
            max_chunk_attempts=3,
        ) as pool:
            results = pool.match_many(trajectories[:4], return_errors=True)
            stats = pool.stats()
        assert isinstance(results[2], MatchError)
        assert results[2].code == "worker_crash"
        assert results[2].index == 2
        assert "3 times" in results[2].message
        survivors = [results[i] for i in (0, 1, 3)]
        assert_results_identical([serial[i] for i in (0, 1, 3)], survivors)
        assert stats["failed_items_total"] == 1
        assert stats["worker_respawns_total"] == 3

    def test_exhausted_respawn_budget_raises_pool_broken(
        self, saved_paths, serial_reference, monkeypatch
    ):
        model_path, dataset_path = saved_paths
        trajectories, _ = serial_reference
        monkeypatch.setenv(faults.ENV_VAR, "worker.chunk:kill:chunk=0")
        with ParallelMatcher(
            model_path, dataset_path, workers=1, chunk_size=2, respawn_limit=0
        ) as pool:
            with pytest.raises(PoolBroken, match="respawn budget exhausted"):
                pool.match_many(trajectories[:4])

    def test_hung_worker_is_killed_and_chunk_retried(
        self, saved_paths, serial_reference, monkeypatch, tmp_path
    ):
        """The stall detector: a chunk wedged for 60s is killed after
        ``chunk_timeout_s`` of no pool progress and retried successfully."""
        model_path, dataset_path = saved_paths
        trajectories, serial = serial_reference
        token = tmp_path / "hang.token"
        monkeypatch.setenv(
            faults.ENV_VAR,
            f"worker.chunk:hang:chunk=0:seconds=60:once={token}",
        )
        with ParallelMatcher(
            model_path, dataset_path, workers=2, chunk_size=2, chunk_timeout_s=2.0
        ) as pool:
            pool.warmup()  # keep worker start-up out of the stall window
            started = time.monotonic()
            results = pool.match_many(trajectories, return_errors=True)
            elapsed = time.monotonic() - started
            assert pool.worker_respawns >= 1
        assert elapsed < 40.0  # far below the 60s hang: the detector fired
        assert_results_identical(serial, results)


class TestTrainingKillResume:
    """SIGKILL mid-training, then ``--resume``: the final model artifact
    must be byte-identical to an uninterrupted run (the acceptance
    property of ``docs/robustness.md``'s training-resilience section)."""

    @pytest.fixture(scope="class")
    def micro_dataset_file(self, tmp_path_factory):
        from repro.cellular import SimulationConfig, TowerPlacementConfig
        from repro.datasets import DatasetConfig, make_city_dataset
        from repro.network import CityConfig

        config = DatasetConfig(
            name="micro",
            city=CityConfig(grid_rows=7, grid_cols=7, block_size_m=250.0),
            towers=TowerPlacementConfig(base_spacing_m=400.0),
            simulation=SimulationConfig(min_trip_m=800.0, max_trip_m=2000.0),
            num_trajectories=40,
            groundtruth="oracle",
        )
        path = tmp_path_factory.mktemp("train-chaos") / "micro.json.gz"
        save_dataset(make_city_dataset(config, rng=7), path)
        return path

    def _train(self, dataset_file, out, extra=(), env_extra=None):
        env = dict(os.environ)
        src = Path(__file__).resolve().parents[1] / "src"
        env["PYTHONPATH"] = os.pathsep.join(
            [str(src)] + [p for p in [env.get("PYTHONPATH")] if p]
        )
        env.pop(faults.ENV_VAR, None)
        if env_extra:
            env.update(env_extra)
        cmd = [
            sys.executable, "-m", "repro", "train",
            "--dataset", str(dataset_file),
            "-o", str(out),
            "--epochs", "2",
            "--dim", "12",
            "--candidates", "8",
            "--seed", "0",
            *extra,
        ]
        return subprocess.run(cmd, env=env, capture_output=True, text=True)

    @pytest.fixture(scope="class")
    def uninterrupted_model(self, micro_dataset_file, tmp_path_factory):
        out = tmp_path_factory.mktemp("train-chaos") / "reference.npz"
        proc = self._train(micro_dataset_file, out)
        assert proc.returncode == 0, proc.stderr
        return out

    def test_sigkill_then_resume_is_bit_identical(
        self, micro_dataset_file, uninterrupted_model, tmp_path
    ):
        out = tmp_path / "model.npz"
        ckpts = tmp_path / "ckpts"
        token = tmp_path / "kill.token"
        killed = self._train(
            micro_dataset_file,
            out,
            extra=["--checkpoint-dir", str(ckpts), "--keep-checkpoints", "3"],
            env_extra={
                faults.ENV_VAR: (
                    "train.epoch:kill:stage=transition_pretrain"
                    f":epoch=1:once={token}"
                )
            },
        )
        assert killed.returncode == -signal.SIGKILL
        assert token.exists()
        assert not out.exists()  # died before the final save
        assert any(p.name.startswith("ckpt-") for p in ckpts.iterdir())
        resumed = self._train(
            micro_dataset_file,
            out,
            extra=["--checkpoint-dir", str(ckpts), "--resume"],
        )
        assert resumed.returncode == 0, resumed.stderr
        assert filecmp.cmp(uninterrupted_model, out, shallow=False)

    def test_corrupt_newest_checkpoint_falls_back_to_previous(
        self, micro_dataset_file, uninterrupted_model, tmp_path
    ):
        """Kill the run, damage the newest checkpoint on disk, resume:
        training restarts from the previous good epoch, warns, and still
        converges to the byte-identical model."""
        out = tmp_path / "model.npz"
        ckpts = tmp_path / "ckpts"
        token = tmp_path / "kill.token"
        killed = self._train(
            micro_dataset_file,
            out,
            extra=["--checkpoint-dir", str(ckpts), "--keep-checkpoints", "3"],
            env_extra={
                faults.ENV_VAR: (
                    "train.epoch:kill:stage=observation_finetune"
                    f":epoch=1:once={token}"
                )
            },
        )
        assert killed.returncode == -signal.SIGKILL
        files = sorted(ckpts.iterdir())
        assert len(files) >= 2
        blob = bytearray(files[-1].read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        files[-1].write_bytes(bytes(blob))
        resumed = self._train(
            micro_dataset_file,
            out,
            extra=["--checkpoint-dir", str(ckpts), "--resume"],
        )
        assert resumed.returncode == 0, resumed.stderr
        assert "corrupt checkpoint" in resumed.stderr
        assert filecmp.cmp(uninterrupted_model, out, shallow=False)


class TestWarmupDiagnostics:
    def test_warmup_names_the_broken_model_file(self, saved_paths, tmp_path):
        _, dataset_path = saved_paths
        bad_model = tmp_path / "model.npz"
        bad_model.write_bytes(b"this is not a numpy archive")
        pool = ParallelMatcher(str(bad_model), dataset_path, workers=1)
        try:
            with pytest.raises(PoolBroken) as excinfo:
                pool.warmup()
        finally:
            pool.close()
        message = str(excinfo.value)
        assert "worker initialisation failed" in message
        assert "model.npz" in message


class TestServeUnderFaults:
    def _points(self, sample):
        return [
            {
                "x": p.position.x,
                "y": p.position.y,
                "t": p.timestamp,
                "tower_id": p.tower_id,
            }
            for p in sample.cellular.points
        ]

    def test_worker_crash_returns_500_and_server_survives(
        self, saved_paths, trained_lhmm, tiny_dataset, monkeypatch, tmp_path
    ):
        model_path, dataset_path = saved_paths
        token = tmp_path / "kill.token"
        monkeypatch.setenv(
            faults.ENV_VAR, f"worker.chunk:kill:chunk=0:once={token}"
        )
        pool = ParallelMatcher(
            model_path, dataset_path, workers=1, chunk_size=4, respawn_limit=0
        )
        config = ServeConfig(port=0, batch_window_ms=5.0)
        sample = tiny_dataset.test[0]
        try:
            with MatchingServer(trained_lhmm, config, pool=pool) as server:
                client = MatchingClient(server.host, server.port, timeout=120.0)
                with pytest.raises(ServeClientError) as excinfo:
                    client._request(
                        "POST", "/v1/match", {"points": self._points(sample)}
                    )
                assert excinfo.value.status == 500
                assert excinfo.value.payload["code"] == "pool_broken"
                health = client.health()
                assert health["status"] == "degraded"
                assert health["degraded"]["worker_respawns_total"] >= 1
                assert health["degraded"]["match_failed_total"] >= 1
                metrics = client.metrics()
                assert metrics["counters"]["worker_respawns_total"] >= 1
                assert metrics["pool"]["failed_items_total"] >= 1
                # The pool was rebuilt and the one-shot fault is spent: the
                # very same server answers the retry correctly.
                retry = client._request(
                    "POST", "/v1/match", {"points": self._points(sample)}
                )["result"]
                assert retry["path"] == trained_lhmm.match(sample.cellular).path
        finally:
            pool.close()

    def test_pool_recovery_is_invisible_to_the_client(
        self, saved_paths, serial_reference, trained_lhmm, monkeypatch, tmp_path
    ):
        """With respawn budget, a mid-batch worker kill costs latency only:
        the client sees complete, non-degraded, serial-identical results."""
        model_path, dataset_path = saved_paths
        trajectories, serial = serial_reference
        token = tmp_path / "kill.token"
        monkeypatch.setenv(
            faults.ENV_VAR, f"worker.chunk:kill:chunk=0:once={token}"
        )
        pool = ParallelMatcher(model_path, dataset_path, workers=1, chunk_size=2)
        config = ServeConfig(port=0, batch_window_ms=5.0, request_timeout_s=120.0)
        try:
            with MatchingServer(trained_lhmm, config, pool=pool) as server:
                client = MatchingClient(server.host, server.port, timeout=120.0)
                results = client.match(trajectories[:4])
                assert [r["path"] for r in results] == [s.path for s in serial[:4]]
                assert all("error" not in r for r in results)
                assert all(r["provenance"] == "lhmm" for r in results)
                health = client.health()
                assert health["status"] == "degraded"  # respawns are visible
                assert health["degraded"]["worker_respawns_total"] >= 1
                assert health["degraded"]["match_failed_total"] == 0
                # Subsequent batch on the same pool.
                again = client.match(trajectories[:2])
                assert [r["path"] for r in again] == [s.path for s in serial[:2]]
        finally:
            pool.close()

    def test_cluster_worker_sigkill_handoff_and_no_shm_leak(
        self, saved_paths, trained_lhmm, tiny_dataset
    ):
        """SIGKILL -9 the worker that owns a live streaming session.

        The guarantees under test: the gateway respawns the worker and
        replays the session journal so the final path is bit-identical to
        an uninterrupted decode; the killed worker's death does NOT
        unlink the shared artifact segment the survivor is still mapped
        over (the attach suppresses resource-tracker registration); and a
        full shutdown afterwards leaves zero leaked segments.
        """
        model_path, dataset_path = saved_paths
        registry = ShardRegistry.publish(
            [ShardSpec(region="default", dataset=dataset_path, model=model_path)]
        )
        segments = {s["segment"] for s in registry.describe().values()}
        sample = tiny_dataset.test[0]
        server = ClusterServer(
            registry, ClusterConfig(port=0, num_workers=2, cache_size=0)
        ).start()
        try:
            client = MatchingClient(server.host, server.port, timeout=120.0)
            session = client.create_session(lag=3)
            points = list(sample.cellular.points)
            for point in points[: len(points) // 2]:
                session.feed(point)

            owner = server._records[session.session_id].worker_name
            victim = server._handles[owner]
            os.kill(victim.process.pid, signal.SIGKILL)
            deadline = time.monotonic() + 30.0
            while victim.alive and time.monotonic() < deadline:
                time.sleep(0.05)

            # The kill (and the dead worker's teardown) must not take the
            # shared segment with it — the survivor still serves from it.
            assert segments <= set(leaked_segments())

            for point in points[len(points) // 2 :]:
                self._feed_with_retry(session, point)
            path = session.close()
            assert path == OnlineLHMM(trained_lhmm, lag=3).match_stream(
                sample.cellular
            )

            metrics = client.metrics()
            assert metrics["counters"]["worker_deaths_total"] >= 1
            assert metrics["counters"]["worker_respawns_total"] >= 1
            assert metrics["counters"]["sessions_replayed_total"] >= 1
            respawned = next(
                w for w in metrics["workers"] if w["name"] == owner
            )
            assert respawned["alive"] and respawned["generation"] >= 2

            # Batch traffic on the healed cluster: bit-identical again.
            results = client.match_with_retry(
                [sample.cellular], max_attempts=6, base_delay_s=0.1
            )
            assert results[0]["path"] == trained_lhmm.match(sample.cellular).path
        finally:
            server.shutdown()
        assert segments.isdisjoint(leaked_segments())

    def test_cluster_exhausted_respawns_shrink_the_ring(
        self, saved_paths, trained_lhmm, tiny_dataset
    ):
        """With ``respawn_limit=0`` a killed worker leaves the hash ring;
        the survivor takes over all traffic and shutdown still unlinks."""
        model_path, dataset_path = saved_paths
        registry = ShardRegistry.publish(
            [ShardSpec(region="default", dataset=dataset_path, model=model_path)]
        )
        segments = {s["segment"] for s in registry.describe().values()}
        sample = tiny_dataset.test[1]
        server = ClusterServer(
            registry,
            ClusterConfig(port=0, num_workers=2, cache_size=0, respawn_limit=0),
        ).start()
        try:
            client = MatchingClient(server.host, server.port, timeout=120.0)
            victim = server._handles["w0"]
            os.kill(victim.process.pid, signal.SIGKILL)
            deadline = time.monotonic() + 30.0
            while "w0" in server._ring.nodes and time.monotonic() < deadline:
                time.sleep(0.05)
            assert server._ring.nodes == {"w1"}

            health = client.health()
            assert health["status"] == "degraded"
            assert health["workers_alive"] == 1

            results = client.match_with_retry(
                [sample.cellular], max_attempts=6, base_delay_s=0.1
            )
            assert results[0]["path"] == trained_lhmm.match(sample.cellular).path
            session = client.create_session(lag=3)
            for point in sample.cellular.points:
                self._feed_with_retry(session, point)
            assert session.close() == OnlineLHMM(
                trained_lhmm, lag=3
            ).match_stream(sample.cellular)
        finally:
            server.shutdown()
        assert segments.isdisjoint(leaked_segments())

    @staticmethod
    def _feed_with_retry(session, point, attempts: int = 40):
        """Feed one point, riding out the 503s while a respawn settles."""
        for attempt in range(attempts):
            try:
                return session.feed(point)
            except (ServeClientError, ConnectionError) as error:
                if isinstance(error, ServeClientError) and error.status != 503:
                    raise
                if attempt == attempts - 1:
                    raise
                time.sleep(0.25)

    def test_drain_waits_for_slow_pool_chunk(
        self, saved_paths, serial_reference, trained_lhmm, monkeypatch, tmp_path
    ):
        """Graceful shutdown under a wedged-then-slow chunk: the admitted
        request is still answered correctly, never dropped."""
        model_path, dataset_path = saved_paths
        trajectories, serial = serial_reference
        token = tmp_path / "hang.token"
        monkeypatch.setenv(
            faults.ENV_VAR, f"worker.chunk:hang:chunk=0:seconds=2:once={token}"
        )
        pool = ParallelMatcher(model_path, dataset_path, workers=1, chunk_size=4)
        config = ServeConfig(port=0, batch_window_ms=5.0, request_timeout_s=120.0)
        server = MatchingServer(trained_lhmm, config, pool=pool).start()
        client = MatchingClient(server.host, server.port, timeout=120.0)
        try:
            with ThreadPoolExecutor(max_workers=1) as executor:
                in_flight = executor.submit(client.match, trajectories[0])
                time.sleep(0.5)  # request admitted + dispatched to the pool
                server.shutdown()  # must drain, not drop, the slow chunk
                results = in_flight.result(timeout=60)
            assert results[0]["path"] == serial[0].path
        finally:
            pool.close()
